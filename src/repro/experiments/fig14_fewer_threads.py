"""Figure 14: shelf opportunity with fewer threads.

The paper: no opportunity single-threaded (but no harm either); a modest
STP and EDP gain at two threads.  The shelf can always be disabled by
steering everything to the IQ.
"""

from __future__ import annotations

from typing import List

from repro.energy import edp, energy_report
from repro.experiments.common import ExperimentResult, sample_mixes
from repro.harness.configs import base64_config, shelf_config
from repro.harness.runner import (RunScale, run_benchmark, run_mix,
                                  single_thread_cpi)
from repro.metrics.throughput import geomean, stp


def run(scale: RunScale) -> ExperimentResult:
    length = scale.instructions_per_thread
    rows = []
    findings = {}
    for threads in (1, 2):
        base_cfg = base64_config(threads)
        shelf_cfg = shelf_config(threads)
        stp_ratios: List[float] = []
        edp_ratios: List[float] = []
        count = max(scale.num_mixes * (2 if threads == 1 else 1), 4)
        for seed, mix in enumerate(sample_mixes(threads, count,
                                                seed=99 + threads)):
            singles = [single_thread_cpi(base64_config(1), b, length,
                                         seed + i)
                       for i, b in enumerate(mix)]
            if threads == 1:
                base_res = run_benchmark(base_cfg, mix[0], length, seed)
                shelf_res = run_benchmark(shelf_cfg, mix[0], length, seed)
            else:
                base_res = run_mix(base_cfg, mix, length, seed)
                shelf_res = run_mix(shelf_cfg, mix, length, seed)
            stp_base = stp(base_res, singles)
            stp_shelf = stp(shelf_res, singles)
            stp_ratios.append(stp_shelf / stp_base)
            edp_base = edp(energy_report(base_cfg, base_res))
            edp_shelf = edp(energy_report(shelf_cfg, shelf_res))
            edp_ratios.append(edp_base / edp_shelf)  # >1 = shelf better
        stp_impr = geomean(stp_ratios) - 1
        edp_impr = geomean(edp_ratios) - 1
        rows.append((f"{threads} thread(s)", stp_impr, edp_impr))
        findings[f"stp_impr_{threads}t"] = stp_impr
        findings[f"edp_impr_{threads}t"] = edp_impr
    return ExperimentResult(
        experiment="Figure 14",
        description="shelf STP / EDP improvement over Base64 at 1 and 2 "
                    "threads (practical steering)",
        headers=["threads", "STP improvement", "EDP improvement"],
        rows=rows,
        paper_claim="no opportunity (and no harm) at 1 thread; modest "
                    "improvement at 2 threads",
        findings=findings,
    )
