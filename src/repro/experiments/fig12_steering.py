"""Figure 12: practical vs. oracle steering.

The paper finds the practical mechanism mis-steers ~16% of instructions
relative to the greedy oracle, yet SMT's latency tolerance hides most of
the cost: practical steering's STP stays close to the oracle's.
"""

from __future__ import annotations

from typing import List

from repro.core.pipeline import Pipeline
from repro.core.steering import (ComparisonSteering, OracleSteering,
                                 PracticalSteering)
from repro.experiments.common import ExperimentResult
from repro.harness.configs import shelf_config
from repro.harness.runner import RunScale, mix_stp
from repro.metrics.throughput import geomean
from repro.trace import generate
from repro.trace.mixes import balanced_random_mixes


def _missteer_fraction(scale: RunScale, mix, seed: int) -> float:
    """Run the practical-steered design while shadowing the oracle and
    count decision disagreements (the paper's mis-steer statistic)."""
    cfg = shelf_config(4, steering="practical")
    traces = [generate(b, scale.instructions_per_thread, seed + i)
              for i, b in enumerate(mix)]
    pipe = Pipeline(cfg, traces)
    pipe.steering = ComparisonSteering(
        PracticalSteering(cfg), OracleSteering(cfg, pipe.hierarchy))
    pipe.run(stop="first")
    return pipe.steering.stats()["missteer_fraction"]


def run(scale: RunScale) -> ExperimentResult:
    mixes = balanced_random_mixes()[:scale.num_mixes]
    length = scale.instructions_per_thread
    base_cfg = shelf_config(4, steering="practical").with_threads(4)
    practical_impr: List[float] = []
    oracle_impr: List[float] = []
    missteers: List[float] = []
    from repro.harness.configs import base64_config
    for seed, mix in enumerate(mixes):
        base = mix_stp(base64_config(4), mix, length, seed)
        practical_impr.append(
            mix_stp(shelf_config(4, steering="practical"), mix, length,
                    seed) / base - 1)
        oracle_impr.append(
            mix_stp(shelf_config(4, steering="oracle"), mix, length,
                    seed) / base - 1)
        missteers.append(_missteer_fraction(scale, mix, seed))

    rows = []
    for i, mix in enumerate(mixes):
        rows.append((i, practical_impr[i], oracle_impr[i], missteers[i]))
    g_prac = geomean([1 + v for v in practical_impr]) - 1
    g_orac = geomean([1 + v for v in oracle_impr]) - 1
    avg_miss = sum(missteers) / len(missteers)
    rows.append(("geomean/avg", g_prac, g_orac, avg_miss))
    return ExperimentResult(
        experiment="Figure 12",
        description="performance impact of practical steering vs. the "
                    "greedy oracle (STP improvement over Base64)",
        headers=["mix", "practical", "oracle", "mis-steer frac"],
        rows=rows,
        paper_claim="~16% of instructions mis-steered, but SMT hides the "
                    "stalls: practical remains close to oracle",
        findings={"stp_practical": g_prac, "stp_oracle": g_orac,
                  "missteer_fraction": avg_miss},
    )
