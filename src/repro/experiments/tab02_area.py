"""Table II: core area increase over the Base64 design.

The paper: the shelf (with its scheduling, steering and tracking
structures) adds 3.1% core area excluding L1 caches / 2.1% including
them; doubling every OOO structure adds 9.7% / 6.6%.
"""

from __future__ import annotations

from repro.energy import area_report
from repro.experiments.common import ExperimentResult
from repro.harness.configs import base64_config, base128_config, shelf_config
from repro.harness.runner import RunScale


def run(scale: RunScale) -> ExperimentResult:  # scale unused: static model
    base = area_report(base64_config(4))
    shelf = area_report(shelf_config(4))
    big = area_report(base128_config(4))
    rows = []
    findings = {}
    for label, rep in (("Base64+Shelf64", shelf), ("Base128", big)):
        no_l1 = rep.increase_over(base, include_l1=False)
        with_l1 = rep.increase_over(base, include_l1=True)
        rows.append((label, no_l1, with_l1))
        key = "shelf" if "Shelf" in label else "base128"
        findings[f"area_{key}_no_l1"] = no_l1
        findings[f"area_{key}_with_l1"] = with_l1
    return ExperimentResult(
        experiment="Table II",
        description="core area increase over Base64",
        headers=["design", "excl. L1", "incl. L1"],
        rows=rows,
        paper_claim="shelf +3.1% / +2.1%; Base128 +9.7% / +6.6%",
        findings=findings,
    )
