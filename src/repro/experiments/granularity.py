"""Steering granularity sweep — the paper's fine-interleaving argument.

Section I: in-sequence and reordered instructions interleave in series
averaging 5-20 instructions, so "existing hybrid INO/OOO
microarchitectures, which switch at 1000-instruction (or higher)
granularity, cannot exploit the in-sequence phenomenon without
sacrificing performance on reordered instructions."

This experiment applies the practical steering policy's recommendations
blockwise at increasing granularity.  Granularity 1 is the paper's
instruction-level steering; 1000 emulates MorphCore-style coarse
switching.  The gain should decay toward (or below) zero as the block
size passes the natural series length.
"""

from __future__ import annotations

from typing import List

from repro.core.config import CoreConfig
from repro.core.pipeline import Pipeline
from repro.core.steering import PracticalSteering
from repro.core.steering_ext import CoarseGrainSteering
from repro.experiments.common import ExperimentResult
from repro.harness.configs import base64_config, shelf_config
from repro.harness.runner import RunScale, mix_stp, run_mix, single_thread_cpi
from repro.metrics.throughput import geomean, stp
from repro.trace import generate
from repro.trace.mixes import balanced_random_mixes

GRANULARITIES = (1, 8, 32, 128, 1000)


def _coarse_stp(mix, length: int, seed: int, granularity: int) -> float:
    cfg = shelf_config(4)
    traces = [generate(b, length, seed + i) for i, b in enumerate(mix)]
    pipe = Pipeline(cfg, traces)
    pipe.steering = CoarseGrainSteering(PracticalSteering(cfg), 4,
                                        granularity)
    res = pipe.run(stop="first")
    singles = [single_thread_cpi(base64_config(1), b, length, seed + i)
               for i, b in enumerate(mix)]
    return stp(res, singles)


def run(scale: RunScale) -> ExperimentResult:
    mixes = balanced_random_mixes()[:max(2, scale.num_mixes // 2)]
    length = scale.instructions_per_thread
    rows = []
    findings = {}
    for gran in GRANULARITIES:
        ratios: List[float] = []
        for seed, mix in enumerate(mixes):
            base = mix_stp(base64_config(4), mix, length, seed)
            ratios.append(_coarse_stp(mix, length, seed, gran) / base)
        impr = geomean(ratios) - 1
        rows.append((f"granularity {gran}", impr))
        findings[f"stp_gran{gran}"] = impr
    return ExperimentResult(
        experiment="Granularity sweep (ours)",
        description="STP improvement of blockwise steering vs. block size "
                    "(4-thread mixes; granularity 1 = the paper's design)",
        headers=["variant", "STP improvement (geomean)"],
        rows=rows,
        paper_claim="series average 5-20 instructions, so 1000-instruction "
                    "switching cannot exploit the in-sequence phenomenon",
        findings=findings,
    )
