"""Figure 2: weighted CDF of consecutive in-sequence / reordered series.

The paper (single-threaded benchmarks, 128-entry window) finds 99% of
in-sequence instructions in series of <= 30 instructions, while reordered
series are bounded only by the ROB; average series run 5-20 instructions.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, sample_mixes
from repro.experiments.fig01_insequence import window128_config
from repro.harness.runner import RunScale, run_benchmark
from repro.metrics.classify import weighted_cdf
from repro.metrics.throughput import geomean

CDF_POINTS = (1, 2, 5, 10, 20, 30, 50, 100, 128)


def run(scale: RunScale) -> ExperimentResult:
    cfg = window128_config(1)
    length = scale.instructions_per_thread
    benches = sorted({m[0] for m in
                      sample_mixes(1, max(scale.num_mixes * 2, 6))})
    # The paper plots "the geometric mean across benchmarks, as well as
    # their range of behavior" — a per-benchmark aggregation, so one
    # pathological benchmark (a fully serialized chase is a single giant
    # in-sequence series) cannot dominate the statistic.
    per_bench = [weighted_cdf([run_benchmark(cfg, b, length, seed)])
                 for seed, b in enumerate(benches)]

    rows = []
    for x in CDF_POINTS:
        # Arithmetic mean across benchmarks: the geometric mean of CDF
        # curves is ill-defined where some benchmark's CDF is still zero
        # (and not monotone once zeros are excluded).
        iqs = [d["in_sequence"].cdf_at(x) for d in per_bench]
        res = [d["reordered"].cdf_at(x) for d in per_bench]
        rows.append((x, sum(iqs) / len(iqs), sum(res) / len(res)))

    p99s = [d["in_sequence"].percentile_length(0.99) for d in per_bench
            if d["in_sequence"].lengths]
    reorder_max = max((max(d["reordered"].lengths)
                       for d in per_bench if d["reordered"].lengths),
                      default=0)
    inseq_means = [d["in_sequence"].mean_weighted() for d in per_bench
                   if d["in_sequence"].lengths]
    reord_means = [d["reordered"].mean_weighted() for d in per_bench
                   if d["reordered"].lengths]
    findings = {
        "inseq_p99_length": geomean([float(p) for p in p99s]),
        "inseq_p99_worst": float(max(p99s, default=0)),
        "reordered_max_length": float(reorder_max),
        "inseq_mean_weighted": geomean(inseq_means),
        "reordered_mean_weighted": geomean(reord_means),
    }
    return ExperimentResult(
        experiment="Figure 2",
        description="weighted CDF of consecutive series lengths, averaged "
                    "across single-threaded benchmarks (128-entry window)",
        headers=["series length <=", "in-sequence CDF", "reordered CDF"],
        rows=rows,
        paper_claim="99% of in-sequence instructions in series of <=30; "
                    "reordered series bounded by the 128-entry ROB; "
                    "series average 5-20 instructions",
        findings=findings,
    )
