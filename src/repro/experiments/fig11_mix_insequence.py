"""Figure 11: per-thread in-sequence fraction for selected 4-thread mixes.

The paper shows the mixes with min/median/max STP improvement from
Figure 10, plus the arithmetic mean: about half of instructions are
in-sequence on average, with per-benchmark imbalance explaining part of
the gap to the doubled design.
"""

from __future__ import annotations

from repro.experiments import fig10_stp
from repro.experiments.common import ExperimentResult
from repro.harness.configs import base64_config
from repro.harness.runner import RunScale, run_mix
from repro.metrics.classify import insequence_fraction, per_thread_insequence
from repro.trace.mixes import balanced_random_mixes


def run(scale: RunScale) -> ExperimentResult:
    mixes, improvements = fig10_stp.compute(scale)
    ranked = sorted(range(len(mixes)),
                    key=lambda i: improvements["Shelf64-cons"][i])
    picks = [("min", ranked[0]), ("median", ranked[len(ranked) // 2]),
             ("max", ranked[-1])]
    cfg = base64_config(4)
    length = scale.instructions_per_thread

    rows = []
    for label, idx in picks:
        res = run_mix(cfg, mixes[idx], length, idx)
        for bench, frac in per_thread_insequence(res):
            rows.append((label, bench, frac))

    all_fracs = []
    for seed, mix in enumerate(mixes):
        res = run_mix(cfg, mix, length, seed)
        all_fracs.append(insequence_fraction(res))
    mean = sum(all_fracs) / len(all_fracs)
    rows.append(("mean", f"all {len(mixes)} mixes", mean))
    return ExperimentResult(
        experiment="Figure 11",
        description="per-thread in-sequence fraction, selected 4-thread "
                    "mixes (Base64)",
        headers=["mix", "thread benchmark", "in-seq fraction"],
        rows=rows,
        paper_claim="about half of instructions in-sequence on average; "
                    "some benchmarks substantially fewer",
        findings={"mean_insequence": mean},
    )
