"""Sensitivity of the shelf's benefit to the surrounding machine.

The paper lists the shelf's loss cases (Section V-A): too few in-sequence
instructions, imbalanced window demand, mis-steering, and reordered
instructions needing more LQ/SQ capacity.  This sweep varies one
structural parameter at a time around the Base64 design point and
measures the shelf's STP improvement there, quantifying where the idea is
robust and where the structure sizes dominate.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.core.config import CoreConfig
from repro.experiments.common import ExperimentResult
from repro.harness.configs import base64_config, shelf_config
from repro.harness.runner import RunScale, mix_stp
from repro.metrics.throughput import geomean
from repro.memory.hierarchy import HierarchyConfig
from repro.trace.mixes import balanced_random_mixes


def _shelf_impr(base: CoreConfig, shelf: CoreConfig, mixes,
                length: int) -> float:
    vals: List[float] = []
    ref = base.with_threads(1)
    for seed, mix in enumerate(mixes):
        b = mix_stp(base, mix, length, seed, reference=ref)
        s = mix_stp(shelf, mix, length, seed, reference=ref)
        vals.append(s / b)
    return geomean(vals) - 1


def run(scale: RunScale) -> ExperimentResult:
    mixes = balanced_random_mixes()[:max(2, scale.num_mixes // 2)]
    length = scale.instructions_per_thread
    rows = []
    findings = {}

    def point(label: str, key: str, **overrides) -> None:
        base = replace(base64_config(4), **overrides)
        shelf = replace(shelf_config(4), **overrides)
        impr = _shelf_impr(base, shelf, mixes, length)
        rows.append((label, impr))
        findings[key] = impr

    point("baseline (Table I)", "stp_base")
    # IQ capacity: a bigger IQ reduces the pressure the shelf relieves.
    point("IQ 16 (halved)", "stp_iq16", iq_entries=16)
    point("IQ 64 (doubled)", "stp_iq64", iq_entries=64)
    # LQ/SQ capacity: the loss case the paper calls out — reordered loads
    # bottlenecked on LQ entries cap what window extension can buy.
    point("LQ/SQ 64 (doubled)", "stp_lsq64", lq_entries=64, sq_entries=64)
    # Memory-level parallelism budget.
    point("L1D MSHRs 4", "stp_mshr4",
          hierarchy=HierarchyConfig(l1d_mshrs=4))
    point("L1D MSHRs 32", "stp_mshr32",
          hierarchy=HierarchyConfig(l1d_mshrs=32))
    # Speculation bound for the SSR delays.
    point("spec bound 2", "stp_spec2", spec_mem_bound=2)
    point("spec bound 16", "stp_spec16", spec_mem_bound=16)
    # Front-end and memory-system quality around the design point.
    point("bimodal predictor", "stp_bimodal", branch_predictor="bimodal")
    point("tournament predictor", "stp_tournament",
          branch_predictor="tournament")
    point("stride prefetcher", "stp_prefetch",
          hierarchy=HierarchyConfig(l1d_prefetch="stride"))

    return ExperimentResult(
        experiment="Sensitivity sweep (ours)",
        description="shelf STP improvement as one structure parameter "
                    "varies around the Base64 design point",
        headers=["machine variant", "shelf STP improvement"],
        rows=rows,
        paper_claim="loss cases: few in-sequence instructions, window "
                    "imbalance, mis-steers, LQ/SQ pressure (Section V-A)",
        findings=findings,
    )
