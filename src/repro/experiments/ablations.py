"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of its arguments:

* shelf size sweep — opportunity saturates once the in-sequence
  population fits (the paper picks 64 entries for 4 threads);
* steering policy — all-IQ recovers the baseline, all-shelf collapses to
  an in-order core (the Hily & Seznec endpoint), practical sits between
  oracle and baseline;
* dual vs. single SSR — the paper's starvation argument (Section III-B);
* conservative vs. optimistic same-cycle shelf issue (Section III-A).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.experiments.common import ExperimentResult
from repro.harness.configs import base64_config, shelf_config
from repro.harness.runner import RunScale, mix_stp
from repro.metrics.throughput import geomean
from repro.trace.mixes import balanced_random_mixes


def _geomean_impr(cfg, mixes, length) -> float:
    vals: List[float] = []
    for seed, mix in enumerate(mixes):
        base = mix_stp(base64_config(4), mix, length, seed)
        vals.append(mix_stp(cfg, mix, length, seed) / base)
    return geomean(vals) - 1


def run(scale: RunScale) -> ExperimentResult:
    mixes = balanced_random_mixes()[:max(2, scale.num_mixes // 2)]
    length = scale.instructions_per_thread
    rows = []
    findings = {}

    for size in (16, 32, 64, 128):
        impr = _geomean_impr(shelf_config(4, shelf_entries=size), mixes,
                             length)
        rows.append((f"shelf size {size}", impr))
        findings[f"stp_shelf{size}"] = impr

    for steering in ("shelf-only", "practical", "oracle"):
        impr = _geomean_impr(shelf_config(4, steering=steering), mixes,
                             length)
        rows.append((f"steering {steering}", impr))
        findings[f"stp_{steering}"] = impr

    single_ssr = replace(shelf_config(4), dual_ssr=False)
    impr = _geomean_impr(single_ssr, mixes, length)
    rows.append(("single SSR (ablation)", impr))
    findings["stp_single_ssr"] = impr

    opt = _geomean_impr(shelf_config(4, optimistic=True), mixes, length)
    rows.append(("optimistic same-cycle issue", opt))
    findings["stp_optimistic"] = opt

    # TSO (the paper's deferred Section III-D sketch): the shelf under a
    # strong model — stores allocate SQ entries, no coalescing, writeback
    # holds until elder loads complete.  Both the baseline and the shelf
    # switch models, so the row isolates what TSO costs the shelf idea.
    tso_shelf = replace(shelf_config(4), memory_model="tso")
    tso_base = replace(base64_config(4), memory_model="tso")
    vals = []
    for seed, mix in enumerate(mixes):
        base = mix_stp(tso_base, mix, length, seed, reference=tso_base
                       .with_threads(1))
        vals.append(mix_stp(tso_shelf, mix, length, seed,
                            reference=tso_base.with_threads(1)) / base)
    tso = geomean(vals) - 1
    rows.append(("TSO memory model (extension)", tso))
    findings["stp_tso"] = tso

    return ExperimentResult(
        experiment="Ablations",
        description="STP improvement over Base64 under design variations "
                    "(4-thread mixes)",
        headers=["variant", "STP improvement (geomean)"],
        rows=rows,
        paper_claim="(design arguments, not paper figures): returns "
                    "saturate with shelf size; all-shelf ~ in-order; dual "
                    "SSR avoids shelf starvation",
        findings=findings,
    )
