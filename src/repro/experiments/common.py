"""Shared experiment plumbing."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import CoreConfig
from repro.harness.report import format_table
from repro.harness.runner import prefill
from repro.trace.workloads import BENCHMARK_NAMES


@dataclass
class ExperimentResult:
    """Uniform container the benches print and tests assert on."""

    experiment: str          #: e.g. "Figure 10"
    description: str
    headers: List[str]
    rows: List[Sequence[object]]
    paper_claim: str
    #: named scalar findings for programmatic assertions.
    findings: Dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        body = format_table(self.headers, self.rows,
                            title=f"{self.experiment}: {self.description}")
        claims = f"paper: {self.paper_claim}"
        extras = "\n".join(f"  {k} = {v:.4g}"
                           for k, v in sorted(self.findings.items()))
        return "\n".join(x for x in (body, claims, extras) if x)


def warm_grid(configs: Iterable[CoreConfig],
              mixes: Sequence[Sequence[str]], length: int,
              jobs: Optional[int] = None,
              reference: Optional[CoreConfig] = None,
              stop: str = "first") -> int:
    """Pre-simulate an experiment's (config × mix) evaluation grid.

    Builds the exact point set the serial experiment code will request —
    one *stop*-mode run per (config, mix) with the mix's enumeration
    index as seed, plus (when *reference* is given) the single-thread
    reference runs STP needs — and fans the uncached ones out across
    worker processes via :func:`repro.harness.runner.prefill`.  The
    experiment then keeps its straightforward serial shape; every
    ``run_mix`` / ``single_thread_cpi`` call is a cache hit.

    Returns the number of points actually dispatched.
    """
    points = []
    for cfg in configs:
        for seed, mix in enumerate(mixes):
            points.append((cfg, tuple(mix), length, seed, stop))
    if reference is not None:
        ref = reference if reference.num_threads == 1 \
            else reference.with_threads(1)
        for seed, mix in enumerate(mixes):
            for i, b in enumerate(mix):
                points.append((ref, (b,), length, seed + i, "all"))
    return prefill(points, jobs=jobs)


def sample_mixes(threads: int, count: int,
                 seed: int = 2016) -> List[Tuple[str, ...]]:
    """Deterministic multi-benchmark mixes with near-balanced coverage.

    Used where the canonical 28 balanced mixes don't apply (other thread
    counts, scaled-down runs): benchmarks are drawn round-robin from a
    shuffled roster, so a small sample still spans the behaviour families.
    """
    rng = random.Random(seed)
    roster = list(BENCHMARK_NAMES)
    rng.shuffle(roster)
    mixes: List[Tuple[str, ...]] = []
    pos = 0
    for _ in range(count):
        mix: List[str] = []
        while len(mix) < threads:
            cand = roster[pos % len(roster)]
            pos += 1
            if cand not in mix:
                mix.append(cand)
        mixes.append(tuple(mix))
    return mixes
