"""Figure 10: STP improvement of the shelf designs over Base64.

The paper reports, across 28 four-thread balanced-random SPEC mixes:
+8.6% (conservative) and +11.5% (optimistic) geomean STP for the
64+64-entry shelf designs, up to +15.1%/+19.2% at best, with the doubled
Base128 design as the upper bound — the shelf captures roughly half of
its benefit.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Tuple

from repro.experiments.common import ExperimentResult, warm_grid
from repro.harness.configs import EVALUATED_CONFIGS, base64_config
from repro.harness.runner import RunScale, mix_stp
from repro.metrics.throughput import geomean
from repro.trace.mixes import balanced_random_mixes
from repro.trace.mixes import mix_name

CONFIG_ORDER = ("Shelf64-cons", "Shelf64-opt", "Base128")


def compute(scale: RunScale) -> Tuple[List[Tuple[str, ...]],
                                      Dict[str, List[float]]]:
    """Per-mix STP improvements over Base64 for each evaluated config."""
    mixes = balanced_random_mixes()[:scale.num_mixes]
    length = scale.instructions_per_thread
    # Fan the whole grid (plus the single-thread STP references) out over
    # worker processes; the loop below then reads pure cache hits.
    warm_grid([EVALUATED_CONFIGS[c](4)
               for c in ("Base64", *CONFIG_ORDER)], mixes, length,
              reference=base64_config(1))
    improvements: Dict[str, List[float]] = {c: [] for c in CONFIG_ORDER}
    for seed, mix in enumerate(mixes):
        base = mix_stp(EVALUATED_CONFIGS["Base64"](4), mix, length, seed)
        for name in CONFIG_ORDER:
            val = mix_stp(EVALUATED_CONFIGS[name](4), mix, length, seed)
            improvements[name].append(val / base - 1.0)
    return mixes, improvements


def run(scale: RunScale) -> ExperimentResult:
    mixes, improvements = compute(scale)
    # The paper reports the mixes with lowest/median/highest improvement
    # (ranked by the shelf design's improvement).
    ranked = sorted(range(len(mixes)),
                    key=lambda i: improvements["Shelf64-cons"][i])
    picks = [("min", ranked[0]), ("median", ranked[len(ranked) // 2]),
             ("max", ranked[-1])]
    rows = []
    for label, idx in picks:
        rows.append((label, mix_name(mixes[idx]),
                     *(improvements[c][idx] for c in CONFIG_ORDER)))
    rows.append(("geomean", f"{len(mixes)} mixes",
                 *(geomean([1 + v for v in improvements[c]]) - 1
                   for c in CONFIG_ORDER)))
    findings = {}
    for c in CONFIG_ORDER:
        findings[f"stp_geomean_{c}"] = \
            geomean([1 + v for v in improvements[c]]) - 1
        findings[f"stp_best_{c}"] = max(improvements[c])
    big = findings["stp_geomean_Base128"]
    if big > 0:
        findings["shelf_fraction_of_doubling"] = \
            findings["stp_geomean_Shelf64-opt"] / big
    return ExperimentResult(
        experiment="Figure 10",
        description="STP improvement over Base64 (4-thread mixes)",
        headers=["mix", "benchmarks", *CONFIG_ORDER],
        rows=rows,
        paper_claim="shelf +8.6% (cons) / +11.5% (opt) geomean, up to "
                    "+15.1%/+19.2%; roughly half of Base128's improvement",
        findings=findings,
    )
