"""Figure 13: energy-delay product of the evaluated designs.

The paper: Base128 improves EDP by 4.9% over Base64 (faster but much more
power); the 64+64 shelf design does better — +8.6% (conservative) and
+10.9% (optimistic) geomean, up to +17.5%.
"""

from __future__ import annotations

from typing import Dict, List

from repro.energy import edp, energy_report
from repro.experiments.common import ExperimentResult, warm_grid
from repro.harness.configs import EVALUATED_CONFIGS
from repro.harness.runner import RunScale, run_mix
from repro.metrics.throughput import geomean
from repro.trace.mixes import balanced_random_mixes

CONFIG_ORDER = ("Shelf64-cons", "Shelf64-opt", "Base128")


def run(scale: RunScale) -> ExperimentResult:
    mixes = balanced_random_mixes()[:scale.num_mixes]
    length = scale.instructions_per_thread
    # Same grid as Figure 10 (shared runs are cache hits); EDP needs no
    # single-thread references, so only the mix runs are warmed.
    warm_grid([EVALUATED_CONFIGS[c](4)
               for c in ("Base64", *CONFIG_ORDER)], mixes, length)
    improvements: Dict[str, List[float]] = {c: [] for c in CONFIG_ORDER}
    powers: Dict[str, List[float]] = {c: [] for c in
                                      ("Base64", *CONFIG_ORDER)}
    for seed, mix in enumerate(mixes):
        base_cfg = EVALUATED_CONFIGS["Base64"](4)
        base_rep = energy_report(base_cfg, run_mix(base_cfg, mix, length,
                                                   seed))
        powers["Base64"].append(base_rep.power_w)
        base_edp = edp(base_rep)
        for name in CONFIG_ORDER:
            cfg = EVALUATED_CONFIGS[name](4)
            rep = energy_report(cfg, run_mix(cfg, mix, length, seed))
            powers[name].append(rep.power_w)
            improvements[name].append(1.0 - edp(rep) / base_edp)

    rows = []
    for name in CONFIG_ORDER:
        vals = improvements[name]
        rows.append((name,
                     geomean([1 + v for v in vals]) - 1,
                     min(vals), max(vals),
                     sum(powers[name]) / len(powers[name])))
    rows.append(("Base64", 0.0, 0.0, 0.0,
                 sum(powers["Base64"]) / len(powers["Base64"])))
    findings = {f"edp_geomean_{c}":
                geomean([1 + v for v in improvements[c]]) - 1
                for c in CONFIG_ORDER}
    findings["edp_best_shelf"] = max(max(improvements["Shelf64-cons"]),
                                     max(improvements["Shelf64-opt"]))
    return ExperimentResult(
        experiment="Figure 13",
        description="energy-delay product improvement over Base64 "
                    "(4-thread mixes; core power incl. L1)",
        headers=["config", "EDP impr (geomean)", "min", "max",
                 "avg power (W)"],
        rows=rows,
        paper_claim="Base128 +4.9%; shelf +8.6% (cons) / +10.9% (opt), "
                    "up to +17.5% — the shelf beats both",
        findings=findings,
    )
