"""Figure 1: fraction of in-sequence instructions vs. SMT thread count.

The paper runs a 128-entry OOO instruction window at 1/2/4/8 threads and
finds that the in-sequence fraction "more than doubles to more than 50% on
average" going from one thread to four.
"""

from __future__ import annotations

from repro.core.config import CoreConfig
from repro.experiments.common import ExperimentResult, sample_mixes
from repro.harness.runner import RunScale, run_benchmark, run_mix
from repro.metrics.classify import insequence_fraction

THREAD_COUNTS = (1, 2, 4, 8)


def window128_config(threads: int) -> CoreConfig:
    """The measurement platform: a pure-OOO 128-entry window."""
    return CoreConfig(num_threads=threads, rob_entries=128, iq_entries=64,
                      lq_entries=64, sq_entries=64)


def run(scale: RunScale) -> ExperimentResult:
    rows = []
    findings = {}
    length = scale.instructions_per_thread
    for threads in THREAD_COUNTS:
        cfg = window128_config(threads)
        fracs = []
        for seed, mix in enumerate(sample_mixes(threads, scale.num_mixes)):
            if threads == 1:
                res = run_benchmark(cfg, mix[0], length, seed)
            else:
                res = run_mix(cfg, mix, length, seed)
            fracs.append(insequence_fraction(res))
        avg = sum(fracs) / len(fracs)
        rows.append((f"{threads} thread(s)", avg, min(fracs), max(fracs)))
        findings[f"insequence_{threads}t"] = avg
    findings["ratio_4t_over_1t"] = (findings["insequence_4t"]
                                    / max(findings["insequence_1t"], 1e-9))
    return ExperimentResult(
        experiment="Figure 1",
        description="fraction of instructions wasting OOO resources "
                    "(in-sequence), 128-entry window",
        headers=["threads", "mean in-seq", "min", "max"],
        rows=rows,
        paper_claim="<25% at 1 thread, more than doubling to >50% at 4 "
                    "threads",
        findings=findings,
    )
