"""Experiment reproductions: one module per paper figure/table.

Each module exposes ``run(scale: RunScale) -> ExperimentResult``.  The
pytest-benchmark wrappers in ``benchmarks/`` execute them and print the
same rows the paper reports; ``EXPERIMENTS.md`` records paper-vs-measured.
"""

from repro.experiments.common import ExperimentResult, sample_mixes
from repro.experiments import (
    ablations,
    fig01_insequence,
    fig02_series_cdf,
    fig10_stp,
    fig11_mix_insequence,
    fig12_steering,
    fig13_edp,
    fig14_fewer_threads,
    granularity,
    sensitivity,
    tab02_area,
)

ALL_EXPERIMENTS = {
    "fig01": fig01_insequence,
    "fig02": fig02_series_cdf,
    "fig10": fig10_stp,
    "fig11": fig11_mix_insequence,
    "fig12": fig12_steering,
    "fig13": fig13_edp,
    "fig14": fig14_fewer_threads,
    "tab02": tab02_area,
    "ablations": ablations,
    "granularity": granularity,
    "sensitivity": sensitivity,
}

__all__ = ["ExperimentResult", "sample_mixes", "ALL_EXPERIMENTS"]
