"""In-sequence vs. reordered classification analysis.

The pipeline classifies each instruction at issue time (Section II's
definition: an instruction is *reordered* if it issues before its data,
speculation and structural ordering dependences have all resolved;
otherwise it is in-sequence).  This module aggregates those per-instruction
flags into the paper's measurements:

* Figure 1 — fraction of in-sequence instructions vs. SMT thread count;
* Figure 2 — weighted cumulative distribution of consecutive in-sequence /
  reordered series lengths;
* Figure 11 — per-thread in-sequence fraction within selected mixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.stats import SimResult, ThreadResult

#: flag values in ``ThreadResult.insequence_flags``
IN_SEQUENCE = 1
REORDERED = 0
UNKNOWN = 2  #: never issued before the run ended


def _valid_flags(thread: ThreadResult) -> List[int]:
    """Flags of instructions that actually issued, in program order."""
    return [f for f in thread.insequence_flags if f != UNKNOWN]


def insequence_fraction(result: SimResult) -> float:
    """Fraction of issued instructions that were in-sequence, over all
    threads (the Figure 1 statistic)."""
    total = 0
    inseq = 0
    for t in result.threads:
        flags = _valid_flags(t)
        total += len(flags)
        inseq += sum(1 for f in flags if f == IN_SEQUENCE)
    return inseq / total if total else 0.0


def per_thread_insequence(result: SimResult) -> List[Tuple[str, float]]:
    """Per-thread ``(benchmark, in-sequence fraction)`` (Figure 11)."""
    out = []
    for t in result.threads:
        flags = _valid_flags(t)
        frac = (sum(1 for f in flags if f == IN_SEQUENCE) / len(flags)
                if flags else 0.0)
        out.append((t.benchmark, frac))
    return out


def series_lengths(thread: ThreadResult) -> Dict[str, List[int]]:
    """Lengths of maximal consecutive runs of each class, program order."""
    flags = _valid_flags(thread)
    out: Dict[str, List[int]] = {"in_sequence": [], "reordered": []}
    if not flags:
        return out
    current = flags[0]
    run = 1
    for f in flags[1:]:
        if f == current:
            run += 1
        else:
            key = "in_sequence" if current == IN_SEQUENCE else "reordered"
            out[key].append(run)
            current = f
            run = 1
    key = "in_sequence" if current == IN_SEQUENCE else "reordered"
    out[key].append(run)
    return out


@dataclass
class SeriesDistribution:
    """Weighted CDF of series lengths (Figure 2's y-axis: the fraction of
    *instructions* living in series of length <= x)."""

    lengths: List[int]

    def cdf_at(self, x: int) -> float:
        total = sum(self.lengths)
        if not total:
            return 0.0
        covered = sum(l for l in self.lengths if l <= x)
        return covered / total

    def percentile_length(self, p: float) -> int:
        """Smallest series length covering fraction *p* of instructions."""
        total = sum(self.lengths)
        if not total:
            return 0
        acc = 0
        for l in sorted(self.lengths):
            acc += l
            if acc / total >= p:
                return l
        return max(self.lengths)

    def mean_weighted(self) -> float:
        """Average series length experienced by an instruction."""
        total = sum(self.lengths)
        if not total:
            return 0.0
        return sum(l * l for l in self.lengths) / total


def weighted_cdf(results: Sequence[SimResult]
                 ) -> Dict[str, SeriesDistribution]:
    """Pool series lengths across runs into per-class distributions."""
    pooled: Dict[str, List[int]] = {"in_sequence": [], "reordered": []}
    for res in results:
        for t in res.threads:
            for key, lens in series_lengths(t).items():
                pooled[key].extend(lens)
    return {k: SeriesDistribution(v) for k, v in pooled.items()}
