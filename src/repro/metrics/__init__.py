"""Performance metrics and in-sequence/reordered classification.

* :func:`stp` — system throughput (Eyerman & Eeckhout, paper [6]), the
  paper's headline metric: the sum over threads of single-threaded CPI
  divided by multi-threaded CPI.
* :func:`antt` / :func:`fairness` — companion multiprogram metrics.
* :mod:`repro.metrics.classify` — the in-sequence instruction analysis
  behind Figures 1, 2 and 11.
"""

from repro.metrics.throughput import (antt, fairness, geomean,
                                      harmonic_speedup, stp,
                                      weighted_speedup)
from repro.metrics.classify import (
    SeriesDistribution,
    insequence_fraction,
    per_thread_insequence,
    series_lengths,
    weighted_cdf,
)

__all__ = [
    "antt",
    "fairness",
    "geomean",
    "harmonic_speedup",
    "stp",
    "weighted_speedup",
    "SeriesDistribution",
    "insequence_fraction",
    "per_thread_insequence",
    "series_lengths",
    "weighted_cdf",
]
