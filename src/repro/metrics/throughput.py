"""Multiprogram performance metrics.

The paper measures system throughput (STP), "a metric proposed by Eyerman
and Eeckhout that considers both performance improvement and fairness
across threads in a multi-threaded mix.  STP is the sum of the ratios of
each thread's clocks-per-instruction in single-threaded and multi-threaded
execution.  It reflects the number of programs completed per unit time."
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.stats import SimResult


def stp(multi: SimResult, single_cpis: Sequence[float]) -> float:
    """System throughput of a multiprogrammed run.

    Args:
        multi: result of the SMT run.
        single_cpis: per-thread CPI of each benchmark running *alone* on
            the same configuration (the metric's single-threaded reference).

    Returns:
        ``sum_i CPI_single_i / CPI_multi_i`` — at most the thread count,
        and exactly 1.0 for a single-thread run against itself.
    """
    if len(single_cpis) != len(multi.threads):
        raise ValueError("one single-thread CPI per SMT thread required")
    total = 0.0
    for t, ref in zip(multi.threads, single_cpis):
        if not math.isfinite(t.cpi) or t.cpi <= 0:
            continue  # thread made no progress: contributes zero
        total += ref / t.cpi
    return total


def antt(multi: SimResult, single_cpis: Sequence[float]) -> float:
    """Average normalized turnaround time (lower is better): the mean
    per-thread slowdown ``CPI_multi / CPI_single``."""
    if len(single_cpis) != len(multi.threads):
        raise ValueError("one single-thread CPI per SMT thread required")
    slowdowns = [t.cpi / ref for t, ref in zip(multi.threads, single_cpis)
                 if ref > 0 and math.isfinite(t.cpi)]
    return sum(slowdowns) / len(slowdowns) if slowdowns else float("inf")


def fairness(multi: SimResult, single_cpis: Sequence[float]) -> float:
    """Min/max ratio of per-thread normalized progress (1.0 = perfectly
    fair, 0 = some thread starved)."""
    progress = [ref / t.cpi for t, ref in zip(multi.threads, single_cpis)
                if ref > 0 and math.isfinite(t.cpi) and t.cpi > 0]
    if not progress:
        return 0.0
    return min(progress) / max(progress)


def weighted_speedup(multi: SimResult,
                     single_cpis: Sequence[float]) -> float:
    """Snavely & Tullsen's weighted speedup — identical in form to STP
    (sum of per-thread IPC ratios); provided under its common name."""
    return stp(multi, single_cpis)


def harmonic_speedup(multi: SimResult,
                     single_cpis: Sequence[float]) -> float:
    """Harmonic mean of per-thread speedups (Luo et al.): balances
    throughput and fairness, punishing starved threads hard."""
    if len(single_cpis) != len(multi.threads):
        raise ValueError("one single-thread CPI per SMT thread required")
    n = len(multi.threads)
    denom = 0.0
    for t, ref in zip(multi.threads, single_cpis):
        if ref <= 0:
            continue
        if not math.isfinite(t.cpi) or t.cpi <= 0:
            return 0.0  # a starved thread zeroes the harmonic mean
        denom += t.cpi / ref
    return n / denom if denom else 0.0


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper averages STP improvements this way)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
