"""Lint driver: file discovery, suppression handling, reporting.

``python -m repro lint [paths...]`` walks the given files/directories
(default: ``src`` and ``tests`` under the current directory), runs every
rule in :data:`repro.lint.rules.ALL_RULES` that applies to each file's
package, filters inline suppressions, and prints a readable report.
Exit status is 0 when clean, 1 when violations remain, 2 on usage
errors.

Inline suppression: append ``# repro-lint: disable=DET104`` (or a
comma-separated list, or ``all``) to the line the violation is reported
on.  Suppressions are the allowlist mechanism for audited sites — e.g.
a corruption-tolerant load path that legitimately needs a broad
``except``.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

import ast

from repro.lint.rules import ALL_RULES, FileContext, Rule, Violation

#: directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache",
              "build", "dist"}

#: ``disable=`` suppresses determinism-lint findings; ``waive=`` is the
#: spelling ``repro check`` documents for contract-analysis findings
#: (e.g. an audited hot-field read outside the lane registry).  Both
#: are honored everywhere and may list several codes or ``all``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?:disable|waive)="
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


def suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed codes (``{'all'}`` for all)."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",")}
            out[lineno] = codes
    return out


def package_of(path: Path) -> Optional[str]:
    """Subpackage of ``repro`` a file belongs to (None if outside it)."""
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            rest = parts[i + 1:]
            return rest[0] if len(rest) > 1 else ""
    return None


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    files: List[Path] = []
    for path in paths:
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts)))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for cand in candidates:
            resolved = cand.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(cand)
    return files


def lint_source(source: str, path: str,
                package: Optional[str] = None,
                rules: Optional[Sequence[Rule]] = None) -> List[Violation]:
    """Lint one already-read source blob (the testable core)."""
    ctx = FileContext(path=path, package=package)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 1, (exc.offset or 0) + 1,
                          "DET000", f"syntax error: {exc.msg}",
                          "fix the syntax error so the file can be linted")]
    suppressed = suppressions(source)
    out: List[Violation] = []
    for rule in (rules if rules is not None else ALL_RULES):
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(tree, ctx):
            codes = suppressed.get(violation.line)
            if codes and ("all" in codes or violation.code in codes):
                continue
            out.append(violation)
    out.sort(key=lambda v: (v.line, v.col, v.code))
    return out


def lint_file(path: Path,
              rules: Optional[Sequence[Rule]] = None) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), package_of(path), rules)


def sort_violations(violations: List[Violation]) -> List[Violation]:
    """Canonical report order: (path, line, col, code) — the stable
    order baseline files and CI diffs rely on."""
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def lint_paths(paths: Iterable[Path],
               rules: Optional[Sequence[Rule]] = None) -> List[Violation]:
    """Lint every Python file under *paths*; violations sorted by
    (path, line, col, code)."""
    out: List[Violation] = []
    for path in iter_python_files(paths):
        out.extend(lint_file(path, rules))
    return sort_violations(out)


def _default_paths() -> List[Path]:
    defaults = [p for p in (Path("src"), Path("tests")) if p.is_dir()]
    return defaults or [Path(".")]


def _list_rules() -> str:
    lines = ["repro lint rules:"]
    for rule in ALL_RULES:
        scope = ", ".join(sorted(rule.packages)) \
            if rule.packages is not None else "all files"
        lines.append(f"  {rule.code}  {rule.title}  [{scope}]")
        lines.append(f"          fix: {rule.hint}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism lint for the simulator codebase")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src tests)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = args.paths or _default_paths()
    try:
        files = iter_python_files(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    violations: List[Violation] = []
    for path in files:
        violations.extend(lint_file(path))
    sort_violations(violations)

    for violation in violations:
        print(violation.format())
    if violations:
        print(f"\nrepro lint: {len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s) "
              f"({len(files)} checked)")
        return 1
    print(f"repro lint: clean ({len(files)} files checked)")
    return 0
