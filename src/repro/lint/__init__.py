"""Determinism lint for the simulator (``python -m repro lint``).

A small AST-based lint pass with simulator-specific rules: the timing
model must be bit-reproducible (PR 1 made cached records a hard
requirement), so nondeterminism sources, unordered per-cycle iteration,
mutable defaults, broad exception handlers, and float equality are all
reportable defects.  See :mod:`repro.lint.rules` for the rule catalogue
and :mod:`repro.lint.engine` for the driver and the
``# repro-lint: disable=CODE`` suppression syntax.
"""

from repro.lint.engine import (lint_file, lint_paths, lint_source, main,
                               package_of, suppressions)
from repro.lint.rules import ALL_RULES, FileContext, Rule, Violation

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Rule",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "package_of",
    "suppressions",
]
