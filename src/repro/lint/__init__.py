"""Static analysis for the simulator: lint + contract passes.

Two entry points share one framework:

* ``python -m repro lint`` — the per-file determinism rules (DET1xx):
  nondeterminism sources, unordered per-cycle iteration, mutable
  defaults, broad exception handlers, float equality.  See
  :mod:`repro.lint.rules`.
* ``python -m repro check`` — everything ``lint`` does, plus the
  whole-project contract passes built on the shared
  :mod:`~repro.lint.model` / :mod:`~repro.lint.dataflow` layers:
  SLOT2xx (``DynInstr`` write-before-read slot contract), LANE3xx
  (object/lane engine drift), ASY4xx (service async-safety), DIG5xx
  (digest mode-flag purity).  See :mod:`repro.lint.check` for the
  driver (baseline file, ``--output json|sarif``, ``--explain``).

Both honor inline waivers: ``# repro-lint: disable=CODE`` (the
historical spelling) and ``# repro-lint: waive=CODE`` (preferred for
contract findings) on the reported line.
"""

from repro.lint.check import check_paths, check_sources, explain
from repro.lint.check import main as check_main
from repro.lint.engine import (lint_file, lint_paths, lint_source, main,
                               package_of, sort_violations, suppressions)
from repro.lint.model import ModuleInfo, ProjectModel
from repro.lint.passes import ProjectPass, all_passes
from repro.lint.rules import ALL_RULES, FileContext, Rule, Violation

__all__ = [
    "ALL_RULES",
    "FileContext",
    "ModuleInfo",
    "ProjectModel",
    "ProjectPass",
    "Rule",
    "Violation",
    "all_passes",
    "check_main",
    "check_paths",
    "check_sources",
    "explain",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "package_of",
    "sort_violations",
    "suppressions",
]
