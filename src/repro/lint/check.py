"""``repro check``: the aggregated contract-analysis driver.

Runs everything ``repro lint`` runs (the per-file DET1xx determinism
rules) *plus* the whole-project contract passes (SLOT2xx, LANE3xx,
ASY4xx, DIG5xx) over one shared :class:`~repro.lint.model.ProjectModel`,
then reports through a common pipeline: inline waivers
(``# repro-lint: waive=CODE``), an optional committed baseline for
grandfathered findings, canonical (path, line, col, code) ordering, and
``text`` / ``json`` / ``sarif`` output.

Exit status matches ``repro lint``: 0 clean (after waivers and
baseline), 1 when findings remain, 2 on usage errors.  CI runs
``python -m repro check src tests --output sarif`` and gates on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (iter_python_files, lint_source,
                               sort_violations, suppressions)
from repro.lint.model import ProjectModel
from repro.lint.passes import ProjectPass, all_passes
from repro.lint.rules import ALL_RULES, Violation

#: default committed-baseline location (repo root, next to pyproject).
DEFAULT_BASELINE = Path(".repro-check-baseline.json")

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


# ----------------------------------------------------------------------
# analysis
# ----------------------------------------------------------------------

def check_sources(sources: Dict[str, str],
                  passes: Optional[Sequence[ProjectPass]] = None
                  ) -> List[Violation]:
    """Run lint rules + contract passes over ``{path: source}`` (the
    testable core).  Waivers are applied; baseline is not."""
    out: List[Violation] = []
    for path, source in sources.items():
        out.extend(lint_source(source, path))

    model = ProjectModel.from_sources(sources)
    waived: Dict[str, Dict[int, Set[str]]] = {
        path: suppressions(source) for path, source in sources.items()}

    def is_waived(violation: Violation) -> bool:
        by_line = waived.get(violation.path)
        if by_line is None:
            # Pass findings can anchor on a contract module pulled in
            # from the installed tree (e.g. `repro check tests`); honor
            # its inline waivers too.
            try:
                text = Path(violation.path).read_text(encoding="utf-8")
            except OSError:
                text = ""
            by_line = waived[violation.path] = suppressions(text)
        codes = by_line.get(violation.line)
        return bool(codes) and ("all" in codes or violation.code in codes)

    for project_pass in (passes if passes is not None else all_passes()):
        for violation in project_pass.run(model):
            if not is_waived(violation):
                out.append(violation)
    return sort_violations(out)


def check_paths(paths: Iterable[Path],
                passes: Optional[Sequence[ProjectPass]] = None
                ) -> List[Violation]:
    files = iter_python_files(paths)
    sources = {str(p): p.read_text(encoding="utf-8") for p in files}
    return check_sources(sources, passes)


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

def baseline_keys(path: Path) -> Optional[Set[Tuple[str, str, str]]]:
    """Grandfathered (path, code, message) triples, or None when the
    file does not exist.  Line numbers are deliberately excluded so
    unrelated edits above a baselined finding don't un-baseline it."""
    if not path.is_file():
        return None
    data = json.loads(path.read_text(encoding="utf-8"))
    return {(e["path"], e["code"], e["message"])
            for e in data.get("entries", [])}


def write_baseline(path: Path, violations: List[Violation]) -> None:
    entries = [{"path": v.path, "code": v.code, "message": v.message}
               for v in violations]
    payload = {
        "comment": ("grandfathered `repro check` findings; shrink, "
                    "never grow — remove entries as they are fixed"),
        "entries": entries,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def apply_baseline(violations: List[Violation],
                   keys: Optional[Set[Tuple[str, str, str]]]
                   ) -> Tuple[List[Violation], int]:
    """(remaining findings, count suppressed by the baseline)."""
    if not keys:
        return violations, 0
    remaining = [v for v in violations
                 if (v.path, v.code, v.message) not in keys]
    return remaining, len(violations) - len(remaining)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------

def _rule_catalog() -> List[Tuple[str, str, str, str]]:
    """(code, title, hint, explain) for every rule and pass."""
    out = [(r.code, r.title, r.hint, (r.__doc__ or "").strip())
           for r in ALL_RULES]
    out += [(p.code, p.title, p.hint, p.explain) for p in all_passes()]
    return out


def explain(code: str) -> Optional[str]:
    for rule_code, title, hint, text in _rule_catalog():
        if rule_code == code.upper():
            return (f"{rule_code}: {title}\n\n{text}\n\nfix: {hint}"
                    if text else f"{rule_code}: {title}\n\nfix: {hint}")
    return None


def render_text(violations: List[Violation], files_checked: int,
                baselined: int) -> str:
    lines = [v.format() for v in violations]
    if violations:
        lines.append("")
        lines.append(
            f"repro check: {len(violations)} finding(s) in "
            f"{len({v.path for v in violations})} file(s) "
            f"({files_checked} checked"
            + (f", {baselined} baselined" if baselined else "") + ")")
    else:
        lines.append(
            f"repro check: clean ({files_checked} files checked"
            + (f", {baselined} baselined" if baselined else "") + ")")
    return "\n".join(lines)


def render_json(violations: List[Violation], files_checked: int,
                baselined: int) -> str:
    return json.dumps({
        "tool": "repro-check",
        "files_checked": files_checked,
        "baselined": baselined,
        "findings": [
            {"path": v.path, "line": v.line, "col": v.col,
             "code": v.code, "message": v.message, "hint": v.hint}
            for v in violations],
    }, indent=2) + "\n"


def render_sarif(violations: List[Violation]) -> str:
    rules = [{
        "id": code,
        "shortDescription": {"text": title},
        "help": {"text": (text + "\n\nfix: " + hint).strip()},
    } for code, title, hint, text in _rule_catalog()]
    results = [{
        "ruleId": v.code,
        "level": "error",
        "message": {"text": f"{v.message} (fix: {v.hint})"},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": v.path.replace("\\", "/"),
                    "uriBaseId": "SRCROOT",
                },
                "region": {"startLine": v.line, "startColumn": v.col},
            },
        }],
    } for v in violations]
    return json.dumps({
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-check",
                "informationUri": "https://example.invalid/repro-check",
                "rules": rules,
            }},
            "results": results,
        }],
    }, indent=2) + "\n"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _default_paths() -> List[Path]:
    defaults = [p for p in (Path("src"), Path("tests")) if p.is_dir()]
    return defaults or [Path(".")]


def _list_rules() -> str:
    lines = ["repro check rules (DET via `repro lint`, the rest are "
             "contract passes):"]
    for code, title, hint, _ in _rule_catalog():
        lines.append(f"  {code}  {title}")
        lines.append(f"          fix: {hint}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="contract analysis: determinism lint + slot/lane/"
                    "async/digest passes")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src tests)")
    parser.add_argument("--output", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--output-file", type=Path, default=None,
                        help="write the report here (text summary still "
                             "goes to stdout)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--explain", metavar="CODE", default=None,
                        help="print the rationale for one rule and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.explain:
        text = explain(args.explain)
        if text is None:
            print(f"error: unknown rule code {args.explain!r}",
                  file=sys.stderr)
            return 2
        print(text)
        return 0

    paths = args.paths or _default_paths()
    try:
        files = iter_python_files(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    sources = {str(p): p.read_text(encoding="utf-8") for p in files}
    violations = check_sources(sources)

    if args.write_baseline:
        write_baseline(args.baseline, violations)
        print(f"repro check: wrote {len(violations)} finding(s) to "
              f"{args.baseline}")
        return 0

    keys = None if args.no_baseline else baseline_keys(args.baseline)
    violations, baselined = apply_baseline(violations, keys)

    if args.output == "sarif":
        report = render_sarif(violations)
    elif args.output == "json":
        report = render_json(violations, len(files), baselined)
    else:
        report = render_text(violations, len(files), baselined)

    if args.output_file is not None:
        args.output_file.write_text(report, encoding="utf-8")
        print(render_text(violations, len(files), baselined))
    else:
        print(report, end="" if report.endswith("\n") else "\n")

    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
