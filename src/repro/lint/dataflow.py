"""Per-function attribute dataflow over the AST.

The contract passes need two things no single-node walk provides:

* **receiver typing** — is ``x`` in ``x.retry_after`` a
  :class:`~repro.core.dynamic.DynInstr`?  Resolved from parameter
  annotations, known constructors, typed containers (``thread.rob``,
  ``pipe.iq`` ...), result-returning attributes/methods
  (``thread.shelf.head``, ``lsq.violation_load(...)``), and — last —
  the ``dyn`` naming convention the codebase uses everywhere;
* **must-assign analysis** — is a read of ``dyn.f`` *dominated* by a
  write to ``dyn.f`` on every path through the function?  A forward
  walk carries the definitely-assigned ``(receiver, attr)`` set,
  intersecting at branch joins and treating loop bodies as a single
  linear pass (writes earlier in the body cover later reads in it, but
  nothing escapes to the code after the loop — the loop may run zero
  times).

Both analyses are deliberately conservative *toward reporting*: an
unknown receiver is simply not a ``DynInstr`` (no finding), and an
uncertain domination is "not dominated" (a finding, reviewable via
waiver).  The product is a flat list of :class:`Access` records the
passes filter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

#: attribute names that hold a list/deque of DynInstr (any receiver
#: depth: ``thread.rob``, ``pipe.iq``, ``self.dyn_of`` ...).
CONTAINER_ATTRS = frozenset({
    "rob", "in_flight", "frontend", "iq", "lq", "sq", "dyn_of",
    "shelf_wb_pending", "_ready_iq", "ready", "ready_ld",
})

#: attribute reads that yield one DynInstr (``thread.shelf.head``).
RESULT_ATTRS = frozenset({"head", "pending_branch"})

#: method calls that return a DynInstr or None.
RESULT_CALLS = frozenset({
    "violation_load", "find_forwarding_store", "find_forwarding_load",
})

#: the naming convention: a variable named ``dyn`` is a DynInstr unless
#: the flow analysis proved otherwise.
NAME_FALLBACK = frozenset({"dyn"})

#: functions that perform a *guarded* (defaulted) slot read.
GUARDED_READERS = frozenset({"slot_or_none"})

_DYN = "dyn"
_DYNLIST = "dynlist"


@dataclass
class Access:
    """One attribute access on a named receiver."""

    node: ast.AST          #: carries lineno/col_offset for reporting
    recv: str              #: receiver variable name
    attr: str
    is_write: bool
    #: read through getattr-with-default / slot_or_none
    guarded: bool
    #: a write to the same (recv, attr) definitely precedes this read
    #: on every path through the function
    dominated: bool
    #: receiver resolved to DynInstr
    recv_is_dyn: bool


def _annotation_is_dyn(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except (ValueError, AttributeError):  # pragma: no cover - old ast
        return False
    return "DynInstr" in text


class _FunctionFlow:
    """One forward walk over a function body."""

    def __init__(self, func: ast.AST) -> None:
        self.accesses: List[Access] = []
        types: Dict[str, Optional[str]] = {}
        args = getattr(func, "args", None)
        if args is not None:
            all_args = (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs))
            for arg in all_args:
                if _annotation_is_dyn(arg.annotation):
                    types[arg.arg] = _DYN
        self._walk_stmts(getattr(func, "body", []), types, set())

    # -- typing --------------------------------------------------------

    def _type_of(self, expr: Optional[ast.expr],
                 types: Dict[str, Optional[str]]) -> Optional[str]:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            got = types.get(expr.id)
            if got is not None:
                return got
            # the naming convention outranks an inconclusive flow type:
            # `_, _, dyn = heappop(heap)` still yields a DynInstr
            return _DYN if expr.id in NAME_FALLBACK else None
        if isinstance(expr, ast.Attribute):
            if expr.attr in RESULT_ATTRS:
                return _DYN
            if expr.attr in CONTAINER_ATTRS:
                return _DYNLIST
            return None
        if isinstance(expr, ast.Subscript):
            base = self._type_of(expr.value, types)
            return _DYN if base == _DYNLIST else None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id == "DynInstr":
                    return _DYN
                if func.id in ("sorted", "list", "reversed") and expr.args:
                    if self._type_of(expr.args[0], types) == _DYNLIST:
                        return _DYNLIST
            elif isinstance(func, ast.Attribute):
                if func.attr in RESULT_CALLS:
                    return _DYN
                if func.attr == "copy" and \
                        self._type_of(func.value, types) == _DYNLIST:
                    return _DYNLIST
            return None
        if isinstance(expr, ast.IfExp):
            body_t = self._type_of(expr.body, types)
            orelse_t = self._type_of(expr.orelse, types)
            return body_t if body_t == orelse_t else None
        if isinstance(expr, ast.BoolOp):
            kinds = {self._type_of(v, types) for v in expr.values}
            return kinds.pop() if len(kinds) == 1 else None
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            scope = dict(types)
            for gen in expr.generators:
                self._bind_target(gen.target,
                                  self._elem_type(gen.iter, scope), scope)
            return _DYNLIST if self._type_of(expr.elt, scope) == _DYN \
                else None
        return None

    def _elem_type(self, it: ast.expr,
                   types: Dict[str, Optional[str]]) -> Optional[str]:
        return _DYN if self._type_of(it, types) == _DYNLIST else None

    def _bind_target(self, target: ast.expr, elem_type: Optional[str],
                     types: Dict[str, Optional[str]]) -> None:
        if isinstance(target, ast.Name):
            types[target.id] = elem_type
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, None, types)

    # -- access recording ----------------------------------------------

    def _record(self, node: ast.AST, recv: str, attr: str, *,
                is_write: bool, guarded: bool,
                types: Dict[str, Optional[str]],
                assigned: Set[Tuple[str, str]]) -> None:
        recv_type = types.get(recv)
        if recv_type is None and recv in NAME_FALLBACK:
            recv_type = _DYN
        self.accesses.append(Access(
            node=node, recv=recv, attr=attr, is_write=is_write,
            guarded=guarded, dominated=(recv, attr) in assigned,
            recv_is_dyn=recv_type == _DYN))

    # -- expressions ---------------------------------------------------

    def _eval(self, expr: Optional[ast.expr],
              types: Dict[str, Optional[str]],
              assigned: Set[Tuple[str, str]]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name):
                self._record(expr, expr.value.id, expr.attr,
                             is_write=not isinstance(expr.ctx, ast.Load),
                             guarded=False, types=types, assigned=assigned)
            else:
                self._eval(expr.value, types, assigned)
            return
        if isinstance(expr, ast.Call):
            func = expr.func
            fname = func.id if isinstance(func, ast.Name) else None
            if fname in GUARDED_READERS or fname == "getattr":
                args = expr.args
                if len(args) >= 2 and isinstance(args[0], ast.Name) and \
                        isinstance(args[1], ast.Constant) and \
                        isinstance(args[1].value, str):
                    guarded = fname in GUARDED_READERS or len(args) >= 3
                    self._record(expr, args[0].id, args[1].value,
                                 is_write=False, guarded=guarded,
                                 types=types, assigned=assigned)
                    for extra in args[2:]:
                        self._eval(extra, types, assigned)
                    return
            self._eval(func if not isinstance(func, ast.Name) else None,
                       types, assigned)
            for arg in expr.args:
                self._eval(arg, types, assigned)
            for kw in expr.keywords:
                self._eval(kw.value, types, assigned)
            return
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            scope = dict(types)
            for gen in expr.generators:
                self._eval(gen.iter, scope, assigned)
                self._bind_target(gen.target,
                                  self._elem_type(gen.iter, scope), scope)
                for cond in gen.ifs:
                    self._eval(cond, scope, assigned)
            if isinstance(expr, ast.DictComp):
                self._eval(expr.key, scope, assigned)
                self._eval(expr.value, scope, assigned)
            else:
                self._eval(expr.elt, scope, assigned)
            return
        if isinstance(expr, ast.Lambda):
            scope = dict(types)
            for arg in expr.args.args:
                scope[arg.arg] = None
            self._eval(expr.body, scope, assigned)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._eval(child, types, assigned)

    # -- statements ----------------------------------------------------

    def _walk_stmts(self, stmts: List[ast.stmt],
                    types: Dict[str, Optional[str]],
                    assigned: Set[Tuple[str, str]]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, types, assigned)

    @staticmethod
    def _merge(types: Dict[str, Optional[str]],
               assigned: Set[Tuple[str, str]],
               branches: List[Tuple[Dict[str, Optional[str]],
                                    Set[Tuple[str, str]]]]) -> None:
        """Join *branches* back into (types, assigned) in place:
        assignment facts survive only when every branch agrees."""
        if not branches:
            return
        joined = set.intersection(*(b[1] for b in branches))
        assigned.clear()
        assigned.update(joined)
        names = set(types)
        for b_types, _ in branches:
            names |= set(b_types)
        types.clear()
        for name in names:
            kinds = {b_types.get(name) for b_types, _ in branches}
            if len(kinds) == 1:
                types[name] = kinds.pop()

    def _write_targets(self, target: ast.expr,
                       value_type: Optional[str],
                       types: Dict[str, Optional[str]],
                       assigned: Set[Tuple[str, str]]) -> None:
        if isinstance(target, ast.Name):
            types[target.id] = value_type
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name):
                self._record(target, target.value.id, target.attr,
                             is_write=True, guarded=False,
                             types=types, assigned=assigned)
                assigned.add((target.value.id, target.attr))
            else:
                self._eval(target.value, types, assigned)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._write_targets(elt, None, types, assigned)
        elif isinstance(target, ast.Subscript):
            self._eval(target.value, types, assigned)
            self._eval(target.slice, types, assigned)
        elif isinstance(target, ast.Starred):
            self._write_targets(target.value, None, types, assigned)

    def _walk_stmt(self, stmt: ast.stmt,
                   types: Dict[str, Optional[str]],
                   assigned: Set[Tuple[str, str]]) -> None:
        if isinstance(stmt, ast.Assign):
            self._eval(stmt.value, types, assigned)
            value_type = self._type_of(stmt.value, types)
            for target in stmt.targets:
                self._write_targets(target, value_type, types, assigned)
        elif isinstance(stmt, ast.AnnAssign):
            self._eval(stmt.value, types, assigned)
            value_type = self._type_of(stmt.value, types)
            if value_type is None and _annotation_is_dyn(stmt.annotation):
                value_type = _DYN
            self._write_targets(stmt.target, value_type, types, assigned)
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, types, assigned)
            target = stmt.target
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name):
                # read-modify-write: record the read, then the write
                self._record(target, target.value.id, target.attr,
                             is_write=False, guarded=False,
                             types=types, assigned=assigned)
                self._record(target, target.value.id, target.attr,
                             is_write=True, guarded=False,
                             types=types, assigned=assigned)
                assigned.add((target.value.id, target.attr))
            else:
                self._write_targets(target, None, types, assigned)
        elif isinstance(stmt, (ast.If,)):
            self._eval(stmt.test, types, assigned)
            branches = []
            for body in (stmt.body, stmt.orelse):
                b_types, b_assigned = dict(types), set(assigned)
                self._walk_stmts(body, b_types, b_assigned)
                branches.append((b_types, b_assigned))
            self._merge(types, assigned, branches)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, types, assigned)
            b_types, b_assigned = dict(types), set(assigned)
            self._bind_target(stmt.target,
                              self._elem_type(stmt.iter, types), b_types)
            self._walk_stmts(stmt.body, b_types, b_assigned)
            self._walk_stmts(stmt.orelse, dict(types), set(assigned))
            # the loop may run zero times: nothing escapes to the code
            # after it, but the iteration variable's binding does
            self._bind_target(stmt.target,
                              self._elem_type(stmt.iter, types), types)
        elif isinstance(stmt, (ast.While,)):
            self._eval(stmt.test, types, assigned)
            self._walk_stmts(stmt.body, dict(types), set(assigned))
            self._walk_stmts(stmt.orelse, dict(types), set(assigned))
        elif isinstance(stmt, ast.Try):
            b_types, b_assigned = dict(types), set(assigned)
            self._walk_stmts(stmt.body, b_types, b_assigned)
            for handler in stmt.handlers:
                self._walk_stmts(handler.body, dict(types), set(assigned))
            self._walk_stmts(stmt.orelse, b_types, b_assigned)
            self._walk_stmts(stmt.finalbody, types, assigned)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, types, assigned)
                if item.optional_vars is not None:
                    self._write_targets(item.optional_vars, None,
                                        types, assigned)
            self._walk_stmts(stmt.body, types, assigned)
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            self._eval(stmt.value, types, assigned)
        elif isinstance(stmt, ast.Raise):
            self._eval(stmt.exc, types, assigned)
            self._eval(stmt.cause, types, assigned)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, types, assigned)
            self._eval(stmt.msg, types, assigned)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._eval(target, types, assigned)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # analyzed separately via iter_functions
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing to do


def function_accesses(func: ast.AST) -> List[Access]:
    """Every named-receiver attribute access in *func*, with receiver
    typing and read-domination resolved (see the module docstring)."""
    return _FunctionFlow(func).accesses
