"""Simulator-specific determinism lint rules (AST-based).

Each rule targets a failure mode that corrupts *results* without failing
any test: a wall-clock read or an unseeded RNG makes records
irreproducible; iterating a ``set`` in a per-cycle path makes the issue
order depend on hash seeds; a mutable default argument leaks state
between :class:`~repro.core.pipeline.Pipeline` instances; a broad
``except`` swallows an invariant violation; a float ``==`` in the
metrics/energy layers silently misclassifies boundary values.

Every rule carries an error code, a one-line message, and a fix hint.
Violations can be suppressed inline with ``# repro-lint: disable=CODE``
on the offending line (see :mod:`repro.lint.engine`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Set

#: packages whose source defines simulated timing behaviour.
TIMING_PACKAGES = frozenset(
    {"core", "memory", "frontend", "rename", "trace", "isa"})

#: packages whose code runs inside the per-cycle simulation loop.
PER_CYCLE_PACKAGES = frozenset({"core", "rename", "frontend"})

#: packages where floating-point results are compared and reported.
FLOAT_PACKAGES = frozenset({"metrics", "energy"})

#: reduction builtins whose result does not depend on iteration order —
#: a generator fed directly into one of these may iterate a set safely.
ORDER_INSENSITIVE_REDUCERS = frozenset(
    {"any", "all", "sum", "min", "max", "len", "sorted", "set", "frozenset"})


@dataclass(frozen=True)
class Violation:
    """One lint finding: location, code, message, and fix hint."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.code} "
                f"{self.message}\n    hint: {self.hint}")


@dataclass(frozen=True)
class FileContext:
    """What the rules know about the file being linted."""

    path: str
    #: subpackage under ``repro`` ('' for top-level modules, None when the
    #: file is outside the package, e.g. tests/ or scripts/).
    package: Optional[str]


class Rule:
    """Base class: subclasses set the class attributes and implement
    :meth:`check`."""

    code: str = ""
    title: str = ""
    hint: str = ""
    #: packages the rule applies to (None = every linted file).
    packages: Optional[FrozenSet[str]] = None

    def applies_to(self, ctx: FileContext) -> bool:
        if self.packages is None:
            return True
        return ctx.package is not None and ctx.package in self.packages

    def check(self, tree: ast.Module,
              ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(ctx.path, node.lineno, node.col_offset + 1,
                         self.code, message, self.hint)


def _dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of a call target (``a.b.c`` or ``f``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# DET101: nondeterminism sources in timing-model code
# ---------------------------------------------------------------------------

class NondeterminismRule(Rule):
    """No unseeded RNG, wall clock, or entropy source in the timing model.

    ``random.Random(seed)`` instances are fine — the global ``random``
    module functions, ``os.urandom``, ``time.time``/``perf_counter``,
    ``datetime.now`` and friends are not: any of them makes two runs of
    the same simulation point diverge, which breaks the content-addressed
    result store's bit-identity contract.
    """

    code = "DET101"
    title = "nondeterminism source in timing-model code"
    hint = ("inject a seeded random.Random(seed) instance, or pass the "
            "value in from the harness layer")
    packages = TIMING_PACKAGES

    #: random.<attr> calls that are allowed (seeded-instance constructor).
    _RANDOM_OK = frozenset({"Random"})
    _TIME_BAD = frozenset({"time", "time_ns", "perf_counter",
                           "perf_counter_ns", "monotonic", "monotonic_ns"})
    _DATETIME_BAD = frozenset({"now", "utcnow", "today"})
    _UUID_BAD = frozenset({"uuid1", "uuid4"})

    def _bad_call(self, name: str) -> bool:
        head, _, tail = name.partition(".")
        if head == "random":
            return bool(tail) and tail not in self._RANDOM_OK
        if name == "os.urandom":
            return True
        if head == "time":
            return tail in self._TIME_BAD
        if head in ("datetime", "date"):
            return name.rsplit(".", 1)[-1] in self._DATETIME_BAD
        if head == "secrets":
            return bool(tail)
        if head == "uuid":
            return tail in self._UUID_BAD
        return False

    def check(self, tree: ast.Module,
              ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = _dotted_name(node.func)
                if name and self._bad_call(name):
                    yield self.violation(
                        ctx, node,
                        f"call to nondeterministic `{name}()` reachable "
                        f"from the timing model")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                mod = node.module or ""
                for alias in node.names:
                    if self._bad_call(f"{mod}.{alias.name}") or \
                            mod == "secrets":
                        yield self.violation(
                            ctx, node,
                            f"import of nondeterministic "
                            f"`{mod}.{alias.name}` in timing-model code")


# ---------------------------------------------------------------------------
# DET102: unordered iteration in per-cycle paths
# ---------------------------------------------------------------------------

class UnorderedIterationRule(Rule):
    """No bare iteration over ``set``s or ``dict`` views in per-cycle code.

    Iteration order over a set depends on the hash seed and insertion
    history; a per-cycle loop (issue select, squash walk, retire scan)
    that visits candidates in set order produces schedules that vary
    between processes.  Wrap the iterable in ``sorted(...)`` or feed the
    generator straight into an order-insensitive reduction (``any``,
    ``all``, ``sum``, ``min``, ``max``, ``len``, ``set``, ``sorted``).
    """

    code = "DET102"
    title = "unordered iteration in a per-cycle path"
    hint = ("wrap the iterable in sorted(...), or reduce it with an "
            "order-insensitive builtin (any/all/sum/min/max/len)")
    packages = PER_CYCLE_PACKAGES

    _VIEW_METHODS = frozenset({"values", "keys", "items"})

    @staticmethod
    def _set_attrs(tree: ast.Module) -> Set[str]:
        """Attribute names assigned a set anywhere in the module
        (``self.x = set()`` / ``self.x = {...}``)."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset"))
            if not is_set:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    names.add(target.attr)
                elif isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _unordered(self, node: ast.AST, set_attrs: Set[str]) -> Optional[str]:
        """Describe why iterating *node* is unordered (None = it isn't)."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and \
                    node.func.id in ("set", "frozenset"):
                return f"a `{node.func.id}()` value"
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self._VIEW_METHODS:
                return f"a `.{node.func.attr}()` view"
        if isinstance(node, ast.Attribute) and node.attr in set_attrs:
            return f"set-typed attribute `{node.attr}`"
        if isinstance(node, ast.Name) and node.id in set_attrs:
            return f"set-typed variable `{node.id}`"
        return None

    @staticmethod
    def _exempt_comprehensions(tree: ast.Module) -> Set[int]:
        """ids of comprehensions fed directly into order-insensitive
        reductions — their iteration order cannot affect the result."""
        exempt: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ORDER_INSENSITIVE_REDUCERS:
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                        ast.SetComp)):
                        exempt.add(id(arg))
        return exempt

    def check(self, tree: ast.Module,
              ctx: FileContext) -> Iterator[Violation]:
        set_attrs = self._set_attrs(tree)
        exempt = self._exempt_comprehensions(tree)
        for node in ast.walk(tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.GeneratorExp, ast.ListComp,
                                   ast.SetComp, ast.DictComp)):
                if id(node) in exempt:
                    continue
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                why = self._unordered(it, set_attrs)
                if why is not None:
                    yield self.violation(
                        ctx, it,
                        f"iteration over {why} in a per-cycle path "
                        f"(order depends on hashing)")


# ---------------------------------------------------------------------------
# DET103: mutable default arguments
# ---------------------------------------------------------------------------

class MutableDefaultRule(Rule):
    """No mutable default arguments anywhere.

    A ``def f(log=[])`` default is shared across *every* call and every
    :class:`Pipeline` instance — state leaks silently between simulation
    points and between pool workers' warm processes.
    """

    code = "DET103"
    title = "mutable default argument"
    hint = "default to None and construct the container inside the function"

    _FACTORY_CALLS = frozenset({"list", "dict", "set", "bytearray",
                                "deque", "defaultdict", "OrderedDict",
                                "Counter"})

    def _mutable(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            return name.rsplit(".", 1)[-1] in self._FACTORY_CALLS
        return False

    def check(self, tree: ast.Module,
              ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                args = node.args
                defaults = list(args.defaults) + list(args.kw_defaults)
                for default in defaults:
                    if self._mutable(default):
                        name = getattr(node, "name", "<lambda>")
                        yield self.violation(
                            ctx, default,
                            f"mutable default argument in `{name}` is "
                            f"shared across calls")


# ---------------------------------------------------------------------------
# DET104: broad exception handlers
# ---------------------------------------------------------------------------

class BroadExceptRule(Rule):
    """No bare/broad ``except`` outside audited corruption-tolerance sites.

    ``except Exception`` around simulator code swallows the exact
    invariant violations the sanitizer exists to surface.  Handlers that
    re-raise (cleanup-only) are exempt; an audited corruption-tolerance
    site (e.g. the result store's load path) is allowlisted with an
    inline ``# repro-lint: disable=DET104``.
    """

    code = "DET104"
    title = "bare or broad exception handler"
    hint = ("catch the concrete errors the site can produce, or allowlist "
            "an audited corruption-tolerance site with "
            "`# repro-lint: disable=DET104`")

    _BROAD = frozenset({"Exception", "BaseException"})

    def _broad_name(self, node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return "bare except"
        if isinstance(node, ast.Name) and node.id in self._BROAD:
            return node.id
        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                got = self._broad_name(elt)
                if got is not None and got != "bare except":
                    return got
        return None

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(n, ast.Raise) and n.exc is None
                   for n in ast.walk(handler))

    def check(self, tree: ast.Module,
              ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None or self._reraises(node):
                continue
            what = "bare `except:`" if broad == "bare except" \
                else f"`except {broad}`"
            yield self.violation(
                ctx, node,
                f"{what} can swallow invariant violations")


# ---------------------------------------------------------------------------
# DET105: float equality in metrics/energy
# ---------------------------------------------------------------------------

class FloatEqualityRule(Rule):
    """No ``==``/``!=`` against floating-point values in metrics/energy.

    STP, EDP, and the in-sequence fractions are all derived floats;
    equality against them classifies boundary values by rounding noise.
    """

    code = "DET105"
    title = "floating-point equality comparison"
    hint = "compare with math.isclose(...) or an explicit tolerance"
    packages = FLOAT_PACKAGES

    def _floaty(self, node: ast.AST) -> bool:
        """Is *node* statically known to produce a float?"""
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and node.func.id == "float":
            return True
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._floaty(node.left) or self._floaty(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._floaty(node.operand)
        return False

    def check(self, tree: ast.Module,
              ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(self._floaty(o) for o in operands):
                yield self.violation(
                    ctx, node,
                    "float == / != comparison misclassifies boundary "
                    "values")


#: registry, in code order.
ALL_RULES: List[Rule] = [
    NondeterminismRule(),
    UnorderedIterationRule(),
    MutableDefaultRule(),
    BroadExceptRule(),
    FloatEqualityRule(),
]
