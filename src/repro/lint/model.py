"""Shared project model for the multi-pass contract analysis.

`repro check`'s rule families reason about *cross-function* and
*cross-module* properties — which stage writes which ``DynInstr`` slot,
whether every hot field read has a lane, whether a mode flag can reach
a digest.  A per-node AST pass cannot see those, so every pass runs
over one :class:`ProjectModel`: all analyzed sources parsed once, plus
symbol-level accessors (module lookup by path tail, literal
module-level constants, class ``__slots__`` and ``__init__``
assignments, the async-function index).

The model is purely static — it never imports analyzed code.  When a
pass needs a *contract module* (``core/dynamic.py``, ``core/lanes.py``,
``isa/opcodes.py``) that the analyzed file set does not include (e.g.
``repro check tests``), :meth:`ProjectModel.contract_module` falls back
to parsing the installed ``repro`` package's own source from disk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.engine import package_of


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str                   #: path as given (reported in findings)
    package: Optional[str]      #: ``repro`` subpackage, or None outside
    source: str
    tree: ast.Module

    @property
    def tail(self) -> str:
        """``package/file.py`` identity, e.g. ``core/dynamic.py``."""
        parts = Path(self.path).parts
        return "/".join(parts[-2:]) if len(parts) >= 2 else self.path


def _literal(node: ast.AST) -> object:
    """``ast.literal_eval`` extended to ``frozenset({...})`` /
    ``set(...)`` / ``tuple(...)`` wrapper calls; raises ``ValueError``
    on anything non-literal."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("frozenset", "set", "tuple", "list") \
            and not node.keywords and len(node.args) <= 1:
        inner = _literal(node.args[0]) if node.args else ()
        factory = {"frozenset": frozenset, "set": set,
                   "tuple": tuple, "list": list}[node.func.id]
        return factory(inner)  # type: ignore[arg-type]
    return ast.literal_eval(node)


class ProjectModel:
    """All analyzed modules plus symbol-level accessors."""

    def __init__(self, modules: List[ModuleInfo]) -> None:
        self.modules = modules
        self._by_tail: Dict[str, ModuleInfo] = {m.tail: m for m in modules}
        self._contract_cache: Dict[str, Optional[ModuleInfo]] = {}
        self._async_index: Optional[Dict[str, Set[str]]] = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "ProjectModel":
        """Build from ``{path: source}`` (the testable entry point).
        Files that fail to parse are skipped — the plain lint reports
        their syntax errors."""
        modules = []
        for path, source in sorted(sources.items()):
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            modules.append(ModuleInfo(path, package_of(Path(path)),
                                      source, tree))
        return cls(modules)

    @classmethod
    def from_paths(cls, paths: List[Path]) -> "ProjectModel":
        return cls.from_sources(
            {str(p): p.read_text(encoding="utf-8") for p in paths})

    # -- module lookup -------------------------------------------------

    def module(self, tail: str) -> Optional[ModuleInfo]:
        """The analyzed module whose path ends with *tail*."""
        got = self._by_tail.get(tail)
        if got is not None:
            return got
        for mod in self.modules:
            if mod.path.replace("\\", "/").endswith(tail):
                return mod
        return None

    def contract_module(self, tail: str) -> Optional[ModuleInfo]:
        """Like :meth:`module`, but falls back to the installed
        ``repro`` source tree so contract passes can check e.g.
        ``tests/`` against the real registries."""
        got = self.module(tail)
        if got is not None:
            return got
        if tail not in self._contract_cache:
            self._contract_cache[tail] = self._load_installed(tail)
        return self._contract_cache[tail]

    @staticmethod
    def _load_installed(tail: str) -> Optional[ModuleInfo]:
        import repro
        path = Path(repro.__file__).parent / tail
        if not path.is_file():
            return None
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return None
        return ModuleInfo(str(path), package_of(path), source, tree)

    # -- symbol accessors ----------------------------------------------

    @staticmethod
    def module_literal(mod: ModuleInfo, name: str) -> object:
        """The literal value of a module-level ``name = <literal>``
        assignment (annotated or not); None when absent or non-literal."""
        for node in mod.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    try:
                        return _literal(value)
                    except (ValueError, TypeError, SyntaxError):
                        return None
        return None

    @staticmethod
    def module_assignment(mod: ModuleInfo, name: str) -> Optional[ast.expr]:
        """The value expression of a module-level assignment to *name*."""
        for node in mod.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return node.value
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name) and \
                    node.target.id == name:
                return node.value
        return None

    @staticmethod
    def class_def(mod: ModuleInfo, name: str) -> Optional[ast.ClassDef]:
        for node in mod.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None

    @staticmethod
    def class_slots(cls_node: ast.ClassDef) -> Optional[Tuple[str, ...]]:
        """The class's ``__slots__`` tuple, if literal."""
        for node in cls_node.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id == "__slots__":
                        try:
                            value = _literal(node.value)
                        except (ValueError, TypeError, SyntaxError):
                            return None
                        if isinstance(value, (tuple, list)):
                            return tuple(str(v) for v in value)
        return None

    @staticmethod
    def init_assigned(cls_node: ast.ClassDef) -> Set[str]:
        """Attribute names ``__init__`` assigns on ``self`` (including
        annotated and augmented assignments)."""
        out: Set[str] = set()
        for node in cls_node.body:
            if not (isinstance(node, ast.FunctionDef)
                    and node.name == "__init__"):
                continue
            for sub in ast.walk(node):
                target: Optional[ast.expr] = None
                if isinstance(sub, ast.Assign):
                    for tgt in sub.targets:
                        if isinstance(tgt, ast.Attribute) and \
                                isinstance(tgt.value, ast.Name) and \
                                tgt.value.id == "self":
                            out.add(tgt.attr)
                    continue
                if isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                    target = sub.target
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    out.add(target.attr)
        return out

    @staticmethod
    def class_properties(cls_node: ast.ClassDef) -> Set[str]:
        """Names of ``@property`` methods on the class."""
        out: Set[str] = set()
        for node in cls_node.body:
            if isinstance(node, ast.FunctionDef) and any(
                    isinstance(d, ast.Name) and d.id == "property"
                    for d in node.decorator_list):
                out.add(node.name)
        return out

    # -- async index ---------------------------------------------------

    def async_functions(self) -> Dict[str, Set[str]]:
        """Per-module-tail sets of ``async def`` names (methods use the
        bare name; the ASY402 pass resolves ``self.<name>`` within the
        defining class only)."""
        if self._async_index is None:
            index: Dict[str, Set[str]] = {}
            for mod in self.modules:
                names = {n.name for n in ast.walk(mod.tree)
                         if isinstance(n, ast.AsyncFunctionDef)}
                if names:
                    index[mod.tail] = names
            self._async_index = index
        return self._async_index


@dataclass
class FunctionInfo:
    """One function/method with its enclosing context (used by the
    dataflow layer; collected via :func:`iter_functions`)."""

    node: ast.AST               #: FunctionDef | AsyncFunctionDef
    name: str
    cls: Optional[ast.ClassDef]  #: enclosing class, if a method
    is_async: bool = False
    #: qualified display name, e.g. ``Pipeline._fetch``
    qualname: str = ""
    #: async methods of the enclosing class (for self-call resolution)
    cls_async_methods: Set[str] = field(default_factory=set)


def iter_functions(mod: ModuleInfo) -> List[FunctionInfo]:
    """Every function and method in *mod*, each with its enclosing
    class.  Nested functions are reported separately (their bodies are
    not re-walked as part of the parent)."""
    out: List[FunctionInfo] = []

    def visit(body: List[ast.stmt], cls: Optional[ast.ClassDef]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{cls.name}.{node.name}" if cls else node.name
                cls_async = set()
                if cls is not None:
                    cls_async = {n.name for n in cls.body
                                 if isinstance(n, ast.AsyncFunctionDef)}
                out.append(FunctionInfo(
                    node, node.name, cls,
                    isinstance(node, ast.AsyncFunctionDef), qual,
                    cls_async))
                visit(node.body, cls)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, node)
            elif isinstance(node, (ast.If, ast.Try)):
                # module-level conditional defs (TYPE_CHECKING guards)
                for sub_body in (getattr(node, "body", []),
                                 getattr(node, "orelse", []),
                                 getattr(node, "finalbody", [])):
                    visit(sub_body, cls)
    visit(mod.tree.body, None)
    return out
