"""SLOT2xx: the ``DynInstr`` write-before-read slot contract.

``DynInstr.__init__`` deliberately leaves most slots unset (every
avoidable store costs real time on the hottest shared path), and the
contract that makes that safe — *the owning stage writes the slot
before any later stage reads it* — is declared machine-readably in
:data:`repro.core.dynamic.SLOT_OWNERS`.  These passes keep declaration
and code in sync:

* **SLOT201** — registry drift: the declared lazy set must equal
  ``__slots__`` minus the fields ``__init__`` assigns, owners must be
  real stages, and :data:`CONDITIONAL_SLOTS` must be a subset;
* **SLOT202** — premature read: a core engine function attributed to
  stage *s* (by name: ``_fetch…``, ``_dispatch…``, ``…_ready``, ...)
  must not bare-read a slot owned by a stage after *s*, unless the
  read is dominated by a write in the same function or goes through
  ``slot_or_none``/``getattr``;
* **SLOT203** — diagnostic bare read: the sanitizer and the analysis
  tools may observe instructions whose owning stage never ran, so
  every lazy-slot read there must be a
  :func:`~repro.core.dynamic.slot_or_none` probe;
* **SLOT204** — orphan slot: every declared lazy slot must be written
  somewhere in the core engines (a never-written slot is dead weight —
  this pass found and removed ``classified_in_sequence``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.dataflow import function_accesses
from repro.lint.model import ModuleInfo, ProjectModel, iter_functions
from repro.lint.passes import ProjectPass
from repro.lint.rules import Violation

#: the contract module these passes check against.
CONTRACT_TAIL = "core/dynamic.py"

#: modules that may only probe lazy slots through slot_or_none.
DIAGNOSTIC_TAILS = ("core/sanitizer.py",)
DIAGNOSTIC_PACKAGES = frozenset({"analysis"})

#: function-name fragment -> pipeline stage, first match wins.
STAGE_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("fetch", "fetch"),
    ("dispatch", "dispatch"), ("steer", "dispatch"), ("rename", "dispatch"),
    ("issue", "issue"), ("ready", "issue"), ("eligible", "issue"),
    ("wake", "issue"), ("select", "issue"),
    ("writeback", "writeback"), ("complete", "writeback"),
    ("retire", "retire"), ("commit", "retire"),
)


def stage_of_function(name: str) -> Optional[str]:
    """Pipeline stage a function acts as, inferred from its name
    (None = cross-stage/utility code, exempt from SLOT202)."""
    lowered = name.lower()
    for fragment, stage in STAGE_PATTERNS:
        if fragment in lowered:
            return stage
    return None


def load_contract(model: ProjectModel) -> Optional[Dict[str, object]]:
    """The slot contract from ``core/dynamic.py``: owners, stage order,
    conditional set, ``__slots__``, init-assigned set, properties."""
    mod = model.contract_module(CONTRACT_TAIL)
    if mod is None:
        return None
    owners = model.module_literal(mod, "SLOT_OWNERS")
    stages = model.module_literal(mod, "STAGE_ORDER")
    conditional = model.module_literal(mod, "CONDITIONAL_SLOTS")
    cls = model.class_def(mod, "DynInstr")
    if not isinstance(owners, dict) or not isinstance(stages, tuple) \
            or cls is None:
        return None
    slots = model.class_slots(cls)
    return {
        "module": mod,
        "owners": {str(k): str(v) for k, v in owners.items()},
        "stages": tuple(str(s) for s in stages),
        "conditional": {str(s) for s in (conditional or ())},
        "slots": slots or (),
        "init_assigned": model.init_assigned(cls),
        "properties": model.class_properties(cls),
        "class_node": cls,
    }


class SlotRegistryDriftPass(ProjectPass):
    """SLOT201 (see the module docstring)."""

    code = "SLOT201"
    title = "DynInstr slot contract drift"
    hint = ("keep repro.core.dynamic.SLOT_OWNERS equal to __slots__ "
            "minus the fields __init__ assigns")
    explain = (
        "SLOT_OWNERS is the machine-readable write-before-read "
        "contract: every slot __init__ deliberately leaves unset, "
        "mapped to the stage that writes it.  If a slot is added to "
        "__slots__ without an owner (or an owner names an eager or "
        "nonexistent slot, or an unknown stage), the other SLOT "
        "passes silently lose coverage — so the drift itself is an "
        "error.")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        contract = load_contract(model)
        if contract is None:
            mod = model.contract_module(CONTRACT_TAIL)
            if mod is not None:
                yield self.violation(
                    mod.path, mod.tree,
                    "could not statically read SLOT_OWNERS / STAGE_ORDER "
                    "/ DynInstr.__slots__ (must stay literal)")
            return
        mod: ModuleInfo = contract["module"]  # type: ignore[assignment]
        anchor = contract["class_node"]
        owners: Dict[str, str] = contract["owners"]  # type: ignore
        stages = contract["stages"]
        lazy_expected = set(contract["slots"]) - contract["init_assigned"]
        declared = set(owners)
        for slot in sorted(lazy_expected - declared):
            yield self.violation(
                mod.path, anchor,
                f"slot {slot!r} is left unset by __init__ but has no "
                f"owner in SLOT_OWNERS")
        for slot in sorted(declared - lazy_expected):
            yield self.violation(
                mod.path, anchor,
                f"SLOT_OWNERS declares {slot!r}, which is not a lazy "
                f"slot (not in __slots__, or assigned by __init__)")
        for slot, stage in sorted(owners.items()):
            if stage not in stages:
                yield self.violation(
                    mod.path, anchor,
                    f"SLOT_OWNERS[{slot!r}] names unknown stage "
                    f"{stage!r} (STAGE_ORDER: {', '.join(stages)})")
        for slot in sorted(contract["conditional"] - declared):
            yield self.violation(
                mod.path, anchor,
                f"CONDITIONAL_SLOTS contains {slot!r}, which is not a "
                f"declared lazy slot")


class PrematureReadPass(ProjectPass):
    """SLOT202 (see the module docstring)."""

    code = "SLOT202"
    title = "DynInstr slot read before its owning stage"
    hint = ("write the slot before the read, guard it with "
            "slot_or_none(...), or rename the function if its stage "
            "was misinferred")
    explain = (
        "A stage function reading a slot that a *later* stage owns "
        "observes an unset attribute on every freshly fetched "
        "instruction: AttributeError on the lucky paths, stale state "
        "from a recycled record on the unlucky ones.  The pass infers "
        "each core function's stage from its name, and exempts reads "
        "dominated by a write in the same function and defaulted "
        "probes (slot_or_none / getattr-with-default).")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        contract = load_contract(model)
        if contract is None:
            return
        owners: Dict[str, str] = contract["owners"]  # type: ignore
        stages = list(contract["stages"])
        diagnostic = set(DIAGNOSTIC_TAILS)
        for mod in model.modules:
            if mod.package != "core" or mod.tail == CONTRACT_TAIL \
                    or mod.tail in diagnostic:
                continue
            for func in iter_functions(mod):
                stage = stage_of_function(func.name)
                if stage is None:
                    continue
                rank = stages.index(stage)
                for acc in function_accesses(func.node):
                    if acc.is_write or not acc.recv_is_dyn or acc.guarded \
                            or acc.dominated:
                        continue
                    owner = owners.get(acc.attr)
                    if owner is None or owner not in stages:
                        continue
                    if stages.index(owner) > rank:
                        yield self.violation(
                            mod.path, acc.node,
                            f"{func.qualname} ({stage} stage) reads "
                            f"DynInstr slot {acc.attr!r}, which only the "
                            f"later {owner} stage writes")


class DiagnosticBareReadPass(ProjectPass):
    """SLOT203 (see the module docstring)."""

    code = "SLOT203"
    title = "bare lazy-slot read in a diagnostic module"
    hint = "probe lazy slots with slot_or_none(dyn, name[, default])"
    explain = (
        "Diagnostic code (the sanitizer, analysis tools) runs against "
        "instructions at arbitrary lifecycle points, including ones "
        "whose owning stage never ran (a shelf instruction has no "
        "rob_idx, an unforwarded load no forwarded_from).  A bare "
        "attribute read there raises AttributeError exactly on the "
        "interesting runs; slot_or_none() both defaults the read and "
        "asserts the field really is in the declared lazy set.")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        contract = load_contract(model)
        if contract is None:
            return
        lazy = set(contract["owners"])
        for mod in model.modules:
            if not (mod.tail in DIAGNOSTIC_TAILS
                    or mod.package in DIAGNOSTIC_PACKAGES):
                continue
            for func in iter_functions(mod):
                for acc in function_accesses(func.node):
                    if acc.is_write or not acc.recv_is_dyn or acc.guarded \
                            or acc.dominated:
                        continue
                    if acc.attr in lazy:
                        yield self.violation(
                            mod.path, acc.node,
                            f"{func.qualname} bare-reads lazy slot "
                            f"{acc.attr!r} on an instruction whose "
                            f"owning stage may never have run")


class OrphanSlotPass(ProjectPass):
    """SLOT204 (see the module docstring)."""

    code = "SLOT204"
    title = "declared lazy slot never written"
    hint = ("remove the dead slot from __slots__ and SLOT_OWNERS, or "
            "add the missing stage write")

    explain = (
        "A slot declared in the contract but written nowhere in the "
        "core engines is either dead weight in every DynInstr or a "
        "missing stage implementation; both deserve a finding.  The "
        "pass only runs when the analyzed file set includes the core "
        "pipeline, so `repro check tests` cannot misreport.")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        contract = load_contract(model)
        if contract is None:
            return
        core_mods = [m for m in model.modules if m.package == "core"]
        if not any(m.tail == "core/pipeline.py" for m in core_mods):
            return
        written: Set[str] = set()
        for mod in core_mods:
            for func in iter_functions(mod):
                for acc in function_accesses(func.node):
                    if acc.is_write and acc.recv_is_dyn:
                        written.add(acc.attr)
        mod = contract["module"]  # type: ignore[assignment]
        anchor = contract["class_node"]
        for slot in sorted(set(contract["owners"]) - written):
            yield self.violation(
                mod.path, anchor,
                f"lazy slot {slot!r} is declared in SLOT_OWNERS but no "
                f"core engine ever writes it")


SLOT_PASSES: List[ProjectPass] = [
    SlotRegistryDriftPass(),
    PrematureReadPass(),
    DiagnosticBareReadPass(),
    OrphanSlotPass(),
]
