"""LANE3xx: object-pipeline / lane-engine drift.

The flat-lane engine (``core/lanes.py``) re-implements the hot cycle
loop over structure-of-arrays state and must stay *bit-identical* to
the object pipeline.  The single most likely way to break that quietly
is drift: someone adds a hot ``DynInstr`` field read to ``pipeline.py``
and forgets the lane engine, or edits a dispatch table in one engine
only.  :data:`repro.core.lanes.LANE_REGISTRY` is the bridge contract,
and these passes police it from three sides:

* **LANE301** — every hot-path ``DynInstr`` field read in
  ``core/pipeline.py`` / ``core/steering.py`` must appear in the
  registry (as a mirrored lane or an explicit write-through ``()``
  entry); audited exceptions carry ``# repro-lint: waive=LANE301``;
* **LANE302** — every lane the registry (plus
  :data:`~repro.core.lanes.INTERNAL_LANES`) names must actually exist
  in ``LaneEngine.__init__`` and its ``_lanes`` growth tuple, no
  unregistered lanes may exist, and registry keys must be real
  ``DynInstr`` slots or properties;
* **LANE303** — the lane engine's integer dispatch tables
  (``_FU_GROUP_OF``/``_FU_GROUP_NAMES``, ``_LAT_BY_OP``, the
  ``_LOAD``-style opcode constants) must agree member-for-member with
  ``isa/opcodes.py``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.dataflow import function_accesses
from repro.lint.model import ModuleInfo, ProjectModel, iter_functions
from repro.lint.passes import ProjectPass, walk_shallow
from repro.lint.rules import Violation

LANES_TAIL = "core/lanes.py"
OPCODES_TAIL = "isa/opcodes.py"
DYNAMIC_TAIL = "core/dynamic.py"

#: the object-engine modules whose DynInstr reads LANE301 audits.
HOT_TAILS = ("core/pipeline.py", "core/steering.py")


def _registry(model: ProjectModel) -> Tuple[Optional[ModuleInfo],
                                            Optional[Dict[str, Tuple[str, ...]]],
                                            Tuple[str, ...]]:
    """(lanes module, LANE_REGISTRY, INTERNAL_LANES) — registry None when
    unreadable."""
    mod = model.contract_module(LANES_TAIL)
    if mod is None:
        return None, None, ()
    registry = model.module_literal(mod, "LANE_REGISTRY")
    internal = model.module_literal(mod, "INTERNAL_LANES")
    if not isinstance(registry, dict):
        return mod, None, ()
    return (mod,
            {str(k): tuple(str(l) for l in v)
             for k, v in registry.items()},
            tuple(str(l) for l in (internal or ())))


class HotFieldCoveragePass(ProjectPass):
    """LANE301 (see the module docstring)."""

    code = "LANE301"
    title = "hot DynInstr field read with no lane-registry entry"
    hint = ("add the field to repro.core.lanes.LANE_REGISTRY (mirrored "
            "lane or write-through ()), or waive an audited cold-path "
            "read with '# repro-lint: waive=LANE301'")
    explain = (
        "core/pipeline.py and core/steering.py are the object engines "
        "the flat-lane loop must mirror bit-for-bit.  A DynInstr field "
        "they read but the registry does not name is exactly the drift "
        "that desynchronizes the two implementations: the lane engine "
        "has no obligation (mirror or write-through) recorded for it.  "
        "Registering with () costs nothing at runtime — it only "
        "declares 'lane mode writes this through to the object'.")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        _, registry, _ = _registry(model)
        if registry is None:
            return
        for mod in model.modules:
            if mod.tail not in HOT_TAILS:
                continue
            for func in iter_functions(mod):
                for acc in function_accesses(func.node):
                    if acc.is_write or not acc.recv_is_dyn or acc.guarded:
                        continue
                    if acc.attr not in registry:
                        yield self.violation(
                            mod.path, acc.node,
                            f"{func.qualname} reads DynInstr field "
                            f"{acc.attr!r}, which has no LANE_REGISTRY "
                            f"entry")


class LaneExistencePass(ProjectPass):
    """LANE302 (see the module docstring)."""

    code = "LANE302"
    title = "lane registry and LaneEngine storage disagree"
    hint = ("initialize every registered lane as 'self.<lane> = [0] * "
            "_CHUNK' in LaneEngine.__init__, include it in _lanes, and "
            "register every lane you add")
    explain = (
        "LANE_REGISTRY names the flat lists each mirrored field lives "
        "in; LaneEngine.__init__ allocates them and the _lanes tuple "
        "grows them.  A registered lane the engine never allocates is "
        "a lie in the contract; an allocated lane outside the registry "
        "(and INTERNAL_LANES) is untracked state; a lane missing from "
        "_lanes silently stops growing past the first chunk and "
        "corrupts every slot above 4096.  Registry keys must also be "
        "real DynInstr slots or properties, or SLOT/LANE coverage is "
        "checking phantom fields.")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        mod, registry, internal = _registry(model)
        if mod is None or registry is None:
            if mod is not None:
                yield self.violation(
                    mod.path, mod.tree,
                    "could not statically read LANE_REGISTRY (must stay "
                    "a literal dict)")
            return
        cls = model.class_def(mod, "LaneEngine")
        if cls is None:
            yield self.violation(mod.path, mod.tree,
                                 "LaneEngine class not found")
            return
        allocated = self._chunk_lanes(cls)
        tuple_members = self._lanes_tuple(cls)
        expected: Set[str] = set(internal)
        for lanes in registry.values():
            expected.update(lanes)
        anchor: ast.AST = cls
        for lane in sorted(expected - set(allocated)):
            yield self.violation(
                mod.path, anchor,
                f"registered lane {lane!r} is never allocated as "
                f"'self.{lane} = [0] * _CHUNK' in LaneEngine.__init__")
        for lane in sorted(set(allocated) - expected):
            yield self.violation(
                mod.path, allocated[lane],
                f"LaneEngine lane {lane!r} is not named by any "
                f"LANE_REGISTRY entry or INTERNAL_LANES")
        if tuple_members is not None:
            for lane in sorted(set(allocated) - set(tuple_members)):
                yield self.violation(
                    mod.path, allocated[lane],
                    f"lane {lane!r} is missing from the _lanes growth "
                    f"tuple (it would stop at the first chunk)")
        dyn_mod = model.contract_module(DYNAMIC_TAIL)
        dyn_cls = dyn_mod and model.class_def(dyn_mod, "DynInstr")
        if dyn_cls is not None:
            slots = set(model.class_slots(dyn_cls) or ())
            fields = slots | model.class_properties(dyn_cls)
            for key in sorted(set(registry) - fields):
                yield self.violation(
                    mod.path, anchor,
                    f"LANE_REGISTRY key {key!r} is not a DynInstr slot "
                    f"or property")

    @staticmethod
    def _chunk_lanes(cls: ast.ClassDef) -> Dict[str, ast.AST]:
        """``self.X = [0] * _CHUNK`` assignments in ``__init__``."""
        out: Dict[str, ast.AST] = {}
        for node in cls.body:
            if not (isinstance(node, ast.FunctionDef)
                    and node.name == "__init__"):
                continue
            for sub in walk_shallow(node):
                if not (isinstance(sub, ast.Assign)
                        and isinstance(sub.value, ast.BinOp)
                        and isinstance(sub.value.op, ast.Mult)):
                    continue
                operands = (sub.value.left, sub.value.right)
                if not any(isinstance(o, ast.Name) and o.id == "_CHUNK"
                           for o in operands):
                    continue
                if not any(isinstance(o, ast.List) for o in operands):
                    continue
                for tgt in sub.targets:
                    if isinstance(tgt, ast.Attribute) and \
                            isinstance(tgt.value, ast.Name) and \
                            tgt.value.id == "self":
                        out[tgt.attr] = sub
        return out

    @staticmethod
    def _lanes_tuple(cls: ast.ClassDef) -> Optional[Set[str]]:
        """Members of the ``self._lanes = (self.a, self.b, ...)`` tuple."""
        for node in cls.body:
            if not (isinstance(node, ast.FunctionDef)
                    and node.name == "__init__"):
                continue
            for sub in walk_shallow(node):
                if isinstance(sub, ast.Assign) and any(
                        isinstance(t, ast.Attribute) and t.attr == "_lanes"
                        for t in sub.targets):
                    if not isinstance(sub.value, ast.Tuple):
                        return None
                    return {e.attr for e in sub.value.elts
                            if isinstance(e, ast.Attribute)}
        return None


class DispatchTableAgreementPass(ProjectPass):
    """LANE303 (see the module docstring)."""

    code = "LANE303"
    title = "lane-engine dispatch table disagrees with isa/opcodes.py"
    hint = ("regenerate _FU_GROUP_OF / _LAT_BY_OP / the opcode "
            "constants in core/lanes.py from the opcodes module")
    explain = (
        "The lane engine flattens OpClass dispatch into integer tables "
        "(_FU_GROUP_OF indexed by opcode kind, _LAT_BY_OP, and _LOAD-"
        "style constants) for speed.  opcodes.py is the source of "
        "truth; if someone adds an OpClass member or remaps an FU "
        "group there, a stale table makes lane mode issue to the wrong "
        "FU pool — a silent IPC skew, not a crash.  This pass replays "
        "the flattening statically and diffs it member by member.")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        lanes_mod = model.contract_module(LANES_TAIL)
        ops_mod = model.contract_module(OPCODES_TAIL)
        if lanes_mod is None or ops_mod is None:
            return
        members = self._opclass_members(model, ops_mod)
        fu_group = self._fu_group(model, ops_mod)
        if not members or fu_group is None:
            yield self.violation(
                ops_mod.path, ops_mod.tree,
                "could not statically read OpClass members / _FU_GROUP "
                "(must stay literal)")
            return
        group_of = model.module_literal(lanes_mod, "_FU_GROUP_OF")
        group_names = model.module_literal(lanes_mod, "_FU_GROUP_NAMES")
        anchor = model.module_assignment(lanes_mod, "_FU_GROUP_OF") \
            or lanes_mod.tree
        if not isinstance(group_of, tuple) \
                or not isinstance(group_names, tuple):
            yield self.violation(
                lanes_mod.path, anchor,
                "_FU_GROUP_OF / _FU_GROUP_NAMES must be literal tuples")
            return
        if len(group_of) != len(members):
            yield self.violation(
                lanes_mod.path, anchor,
                f"_FU_GROUP_OF has {len(group_of)} entries but OpClass "
                f"has {len(members)} members")
        for name, value in sorted(members.items(), key=lambda kv: kv[1]):
            if not 0 <= value < len(group_of):
                continue
            idx = group_of[value]
            got = group_names[idx] \
                if isinstance(idx, int) and 0 <= idx < len(group_names) \
                else None
            want = fu_group.get(name)
            if want is not None and got != want:
                yield self.violation(
                    lanes_mod.path, anchor,
                    f"_FU_GROUP_OF maps OpClass.{name} to {got!r}, but "
                    f"opcodes._FU_GROUP says {want!r}")
        yield from self._check_latency_table(model, lanes_mod, members)
        yield from self._check_constants(lanes_mod, members)

    # -- opcodes.py side ----------------------------------------------

    @staticmethod
    def _opclass_members(model: ProjectModel,
                         ops_mod: ModuleInfo) -> Dict[str, int]:
        cls = model.class_def(ops_mod, "OpClass")
        out: Dict[str, int] = {}
        if cls is None:
            return out
        for node in cls.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Constant) \
                    and isinstance(node.value.value, int):
                out[node.targets[0].id] = node.value.value
        return out

    @staticmethod
    def _fu_group(model: ProjectModel,
                  ops_mod: ModuleInfo) -> Optional[Dict[str, str]]:
        """``_FU_GROUP`` parsed as {member name: group name} (its keys
        are ``OpClass.X`` attributes, so literal_eval cannot help)."""
        value = model.module_assignment(ops_mod, "_FU_GROUP")
        if not isinstance(value, ast.Dict):
            return None
        out: Dict[str, str] = {}
        for key, val in zip(value.keys, value.values):
            if isinstance(key, ast.Attribute) \
                    and isinstance(key.value, ast.Name) \
                    and key.value.id == "OpClass" \
                    and isinstance(val, ast.Constant) \
                    and isinstance(val.value, str):
                out[key.attr] = val.value
        return out

    # -- lanes.py side ------------------------------------------------

    def _check_latency_table(self, model: ProjectModel,
                             lanes_mod: ModuleInfo,
                             members: Dict[str, int]) -> Iterator[Violation]:
        expr = model.module_assignment(lanes_mod, "_LAT_BY_OP")
        if expr is None:
            yield self.violation(lanes_mod.path, lanes_mod.tree,
                                 "_LAT_BY_OP table not found")
            return
        text = ast.unparse(expr)
        if "DEFAULT_LATENCIES" not in text:
            yield self.violation(
                lanes_mod.path, expr,
                "_LAT_BY_OP must be derived from DEFAULT_LATENCIES, "
                "not hand-copied")
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "range" and len(node.args) == 1 \
                    and isinstance(node.args[0], ast.Constant):
                if node.args[0].value != len(members):
                    yield self.violation(
                        lanes_mod.path, expr,
                        f"_LAT_BY_OP covers range({node.args[0].value}) "
                        f"but OpClass has {len(members)} members")

    def _check_constants(self, lanes_mod: ModuleInfo,
                         members: Dict[str, int]) -> Iterator[Violation]:
        """``_X = int(OpClass.Y)`` constants must satisfy X == Y."""
        for node in lanes_mod.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            target = node.targets[0].id
            value = node.value
            if not (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "int" and len(value.args) == 1):
                continue
            arg = value.args[0]
            if not (isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "OpClass"):
                continue
            if arg.attr not in members:
                yield self.violation(
                    lanes_mod.path, node,
                    f"{target} references OpClass.{arg.attr}, which is "
                    f"not an OpClass member")
            elif target != f"_{arg.attr}":
                yield self.violation(
                    lanes_mod.path, node,
                    f"opcode constant {target} shadows OpClass."
                    f"{arg.attr} under a mismatched name (expected "
                    f"_{arg.attr})")


LANE_PASSES: List[ProjectPass] = [
    HotFieldCoveragePass(),
    LaneExistencePass(),
    DispatchTableAgreementPass(),
]
