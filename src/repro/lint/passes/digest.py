"""DIG5xx: mode-flag purity of result digests.

The result store keys cached simulation results by
``harness.cache.point_digest`` — a hash over everything that can change
the *numbers*.  Mode flags (``REPRO_LANES``, ``REPRO_FASTFORWARD``,
``REPRO_SANITIZE``, ``REPRO_JOBS``, ``CoreConfig.sanitize`` ...) select
*how* a result is computed, not *what* it is: the engines are proven
bit-identical across them.  If a mode flag leaks into a digest, equal
results stop sharing cache entries — and worse, flipping a debug flag
silently invalidates every cached baseline.  Two passes keep the taint
out:

* **DIG501** — inside digest/salt functions in ``harness``/``service``,
  no mode-flag attribute reads, no mode-query helper calls, no
  ``REPRO_*`` environment reads, and no bare ``asdict`` (which would
  re-import every config field wholesale; ``digest_config_dict`` is
  the one sanctioned call site that strips the mode fields);
* **DIG502** — everywhere in the ``repro`` package, ``REPRO_*``
  environment variables are read through :mod:`repro.envvars` only, so
  the registry stays the single source of truth for names, defaults,
  and digest-safety.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.model import ProjectModel, iter_functions
from repro.lint.passes import ProjectPass, walk_shallow
from repro.lint.rules import Violation

#: packages whose digest/salt functions DIG501 audits.
DIGEST_PACKAGES = frozenset({"harness", "service"})

#: config attributes that select a mode, never a result.
MODE_ATTRS: Set[str] = {"sanitize", "lanes", "fastforward"}

#: helpers that answer "which mode are we in?".
MODE_QUERIES: Set[str] = {"sanitize_enabled", "lanes_enabled",
                          "fastforward_enabled", "resolve_jobs"}

#: the one function allowed to call asdict() in digest scope — it
#: exists precisely to strip MODE_FLAG_FIELDS before hashing.
SANCTIONED_ASDICT = "digest_config_dict"


def _is_digest_function(name: str) -> bool:
    lowered = name.lower()
    return "digest" in lowered or "salt" in lowered


def _env_key(node: ast.Call) -> Optional[str]:
    """The literal env-var name a call reads, if recognizable."""
    func = node.func
    dotted = ""
    if isinstance(func, ast.Attribute):
        parts = [func.attr]
        base = func.value
        while isinstance(base, ast.Attribute):
            parts.append(base.attr)
            base = base.value
        if isinstance(base, ast.Name):
            parts.append(base.id)
            dotted = ".".join(reversed(parts))
    if dotted not in ("os.environ.get", "os.getenv",
                      "environ.get", "envvars.raw", "envvars.enabled"):
        return None
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


class DigestPurityPass(ProjectPass):
    """DIG501 (see the module docstring)."""

    code = "DIG501"
    title = "mode flag flows into a result digest"
    hint = ("digests hash what the result *is*, never how it was "
            "computed — strip the mode flag (see digest_config_dict) "
            "or key on a result-bearing field instead")
    explain = (
        "Mode flags (sanitize, lanes, fastforward, job counts) select "
        "an implementation, and the implementations are proven "
        "bit-identical — so a digest that includes one splits the "
        "cache for equal results and ties stored baselines to debug "
        "settings.  Inside any digest/salt function in harness/ or "
        "service/, this pass flags: reads of mode attributes, calls "
        "to mode-query helpers, REPRO_* environment reads, and bare "
        "asdict() (which inhales every config field; "
        "digest_config_dict is the sanctioned call site that pops "
        "MODE_FLAG_FIELDS first).")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        for mod in model.modules:
            if mod.package not in DIGEST_PACKAGES:
                continue
            for func in iter_functions(mod):
                if not _is_digest_function(func.name):
                    continue
                yield from self._check_function(mod.path, func)

    def _check_function(self, path: str, func) -> Iterator[Violation]:
        for node in walk_shallow(func.node):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.ctx, ast.Load) \
                    and node.attr in MODE_ATTRS:
                yield self.violation(
                    path, node,
                    f"{func.qualname} reads mode flag .{node.attr} in "
                    f"digest scope")
            elif isinstance(node, ast.Call):
                name = node.func.attr \
                    if isinstance(node.func, ast.Attribute) \
                    else node.func.id \
                    if isinstance(node.func, ast.Name) else ""
                if name in MODE_QUERIES:
                    yield self.violation(
                        path, node,
                        f"{func.qualname} calls mode query {name}() in "
                        f"digest scope")
                elif name == "asdict" \
                        and func.name != SANCTIONED_ASDICT:
                    yield self.violation(
                        path, node,
                        f"{func.qualname} calls bare asdict() in digest "
                        f"scope — use digest_config_dict, which strips "
                        f"the mode fields")
                else:
                    key = _env_key(node)
                    if key is not None and key.startswith("REPRO_"):
                        yield self.violation(
                            path, node,
                            f"{func.qualname} reads environment "
                            f"variable {key} in digest scope")


class EnvRegistryPass(ProjectPass):
    """DIG502 (see the module docstring)."""

    code = "DIG502"
    title = "REPRO_* environment read bypasses repro.envvars"
    hint = ("read the flag via repro.envvars.raw/enabled; declare new "
            "variables in envvars.REGISTRY")
    explain = (
        "repro.envvars.REGISTRY is the single catalogue of every "
        "REPRO_* variable: name, default, semantics, and whether it "
        "may influence digests.  A direct os.environ/os.getenv read "
        "inside the package creates an undocumented variable with "
        "private default-handling — the exact drift the registry "
        "exists to prevent (REPRO_SERVICE_CRASH_ONCE went undocumented "
        "for two releases this way).  Writes and pops stay exempt: "
        "tests and the CLI legitimately mutate the environment.")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        for mod in model.modules:
            if mod.package is None or mod.tail.endswith("envvars.py"):
                continue
            scopes = [("module level", mod.tree)]
            scopes += [(f.qualname, f.node) for f in iter_functions(mod)]
            for where, root in scopes:
                for node in walk_shallow(root):
                    key = None
                    if isinstance(node, ast.Call):
                        key = _env_key(node)
                        dotted = ast.unparse(node.func) \
                            if key is not None else ""
                        if dotted.startswith("envvars."):
                            key = None  # the sanctioned path
                    elif isinstance(node, ast.Subscript) \
                            and isinstance(node.ctx, ast.Load) \
                            and ast.unparse(node.value) == "os.environ" \
                            and isinstance(node.slice, ast.Constant) \
                            and isinstance(node.slice.value, str):
                        key = node.slice.value
                    if key is not None and key.startswith("REPRO_"):
                        yield self.violation(
                            mod.path, node,
                            f"{where} reads {key} directly from "
                            f"the environment — go through repro."
                            f"envvars so the registry stays complete")


DIG_PASSES: List[ProjectPass] = [
    DigestPurityPass(),
    EnvRegistryPass(),
]
