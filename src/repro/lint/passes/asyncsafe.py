"""ASY4xx: async-safety of the service layer.

The simulation service (``src/repro/service/``) runs one asyncio event
loop next to a thread-pool scheduler, which creates exactly three ways
to hang or drop work that no test reliably catches:

* **ASY401** — a *blocking* call inside ``async def`` (``time.sleep``,
  ``subprocess.run``, bare ``open`` ...) stalls the entire event loop,
  freezing every connected client, not just the offending request;
* **ASY402** — calling an ``async def`` without ``await`` creates a
  coroutine object and throws it away: the body never runs, and the
  only symptom is a ``RuntimeWarning`` nobody sees under pytest;
* **ASY403** — an ``await`` on a socket-backed read/drain without
  ``asyncio.wait_for`` waits forever on a stalled peer; every network
  edge needs a timeout.

ASY401/402 run everywhere (an unawaited coroutine is a bug in tests
too); ASY403 is scoped to the ``service`` package, where the
reader/writer calls are genuinely network-backed.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.model import ProjectModel, iter_functions
from repro.lint.passes import ProjectPass, walk_shallow
from repro.lint.rules import Violation

#: dotted call names that block the calling thread.
BLOCKING_CALLS: Set[str] = {
    "time.sleep", "os.system",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "urllib.request.urlopen",
    "requests.get", "requests.post",
}
#: bare-name calls that block (builtins).
BLOCKING_NAMES: Set[str] = {"open"}
#: method names that block regardless of receiver (pathlib I/O).
BLOCKING_METHODS: Set[str] = {"read_text", "write_text",
                              "read_bytes", "write_bytes"}

#: awaited stream methods that wait on a network peer.
NETWORK_AWAITS: Set[str] = {"readline", "readexactly", "readuntil",
                            "read", "drain"}


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for Name/Attribute chains, '' otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class BlockingInAsyncPass(ProjectPass):
    """ASY401 (see the module docstring)."""

    code = "ASY401"
    title = "blocking call inside async def"
    hint = ("use the async equivalent (asyncio.sleep, loop."
            "run_in_executor, asyncio streams) or move the call off "
            "the event loop")
    explain = (
        "The event loop is single-threaded: any call that blocks the "
        "thread (time.sleep, subprocess.run, synchronous file or "
        "socket I/O) blocks *every* coroutine — all connected clients "
        "stall for the duration.  The pass checks a curated list of "
        "known-blocking calls rather than guessing, so it has no "
        "false positives to waive; wrap unavoidable blocking work in "
        "loop.run_in_executor.")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        for mod in model.modules:
            for func in iter_functions(mod):
                if not func.is_async:
                    continue
                for node in walk_shallow(func.node):
                    if not isinstance(node, ast.Call):
                        continue
                    dotted = _dotted(node.func)
                    blocking = (
                        dotted in BLOCKING_CALLS
                        or dotted in BLOCKING_NAMES
                        or (isinstance(node.func, ast.Attribute)
                            and node.func.attr in BLOCKING_METHODS))
                    if blocking:
                        yield self.violation(
                            mod.path, node,
                            f"{func.qualname} is async but calls "
                            f"blocking {dotted or node.func.attr}() — "
                            f"this stalls the whole event loop")


class UnawaitedCoroutinePass(ProjectPass):
    """ASY402 (see the module docstring)."""

    code = "ASY402"
    title = "async function called without await"
    hint = ("await the call, or wrap it in asyncio.create_task(...) "
            "if it should run concurrently")
    explain = (
        "Calling an async def returns a coroutine object; discarding "
        "it at statement level means the body never executes.  Python "
        "only emits a RuntimeWarning at garbage collection, which "
        "test output swallows.  The pass resolves bare-name calls "
        "against the module's own top-level async defs and self.<m> "
        "against the enclosing class's async methods — the two forms "
        "it can resolve without type inference, and the two that "
        "account for real instances of this bug.")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        for mod in model.modules:
            module_async = {n.name for n in mod.tree.body
                            if isinstance(n, ast.AsyncFunctionDef)}
            for func in iter_functions(mod):
                for node in walk_shallow(func.node):
                    if not (isinstance(node, ast.Expr)
                            and isinstance(node.value, ast.Call)):
                        continue
                    callee = node.value.func
                    name = None
                    if isinstance(callee, ast.Name) \
                            and callee.id in module_async:
                        name = callee.id
                    elif isinstance(callee, ast.Attribute) \
                            and isinstance(callee.value, ast.Name) \
                            and callee.value.id == "self" \
                            and callee.attr in func.cls_async_methods:
                        name = f"self.{callee.attr}"
                    if name is not None:
                        yield self.violation(
                            mod.path, node,
                            f"{func.qualname} calls async {name}() "
                            f"without await — the coroutine is created "
                            f"and discarded, its body never runs")


class AwaitWithoutTimeoutPass(ProjectPass):
    """ASY403 (see the module docstring)."""

    code = "ASY403"
    title = "network await without a timeout"
    hint = "wrap the call: await asyncio.wait_for(<call>, timeout)"
    explain = (
        "In the service package, stream reader/writer awaits "
        "(readline, readexactly, read, drain) wait on a remote peer.  "
        "A client that connects and stops sending — or stops reading "
        "while the server drains a large response — parks the handler "
        "coroutine forever and leaks its connection.  Wrapping the "
        "await in asyncio.wait_for bounds every network edge; the "
        "pass flags direct awaits of these methods (a wait_for-wrapped "
        "call awaits wait_for, not the stream method, so it passes).")

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        for mod in model.modules:
            if mod.package != "service":
                continue
            for func in iter_functions(mod):
                for node in walk_shallow(func.node):
                    if not isinstance(node, ast.Await):
                        continue
                    call = node.value
                    if isinstance(call, ast.Call) \
                            and isinstance(call.func, ast.Attribute) \
                            and call.func.attr in NETWORK_AWAITS:
                        yield self.violation(
                            mod.path, node,
                            f"{func.qualname} awaits "
                            f"{call.func.attr}() with no timeout — a "
                            f"stalled peer parks this coroutine forever")


ASY_PASSES: List[ProjectPass] = [
    BlockingInAsyncPass(),
    UnawaitedCoroutinePass(),
    AwaitWithoutTimeoutPass(),
]
