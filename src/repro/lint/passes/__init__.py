"""Contract-analysis passes over the shared :class:`ProjectModel`.

Four rule families, one module each:

* :mod:`repro.lint.passes.slots` — SLOT2xx, the ``DynInstr``
  write-before-read slot contract;
* :mod:`repro.lint.passes.lanes_drift` — LANE3xx, object/lane engine
  drift;
* :mod:`repro.lint.passes.asyncsafe` — ASY4xx, async-safety of the
  service layer;
* :mod:`repro.lint.passes.digest` — DIG5xx, mode-flag purity of result
  digests.

Unlike :class:`repro.lint.rules.Rule` (one file, one AST), a
:class:`ProjectPass` sees the whole analyzed file set at once and may
consult contract modules outside it.  Findings reuse the lint
:class:`~repro.lint.rules.Violation` record, so suppression
(``# repro-lint: waive=CODE``), sorting, and report formats are shared
with ``repro lint``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.model import ProjectModel
from repro.lint.rules import Violation


class ProjectPass:
    """Base class for whole-project rules; subclasses set the class
    attributes and implement :meth:`run`."""

    code: str = ""
    title: str = ""
    hint: str = ""
    #: long-form rationale shown by ``repro check --explain CODE``.
    explain: str = ""

    def run(self, model: ProjectModel) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, path: str, node: ast.AST,
                  message: str) -> Violation:
        return Violation(path, getattr(node, "lineno", 1),
                         getattr(node, "col_offset", 0) + 1,
                         self.code, message, self.hint)


def walk_shallow(root: ast.AST) -> Iterator[ast.AST]:
    """Walk *root* without descending into nested function/class
    definitions — each of those is analyzed as its own unit."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


def all_passes() -> List[ProjectPass]:
    """Every contract pass, in code order."""
    from repro.lint.passes.asyncsafe import ASY_PASSES
    from repro.lint.passes.digest import DIG_PASSES
    from repro.lint.passes.lanes_drift import LANE_PASSES
    from repro.lint.passes.slots import SLOT_PASSES
    return [*SLOT_PASSES, *LANE_PASSES, *ASY_PASSES, *DIG_PASSES]
