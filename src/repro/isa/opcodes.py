"""Operation classes, latencies and functional-unit pools.

Latencies follow common microarchitectural conventions (and gem5's ARM
timing model at a coarse grain): single-cycle integer ALU, pipelined
multiplies, unpipelined divides, two-cycle minimum load-to-use for L1 hits
(paper Section III-D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class OpClass(enum.IntEnum):
    """Classes of operations the simulator schedules.

    Each class maps to an execution latency and a functional-unit pool.
    ``LOAD``/``STORE`` additionally access the cache hierarchy and the
    load/store queues; ``BRANCH`` consults the branch predictor; ``BARRIER``
    synchronizes the pipeline at dispatch (paper Section III-D).
    """

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    FP_ADD = 3
    FP_MUL = 4
    FP_DIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8
    BARRIER = 9


#: Execution latency in cycles for each op class.  For ``LOAD`` this is the
#: address-generation + L1-hit latency floor; cache misses extend it
#: dynamically.  The paper specifies a minimum 2-cycle load-to-use distance
#: for L1 data cache hits.
DEFAULT_LATENCIES: Dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 12,
    OpClass.FP_ADD: 3,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 16,
    OpClass.LOAD: 2,
    OpClass.STORE: 1,
    # Branches resolve at the end of the execute pipeline, several cycles
    # after issue — this is also their speculation-resolution delay for
    # the SSR mechanism (paper Section III-B).
    OpClass.BRANCH: 3,
    OpClass.BARRIER: 1,
}

#: Op classes that are *not* pipelined: a functional unit stays busy for the
#: instruction's full latency.
UNPIPELINED: frozenset = frozenset({OpClass.INT_DIV, OpClass.FP_DIV})

_MEMORY_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})


def is_memory(op: OpClass) -> bool:
    """Return True if *op* accesses data memory (needs LSQ handling)."""
    return op in _MEMORY_CLASSES


def is_speculative_source(op: OpClass) -> bool:
    """Return True if *op* can trigger a squash of younger instructions.

    Branches squash on misprediction; loads squash on memory-order
    violations.  These contribute resolution delays to the speculation
    shift registers (paper Section III-B).
    """
    return op is OpClass.BRANCH or op is OpClass.LOAD


# Functional-unit groups.  Several op classes can share one pool (e.g. the
# integer ALUs execute branches too, as in most gem5 configurations).
_FU_GROUP: Dict[OpClass, str] = {
    OpClass.INT_ALU: "int_alu",
    OpClass.BRANCH: "int_alu",
    OpClass.BARRIER: "int_alu",
    OpClass.INT_MUL: "int_muldiv",
    OpClass.INT_DIV: "int_muldiv",
    OpClass.FP_ADD: "fp",
    OpClass.FP_MUL: "fp",
    OpClass.FP_DIV: "fp",
    OpClass.LOAD: "mem",
    OpClass.STORE: "mem",
}


@dataclass
class FunctionalUnitPool:
    """Tracks functional-unit availability for one cycle-based simulation.

    Pipelined units only constrain issue bandwidth per cycle; unpipelined
    units (divides) occupy a unit for the instruction's full latency.
    """

    counts: Dict[str, int]
    _busy_until: Dict[str, list] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for group, count in self.counts.items():
            self._busy_until.setdefault(group, [0] * count)
        self._issued_this_cycle: Dict[str, int] = {}
        self._cycle = -1

    def _roll(self, cycle: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._issued_this_cycle = {}

    def available(self, op: OpClass, cycle: int) -> bool:
        """Return True if an FU of *op*'s group can accept an issue now."""
        self._roll(cycle)
        group = _FU_GROUP[op]
        used = self._issued_this_cycle.get(group, 0)
        free = sum(1 for b in self._busy_until[group] if b <= cycle)
        return used < free

    def acquire(self, op: OpClass, cycle: int, latency: int) -> None:
        """Consume an FU slot for this cycle (and busy it if unpipelined)."""
        self._roll(cycle)
        group = _FU_GROUP[op]
        self._issued_this_cycle[group] = self._issued_this_cycle.get(group, 0) + 1
        if op in UNPIPELINED:
            slots = self._busy_until[group]
            for i, b in enumerate(slots):
                if b <= cycle:
                    slots[i] = cycle + latency
                    return
            raise RuntimeError("acquire() without available(): FU pool overcommitted")

    def next_free(self, op: OpClass) -> int:
        """Earliest cycle at which some FU of *op*'s group is not busy.

        A fast-forward horizon query for pipeline-idle stretches: nothing
        issues during such a stretch, so the per-cycle issue counter is
        irrelevant and only the unpipelined busy-until times matter.
        """
        return min(self._busy_until[_FU_GROUP[op]])

    def reset(self) -> None:
        """Clear all busy state (used between simulation runs)."""
        for group in self._busy_until:
            self._busy_until[group] = [0] * self.counts[group]
        self._issued_this_cycle = {}
        self._cycle = -1


def default_fu_pool() -> FunctionalUnitPool:
    """FU pool for the paper's 4-wide core: 4 ALUs, 1 mul/div, 2 FP, 2 mem."""
    return FunctionalUnitPool(
        counts={"int_alu": 4, "int_muldiv": 1, "fp": 2, "mem": 2}
    )
