"""Abstract RISC-like ISA used by the trace-driven simulator.

The paper evaluates on ARM v7 via gem5 system-call emulation.  Our
reproduction replaces the concrete ISA with an abstract register machine
that preserves everything the shelf microarchitecture cares about:

* architectural register dataflow (RAW/WAW/WAR hazards),
* operation classes with distinct execution latencies and functional units,
* loads/stores with concrete byte addresses (for caches and the LSQ),
* conditional branches with taken/not-taken outcomes (for the predictor),
* memory barriers (synchronize dispatch, as in the paper's relaxed model).
"""

from repro.isa.opcodes import (
    OpClass,
    DEFAULT_LATENCIES,
    FunctionalUnitPool,
    default_fu_pool,
    is_memory,
    is_speculative_source,
)
from repro.isa.instruction import Instruction, NUM_ARCH_REGS

__all__ = [
    "OpClass",
    "DEFAULT_LATENCIES",
    "FunctionalUnitPool",
    "default_fu_pool",
    "is_memory",
    "is_speculative_source",
    "Instruction",
    "NUM_ARCH_REGS",
]
