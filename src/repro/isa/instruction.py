"""Static instruction records as they appear in a trace.

A trace is a *dynamic* instruction stream: control flow is already
resolved, so each record carries its PC, the PC of the next record
(``next_pc``), and — for branches — the taken/not-taken outcome so a branch
predictor can be driven and scored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.opcodes import OpClass

#: Number of architectural (logical) registers per thread.  ARM v7 has 16
#: integer registers; we use 32 to cover the combined int+FP namespace the
#: simulator renames (the paper renames both through one mechanism).
NUM_ARCH_REGS = 32


@dataclass(frozen=True)
class Instruction:
    """One dynamic-trace instruction.

    Attributes:
        op: operation class (determines latency and FU).
        dest: destination architectural register, or ``None`` (stores,
            branches and barriers produce no register result).
        srcs: source architectural registers (0-3 of them).
        pc: instruction address (drives the I-cache and branch predictor).
        next_pc: address of the next dynamic instruction (branch target if
            the branch is taken, fall-through otherwise).
        mem_addr: effective byte address for loads/stores, else ``None``.
        mem_size: access size in bytes for loads/stores.
        taken: branch outcome; ``None`` for non-branches.
    """

    op: OpClass
    dest: Optional[int]
    srcs: Tuple[int, ...]
    pc: int
    next_pc: int
    mem_addr: Optional[int] = None
    mem_size: int = 4
    taken: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.dest is not None and not 0 <= self.dest < NUM_ARCH_REGS:
            raise ValueError(f"dest register {self.dest} out of range")
        for s in self.srcs:
            if not 0 <= s < NUM_ARCH_REGS:
                raise ValueError(f"src register {s} out of range")
        if self.op in (OpClass.LOAD, OpClass.STORE) and self.mem_addr is None:
            raise ValueError(f"{self.op.name} requires mem_addr")
        if self.op is OpClass.BRANCH and self.taken is None:
            raise ValueError("BRANCH requires a taken outcome")
        if self.op is OpClass.STORE and self.dest is not None:
            raise ValueError("STORE must not write a register")

    @property
    def is_load(self) -> bool:
        return self.op is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.op is OpClass.BRANCH

    @property
    def is_mem(self) -> bool:
        return self.op is OpClass.LOAD or self.op is OpClass.STORE

    def describe(self) -> str:
        """Human-readable one-line rendering, for debugging and examples."""
        dst = f"r{self.dest}" if self.dest is not None else "--"
        srcs = ",".join(f"r{s}" for s in self.srcs) or "--"
        extra = ""
        if self.is_mem:
            extra = f" [0x{self.mem_addr:x}]"
        if self.is_branch:
            extra = f" {'T' if self.taken else 'N'} ->0x{self.next_pc:x}"
        return f"{self.op.name:<8} {dst:<4} <- {srcs}{extra} @0x{self.pc:x}"
