"""repro — a reproduction of "Efficiently Scaling Out-of-Order Cores for
Simultaneous Multithreading" (Sleiman & Wenisch, ISCA 2016).

A cycle-level, trace-driven SMT out-of-order core simulator whose
instruction window can be hybrid: a conventional IQ/ROB/LSQ/PRF backend
plus the paper's *shelf* — a per-thread FIFO issue buffer for in-sequence
instructions that skips every out-of-order structure.

Quick start::

    from repro import CoreConfig, simulate, generate

    cfg = CoreConfig(num_threads=4, shelf_entries=64, steering="practical")
    traces = [generate(b, 5000, seed=i) for i, b in enumerate(
        ["mixed.int", "pchase.mem", "ilp.int4", "branchy.easy"])]
    result = simulate(cfg, traces)
    print(result.summary())

See ``examples/`` for runnable scenarios, ``benchmarks/`` for the
per-figure reproduction harness, and DESIGN.md for the system inventory.
"""

from repro.core import (
    CoreConfig,
    DeadlockError,
    Pipeline,
    SimResult,
    ThreadResult,
    simulate,
)
from repro.energy import area_report, edp, energy_report
from repro.harness import (
    base64_config,
    base128_config,
    shelf_config,
    mix_stp,
    run_benchmark,
    run_mix,
)
from repro.metrics import insequence_fraction, stp
from repro.trace import BENCHMARK_NAMES, balanced_random_mixes, generate

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "DeadlockError",
    "Pipeline",
    "SimResult",
    "ThreadResult",
    "simulate",
    "area_report",
    "edp",
    "energy_report",
    "base64_config",
    "base128_config",
    "shelf_config",
    "mix_stp",
    "run_benchmark",
    "run_mix",
    "insequence_fraction",
    "stp",
    "BENCHMARK_NAMES",
    "balanced_random_mixes",
    "generate",
    "__version__",
]
