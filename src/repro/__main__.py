"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``run``          simulate a benchmark mix on a named configuration;
* ``experiments``  regenerate paper figures/tables;
* ``benchmarks``   list the synthetic benchmark roster;
* ``trace``        generate a benchmark trace and save it to a file;
* ``lint``         run the determinism lint over the codebase.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import CoreConfig
from repro.core.pipeline import Pipeline
from repro.energy import area_report, edp, energy_report
from repro.harness.configs import (base64_config, base128_config,
                                   shelf_config)
from repro.trace import BENCHMARK_NAMES, benchmark_spec, generate


def _build_config(args) -> CoreConfig:
    threads = args.threads
    if args.config == "base64":
        cfg = base64_config(threads)
    elif args.config == "base128":
        cfg = base128_config(threads)
    else:
        cfg = shelf_config(threads, steering=args.steering,
                           optimistic=args.optimistic)
    if args.memory_model != "relaxed":
        from dataclasses import replace
        cfg = replace(cfg, memory_model=args.memory_model)
    return cfg


def _cmd_run(args) -> int:
    benches = args.benchmarks.split(",")
    if len(benches) != args.threads:
        print(f"error: {args.threads} thread(s) need {args.threads} "
              f"benchmark(s), got {len(benches)}", file=sys.stderr)
        return 2
    for b in benches:
        if b not in BENCHMARK_NAMES:
            print(f"error: unknown benchmark {b!r} "
                  f"(try: python -m repro benchmarks)", file=sys.stderr)
            return 2
    cfg = _build_config(args)
    traces = [generate(b, args.length, seed=args.seed + i)
              for i, b in enumerate(benches)]
    pipe = Pipeline(cfg, traces, record_schedule=args.pipetrace)
    res = pipe.run(stop="all" if args.threads == 1 else "first")
    print(res.summary())
    if args.energy:
        rep = energy_report(cfg, res)
        print()
        print(rep.summary())
        print(f"EDP {edp(rep):.3e} J*s")
    if args.pipetrace:
        from repro.analysis import format_pipetrace
        print()
        print(format_pipetrace(pipe, max_instructions=args.pipetrace))
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments import ALL_EXPERIMENTS
    from repro.harness import (cache_stats, get_scale, resolve_jobs,
                               set_default_jobs)
    scale = get_scale(args.scale)
    set_default_jobs(args.jobs)
    wanted = args.ids or list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiment(s) {', '.join(unknown)}; "
              f"choose from {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    print(f"scale: {scale}, jobs: {resolve_jobs()}\n")
    for key in wanted:
        print(ALL_EXPERIMENTS[key].run(scale).format())
        print()
    stats = cache_stats()
    print("cache: " + ", ".join(f"{k}={v}" for k, v in stats.items()))
    return 0


def _cmd_benchmarks(args) -> int:
    by_family: dict = {}
    for name in BENCHMARK_NAMES:
        spec = benchmark_spec(name)
        by_family.setdefault(spec.family, []).append(spec)
    for family, specs in by_family.items():
        print(f"{family}:")
        for spec in specs:
            foot = (f"{spec.footprint // 1024}KB data"
                    if spec.footprint else "register-resident")
            print(f"  {spec.name:<14} {spec.description} ({foot})")
    return 0


def _cmd_litmus(args) -> int:
    from repro.analysis import run_litmus
    print(run_litmus().format())
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import main as lint_main
    forwarded = [str(p) for p in args.paths]
    if args.list_rules:
        forwarded.append("--list-rules")
    return lint_main(forwarded)


def _cmd_trace(args) -> int:
    from repro.trace.serialize import save_trace
    if args.benchmark not in BENCHMARK_NAMES:
        print(f"error: unknown benchmark {args.benchmark!r}",
              file=sys.stderr)
        return 2
    trace = generate(args.benchmark, args.length, seed=args.seed)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} instructions to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shelf/IQ hybrid SMT core simulator "
                    "(ISCA 2016 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a benchmark mix")
    run.add_argument("benchmarks",
                     help="comma-separated benchmark names, one per thread")
    run.add_argument("--config", choices=["base64", "shelf64", "base128"],
                     default="shelf64")
    run.add_argument("--threads", type=int, default=4)
    run.add_argument("--length", type=int, default=4000,
                     help="instructions per thread")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--steering", default="practical",
                     choices=["practical", "oracle", "shelf-only"])
    run.add_argument("--optimistic", action="store_true",
                     help="allow same-cycle shelf issue")
    run.add_argument("--memory-model", choices=["relaxed", "tso"],
                     default="relaxed")
    run.add_argument("--energy", action="store_true",
                     help="print the energy/power report")
    run.add_argument("--pipetrace", type=int, metavar="N", default=0,
                     help="render a pipe trace of the first N instructions")
    run.set_defaults(func=_cmd_run)

    exp = sub.add_parser("experiments",
                         help="regenerate paper figures/tables")
    exp.add_argument("ids", nargs="*",
                     help="experiment ids (default: all)")
    exp.add_argument("--scale", choices=["smoke", "default", "full"],
                     default=None)
    exp.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for simulation fan-out "
                          "(default: $REPRO_JOBS, else serial; "
                          "0 = all cores)")
    exp.set_defaults(func=_cmd_experiments)

    lst = sub.add_parser("benchmarks", help="list the benchmark roster")
    lst.set_defaults(func=_cmd_benchmarks)

    lit = sub.add_parser("litmus",
                         help="measure fundamental pipeline latencies")
    lit.set_defaults(func=_cmd_litmus)

    lint = sub.add_parser("lint",
                          help="determinism lint over the codebase")
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src tests)")
    lint.add_argument("--list-rules", action="store_true",
                      help="describe every rule and exit")
    lint.set_defaults(func=_cmd_lint)

    tr = sub.add_parser("trace", help="generate and save a trace")
    tr.add_argument("benchmark")
    tr.add_argument("output")
    tr.add_argument("--length", type=int, default=10000)
    tr.add_argument("--seed", type=int, default=0)
    tr.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped through `head`): exit quietly.
        return 0


if __name__ == "__main__":
    sys.exit(main())
