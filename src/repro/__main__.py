"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``run``          simulate a benchmark mix on a named configuration;
* ``experiments``  regenerate paper figures/tables;
* ``benchmarks``   list the synthetic benchmark roster;
* ``trace``        generate a benchmark trace and save it to a file;
* ``profile``      cProfile a simulation and print the hottest functions;
* ``lint``         run the determinism lint over the codebase;
* ``check``        lint + the slot/lane/async/digest contract passes;
* ``cache``        inspect / garbage-collect the persistent result store;
* ``serve``        run the simulation service (queue + worker fleet);
* ``worker``       join a fleet coordinator as a worker node;
* ``submit``       submit a simulation to a running service;
* ``query``        filter/project/aggregate the result warehouse;
* ``diff``         compare two campaigns point by point;
* ``baseline``     record / check a metric-regression baseline;
* ``warehouse``    rebuild or inspect the warehouse index itself.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import CoreConfig
from repro.core.pipeline import Pipeline
from repro.energy import area_report, edp, energy_report
from repro.harness.configs import (base64_config, base128_config,
                                   shelf_config)
from repro.trace import BENCHMARK_NAMES, benchmark_spec, generate


def _build_config(args) -> CoreConfig:
    threads = args.threads
    if args.config == "base64":
        cfg = base64_config(threads)
    elif args.config == "base128":
        cfg = base128_config(threads)
    else:
        cfg = shelf_config(threads, steering=args.steering,
                           optimistic=args.optimistic)
    if args.memory_model != "relaxed":
        from dataclasses import replace
        cfg = replace(cfg, memory_model=args.memory_model)
    return cfg


def _cmd_run(args) -> int:
    benches = args.benchmarks.split(",")
    if len(benches) != args.threads:
        print(f"error: {args.threads} thread(s) need {args.threads} "
              f"benchmark(s), got {len(benches)}", file=sys.stderr)
        return 2
    for b in benches:
        if b not in BENCHMARK_NAMES:
            print(f"error: unknown benchmark {b!r} "
                  f"(try: python -m repro benchmarks)", file=sys.stderr)
            return 2
    cfg = _build_config(args)
    traces = [generate(b, args.length, seed=args.seed + i)
              for i, b in enumerate(benches)]
    pipe = Pipeline(cfg, traces, record_schedule=args.pipetrace)
    res = pipe.run(stop="all" if args.threads == 1 else "first")
    print(res.summary())
    if args.energy:
        rep = energy_report(cfg, res)
        print()
        print(rep.summary())
        print(f"EDP {edp(rep):.3e} J*s")
    if args.pipetrace:
        from repro.analysis import format_pipetrace
        print()
        print(format_pipetrace(pipe, max_instructions=args.pipetrace))
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments import ALL_EXPERIMENTS
    from repro.harness import (cache_stats, get_scale, resolve_jobs,
                               set_default_jobs)
    scale = get_scale(args.scale)
    set_default_jobs(args.jobs)
    wanted = args.ids or list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiment(s) {', '.join(unknown)}; "
              f"choose from {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    print(f"scale: {scale}, jobs: {resolve_jobs()}\n")
    for key in wanted:
        print(ALL_EXPERIMENTS[key].run(scale).format())
        print()
    stats = cache_stats()
    print("cache: " + ", ".join(f"{k}={v}" for k, v in stats.items()))
    return 0


def _cmd_benchmarks(args) -> int:
    by_family: dict = {}
    for name in BENCHMARK_NAMES:
        spec = benchmark_spec(name)
        by_family.setdefault(spec.family, []).append(spec)
    for family, specs in by_family.items():
        print(f"{family}:")
        for spec in specs:
            foot = (f"{spec.footprint // 1024}KB data"
                    if spec.footprint else "register-resident")
            print(f"  {spec.name:<14} {spec.description} ({foot})")
    return 0


def _cmd_litmus(args) -> int:
    from repro.analysis import run_litmus
    print(run_litmus().format())
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import main as lint_main
    forwarded = [str(p) for p in args.paths]
    if args.list_rules:
        forwarded.append("--list-rules")
    return lint_main(forwarded)


def _cmd_check(args) -> int:
    from repro.lint import check_main
    forwarded = [str(p) for p in args.paths]
    forwarded += ["--output", args.output]
    if args.output_file:
        forwarded += ["--output-file", str(args.output_file)]
    if args.baseline:
        forwarded += ["--baseline", str(args.baseline)]
    if args.no_baseline:
        forwarded.append("--no-baseline")
    if args.write_baseline:
        forwarded.append("--write-baseline")
    if args.explain:
        forwarded += ["--explain", args.explain]
    if args.list_rules:
        forwarded.append("--list-rules")
    return check_main(forwarded)


def _parse_size(text: str) -> int:
    """``"500M"`` / ``"2G"`` / ``"123456"`` -> bytes."""
    text = text.strip()
    units = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    factor = units.get(text[-1:].upper(), 1)
    digits = text[:-1] if factor != 1 else text
    try:
        return int(digits) * factor
    except ValueError:
        raise ValueError(f"bad size {text!r} (expected e.g. 500M)") from None


def _cmd_cache(args) -> int:
    from repro.harness.cache import get_store, simulator_salt
    store = get_store()
    if store is None:
        print("persistent result store is disabled "
              "(REPRO_CACHE_DIR=off)", file=sys.stderr)
        return 1
    if args.cache_cmd == "gc":
        try:
            max_bytes = _parse_size(args.max_bytes)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        gc = store.gc(max_bytes)
        print(f"evicted {gc.removed} entr{'y' if gc.removed == 1 else 'ies'}"
              f", freed {gc.freed_bytes} bytes")
    disk = store.disk_stats()
    print(f"store:   {store.directory}")
    print(f"salt:    {simulator_salt()}")
    print(f"entries: {disk['entries']}")
    print(f"bytes:   {disk['bytes']}")
    if disk["index_present"]:
        print(f"index:   {disk['index_rows']} row(s), "
              f"{disk['index_bytes']} bytes")
    else:
        print("index:   absent (run `repro warehouse rebuild`)")
    return 0


def _open_warehouse_cli():
    """The (store, warehouse) pair for warehouse subcommands, or
    ``(None, None)`` after printing why (store or warehouse disabled)."""
    from repro.harness.cache import get_store
    store = get_store()
    if store is None:
        print("persistent result store is disabled "
              "(REPRO_CACHE_DIR=off)", file=sys.stderr)
        return None, None
    wh = store.warehouse()
    if wh is None:
        print("warehouse is disabled (REPRO_WAREHOUSE_DB=off) or "
              "unwritable", file=sys.stderr)
        return None, None
    return store, wh


def _refresh_derived_quietly(wh) -> None:
    """Fill in any STP/ANTT that became computable since the last write
    (live ingest defers them); reading commands call this so freshly
    simulated sweeps query correctly without an explicit rebuild."""
    from repro.warehouse import WAREHOUSE_ERRORS
    try:
        wh.refresh_derived()
    except WAREHOUSE_ERRORS:
        pass  # read-only index: query what is there


def _cmd_query(args) -> int:
    from repro.warehouse import (QUERYABLE_COLUMNS, QueryError,
                                 aggregate_rows, format_rows, select_rows)
    if args.list_columns:
        width = max(len(c) for c in QUERYABLE_COLUMNS)
        for name, doc in QUERYABLE_COLUMNS.items():
            print(f"{name:<{width}}  {doc}")
        return 0
    store, wh = _open_warehouse_cli()
    if wh is None:
        return 1
    if args.rebuild:
        print(f"reindexed {wh.rebuild(store)} result(s)", file=sys.stderr)
    _refresh_derived_quietly(wh)
    select = args.select.split(",") if args.select else None
    try:
        if args.group_by or args.agg:
            headers, rows = aggregate_rows(
                wh, group_by=args.group_by.split(",") if args.group_by
                else [], aggs=args.agg or [], where=args.where,
                sort=args.sort, limit=args.limit, campaign=args.campaign)
        else:
            headers, rows = select_rows(
                wh, where=args.where, select=select, sort=args.sort,
                limit=args.limit, campaign=args.campaign)
        print(format_rows(headers, rows, args.format))
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_diff(args) -> int:
    from repro.warehouse import QueryError, diff_campaigns, format_diff
    store, wh = _open_warehouse_cli()
    if wh is None:
        return 1
    _refresh_derived_quietly(wh)
    from repro.warehouse.diff import DEFAULT_METRICS
    try:
        diff = diff_campaigns(wh, args.campaign_a, args.campaign_b,
                              metrics=args.metric or list(DEFAULT_METRICS),
                              tolerance=args.tolerance)
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_diff(diff, args.format, all_points=args.all))
    return 1 if diff.regressions else 0


def _cmd_baseline(args) -> int:
    from repro.warehouse import baseline as _baseline
    from repro.warehouse import QueryError
    store, wh = _open_warehouse_cli()
    if wh is None:
        return 1
    _refresh_derived_quietly(wh)
    try:
        if args.baseline_cmd == "record":
            count = _baseline.record(
                wh, args.file, metrics=args.metric or
                _baseline.DEFAULT_METRICS, where=args.where,
                campaign=args.campaign, tolerance=args.tolerance)
            print(f"recorded {count} point(s) to {args.file}")
            return 0
        report = _baseline.check(wh, args.file, tolerance=args.tolerance,
                                 where=args.where, campaign=args.campaign)
    except _baseline.BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(_baseline.format_report(report, args.format))
    return 0 if report.ok else 1


def _cmd_warehouse(args) -> int:
    store, wh = _open_warehouse_cli()
    if wh is None:
        return 1
    if args.warehouse_cmd == "rebuild":
        count = wh.rebuild(store)
        print(f"reindexed {count} result(s) into {wh.path}")
        return 0
    # status
    _refresh_derived_quietly(wh)
    print(f"index:     {wh.path}")
    print(f"rows:      {wh.row_count()}")
    print(f"bytes:     {wh.size_bytes()}")
    for status in wh.campaign_status():
        total = status["total"] if status["total"] is not None else "?"
        print(f"campaign:  {status['name']} {status['marked']}/{total} "
              f"point(s)")
    return 0


def _cmd_serve(args) -> int:
    from repro.service.server import serve
    return serve(host=args.host, port=args.port, workers=args.workers,
                 batch_size=args.batch_size, max_inflight=args.max_inflight,
                 max_retries=args.retries,
                 retry_backoff_s=args.retry_backoff,
                 default_timeout_s=args.timeout,
                 max_queue_depth=args.max_queue_depth,
                 drain_timeout_s=args.drain_timeout,
                 fleet=args.fleet, dashboard=args.dashboard)


def _cmd_worker(args) -> int:
    from repro.fleet.worker import worker_main
    return worker_main(args.connect, name=args.name, jobs=args.jobs,
                       max_points=args.max_points,
                       idle_exit_s=args.idle_exit)


def _cmd_submit(args) -> int:
    import json as _json

    from repro.service.client import JobFailed, ServiceClient, ServiceError
    benches = args.benchmarks.split(",")
    cfg = _build_config(args)
    payload = {"config": args.config, "threads": args.threads,
               "steering": args.steering, "optimistic": args.optimistic,
               "memory_model": cfg.memory_model,
               "benchmarks": benches, "length": args.length,
               "seed": args.seed, "stop": args.stop}
    client = ServiceClient(args.url)
    try:
        status = client.submit(payload, priority=args.priority,
                               timeout_s=args.timeout)
        job_id = status["job_id"]
        if args.no_wait:
            print(job_id)
            return 0
        client.wait(job_id, timeout_s=args.wait_timeout)
        doc = client.result(job_id)
    except JobFailed as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ServiceError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    record = doc["record"]
    if args.json:
        print(_json.dumps(doc, indent=2))
    else:
        threads = " ".join(
            f"t{i}:{t['benchmark']}={t['cpi']:.3f}"
            for i, t in enumerate(record["threads"]))
        print(f"{job_id} done ({'cached' if doc['cached'] else 'simulated'})"
              f": {record['cycles']} cycles, IPC {record['ipc']:.3f}, "
              f"CPI {threads}")
    return 0


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    benches = args.benchmarks.split(",")
    if len(benches) != args.threads:
        print(f"error: {args.threads} thread(s) need {args.threads} "
              f"benchmark(s), got {len(benches)}", file=sys.stderr)
        return 2
    for b in benches:
        if b not in BENCHMARK_NAMES:
            print(f"error: unknown benchmark {b!r} "
                  f"(try: python -m repro benchmarks)", file=sys.stderr)
            return 2
    cfg = _build_config(args)
    traces = [generate(b, args.length, seed=args.seed + i)
              for i, b in enumerate(benches)]
    stop = "all" if args.threads == 1 else "first"
    profiler = cProfile.Profile()
    if args.mode == "gang":
        # N identical members over shared traces: profiles the gang
        # driver, the shared-decode fetch path, and slice re-entry.
        from repro.core.gang import GangEngine
        members = [Pipeline(cfg, traces) for _ in range(args.gang_size)]
        engine = GangEngine(members, stop=stop)
        profiler.enable()
        res = engine.run()[0]
        profiler.disable()
    else:
        mode_kwargs = {
            "lanes": {"lanes": True},
            "object": {"lanes": False, "fastforward": True},
            "reference": {"lanes": False, "fastforward": False},
        }[args.mode]
        pipe = Pipeline(cfg, traces, **mode_kwargs)
        profiler.enable()
        res = pipe.run(stop=stop)
        profiler.disable()
    print(res.summary())
    print(f"\nmode: {args.mode}, sorted by {args.sort}, "
          f"top {args.limit}:\n")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    if args.output:
        profiler.dump_stats(args.output)
        print(f"raw profile written to {args.output} "
              f"(inspect with python -m pstats)")
    return 0


def _cmd_trace(args) -> int:
    from repro.trace.serialize import save_trace
    if args.benchmark not in BENCHMARK_NAMES:
        print(f"error: unknown benchmark {args.benchmark!r}",
              file=sys.stderr)
        return 2
    trace = generate(args.benchmark, args.length, seed=args.seed)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} instructions to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shelf/IQ hybrid SMT core simulator "
                    "(ISCA 2016 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a benchmark mix")
    run.add_argument("benchmarks",
                     help="comma-separated benchmark names, one per thread")
    run.add_argument("--config", choices=["base64", "shelf64", "base128"],
                     default="shelf64")
    run.add_argument("--threads", type=int, default=4)
    run.add_argument("--length", type=int, default=4000,
                     help="instructions per thread")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--steering", default="practical",
                     choices=["practical", "oracle", "shelf-only"])
    run.add_argument("--optimistic", action="store_true",
                     help="allow same-cycle shelf issue")
    run.add_argument("--memory-model", choices=["relaxed", "tso"],
                     default="relaxed")
    run.add_argument("--energy", action="store_true",
                     help="print the energy/power report")
    run.add_argument("--pipetrace", type=int, metavar="N", default=0,
                     help="render a pipe trace of the first N instructions")
    run.set_defaults(func=_cmd_run)

    exp = sub.add_parser("experiments",
                         help="regenerate paper figures/tables")
    exp.add_argument("ids", nargs="*",
                     help="experiment ids (default: all)")
    exp.add_argument("--scale", choices=["smoke", "default", "full"],
                     default=None)
    exp.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for simulation fan-out "
                          "(default: $REPRO_JOBS, else serial; "
                          "0 = all cores)")
    exp.set_defaults(func=_cmd_experiments)

    lst = sub.add_parser("benchmarks", help="list the benchmark roster")
    lst.set_defaults(func=_cmd_benchmarks)

    lit = sub.add_parser("litmus",
                         help="measure fundamental pipeline latencies")
    lit.set_defaults(func=_cmd_litmus)

    lint = sub.add_parser("lint",
                          help="determinism lint over the codebase")
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src tests)")
    lint.add_argument("--list-rules", action="store_true",
                      help="describe every rule and exit")
    lint.set_defaults(func=_cmd_lint)

    check = sub.add_parser("check",
                           help="lint + slot/lane/async/digest contract "
                                "analysis")
    check.add_argument("paths", nargs="*",
                       help="files or directories (default: src tests)")
    check.add_argument("--output", choices=["text", "json", "sarif"],
                       default="text", help="report format")
    check.add_argument("--output-file", default=None, metavar="FILE",
                       help="write the report here (text summary still "
                            "goes to stdout)")
    check.add_argument("--baseline", default=None, metavar="FILE",
                       help="baseline of grandfathered findings "
                            "(default: .repro-check-baseline.json)")
    check.add_argument("--no-baseline", action="store_true",
                       help="report baselined findings too")
    check.add_argument("--write-baseline", action="store_true",
                       help="write current findings to the baseline")
    check.add_argument("--explain", metavar="CODE", default=None,
                       help="print the rationale for one rule and exit")
    check.add_argument("--list-rules", action="store_true",
                       help="describe every rule and exit")
    check.set_defaults(func=_cmd_check)

    prof = sub.add_parser("profile",
                          help="cProfile a simulation and print the "
                               "hottest functions")
    prof.add_argument("benchmarks",
                      help="comma-separated benchmark names, one per thread")
    prof.add_argument("--config", choices=["base64", "shelf64", "base128"],
                      default="shelf64")
    prof.add_argument("--threads", type=int, default=4)
    prof.add_argument("--length", type=int, default=4000,
                      help="instructions per thread")
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--steering", default="practical",
                      choices=["practical", "oracle", "shelf-only"])
    prof.add_argument("--optimistic", action="store_true")
    prof.add_argument("--memory-model", choices=["relaxed", "tso"],
                      default="relaxed")
    prof.add_argument("--mode",
                      choices=["lanes", "object", "reference", "gang"],
                      default="lanes",
                      help="which cycle loop to profile (default: lanes); "
                           "gang interleaves --gang-size identical members")
    prof.add_argument("--gang-size", type=int, default=8, metavar="K",
                      help="members in the profiled gang "
                           "(--mode gang only; default: 8)")
    prof.add_argument("--sort", default="cumulative",
                      choices=["cumulative", "tottime", "ncalls",
                               "pcalls", "filename", "line", "name",
                               "nfl", "stdname", "time", "calls"],
                      help="pstats sort key (default: cumulative)")
    prof.add_argument("--limit", type=int, default=25, metavar="N",
                      help="number of entries to print (default: 25)")
    prof.add_argument("--output", metavar="FILE", default=None,
                      help="also dump the raw profile for pstats")
    prof.set_defaults(func=_cmd_profile)

    tr = sub.add_parser("trace", help="generate and save a trace")
    tr.add_argument("benchmark")
    tr.add_argument("output")
    tr.add_argument("--length", type=int, default=10000)
    tr.add_argument("--seed", type=int, default=0)
    tr.set_defaults(func=_cmd_trace)

    cache = sub.add_parser("cache",
                           help="inspect the persistent result store")
    cache_sub = cache.add_subparsers(dest="cache_cmd", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="print store location, entry count, and size")
    cache_stats.set_defaults(func=_cmd_cache)
    cache_gc = cache_sub.add_parser(
        "gc", help="evict oldest entries down to a size budget")
    cache_gc.add_argument("--max-bytes", required=True, metavar="SIZE",
                          help="target store size (e.g. 500M, 2G, 1048576)")
    cache_gc.set_defaults(func=_cmd_cache)

    srv = sub.add_parser("serve",
                         help="run the simulation service "
                              "(queue + batching worker fleet)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8642,
                     help="listen port (0 = ephemeral)")
    srv.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes (0 = all cores)")
    srv.add_argument("--batch-size", type=int, default=4, metavar="N",
                     help="max points coalesced into one worker task")
    srv.add_argument("--max-inflight", type=int, default=None, metavar="N",
                     help="bounded in-flight batch window "
                          "(default: 2x workers)")
    srv.add_argument("--retries", type=int, default=2, metavar="N",
                     help="retry budget per job after worker crashes")
    srv.add_argument("--retry-backoff", type=float, default=0.25,
                     metavar="S", help="initial retry backoff (doubles)")
    srv.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="default per-job timeout (none if unset)")
    srv.add_argument("--max-queue-depth", type=int, default=1024,
                     metavar="N", help="submissions beyond this get 429")
    srv.add_argument("--drain-timeout", type=float, default=30.0,
                     metavar="S",
                     help="max seconds to drain on SIGTERM/SIGINT")
    srv.add_argument("--fleet", action="store_true",
                     help="run as a fleet coordinator: jobs are leased "
                          "to registered worker nodes (repro worker) "
                          "instead of a local process pool")
    srv.add_argument("--dashboard", action="store_true",
                     help="serve the browser dashboard at /dashboard")
    srv.set_defaults(func=_cmd_serve)

    wk = sub.add_parser("worker",
                        help="join a fleet coordinator as a worker node")
    wk.add_argument("--connect", required=True, metavar="HOST:PORT",
                    help="coordinator address (repro serve --fleet)")
    wk.add_argument("--name", default=None,
                    help="node label (default: $REPRO_FLEET_NODE or "
                         "host-pid)")
    wk.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="local simulation slots reported to the "
                         "coordinator")
    wk.add_argument("--max-points", type=int, default=4, metavar="N",
                    help="max points requested per lease")
    wk.add_argument("--idle-exit", type=float, default=None, metavar="S",
                    help="exit after this long with no work (default: "
                         "serve forever)")
    wk.set_defaults(func=_cmd_worker)

    sb = sub.add_parser("submit",
                        help="submit a simulation to a running service")
    sb.add_argument("benchmarks",
                    help="comma-separated benchmark names, one per thread")
    sb.add_argument("--url", default="http://127.0.0.1:8642")
    sb.add_argument("--config", choices=["base64", "shelf64", "base128"],
                    default="shelf64")
    sb.add_argument("--threads", type=int, default=4)
    sb.add_argument("--length", type=int, default=4000)
    sb.add_argument("--seed", type=int, default=0)
    sb.add_argument("--steering", default="practical",
                    choices=["practical", "oracle", "shelf-only"])
    sb.add_argument("--optimistic", action="store_true")
    sb.add_argument("--memory-model", choices=["relaxed", "tso"],
                    default="relaxed")
    sb.add_argument("--stop", choices=["first", "all"], default="first")
    sb.add_argument("--priority", type=int, default=0,
                    help="lower runs first; FIFO within a priority")
    sb.add_argument("--timeout", type=float, default=None, metavar="S",
                    help="per-job simulation timeout")
    sb.add_argument("--wait-timeout", type=float, default=None, metavar="S",
                    help="max seconds to wait for completion")
    sb.add_argument("--no-wait", action="store_true",
                    help="print the job id and exit without waiting")
    sb.add_argument("--json", action="store_true",
                    help="print the full result document as JSON")
    sb.set_defaults(func=_cmd_submit)

    qr = sub.add_parser("query",
                        help="filter/project/aggregate the result "
                             "warehouse")
    qr.add_argument("--where", action="append", default=[],
                    metavar="COL OP VAL",
                    help="row filter, e.g. 'cycles>1000', 'mix~ilp', "
                         "'campaign=sweep1' (repeatable, ANDed)")
    qr.add_argument("--select", default=None, metavar="COL,COL,...",
                    help="columns to project (default: the summary set)")
    qr.add_argument("--sort", default=None, metavar="COL[:desc]",
                    help="sort column (default: point identity)")
    qr.add_argument("--limit", type=int, default=None, metavar="N")
    qr.add_argument("--group-by", default=None, metavar="COL,COL,...",
                    help="aggregate instead of listing rows")
    qr.add_argument("--agg", action="append", default=[],
                    metavar="FN:COL",
                    help="aggregate function, e.g. mean:stp, geomean:ipc, "
                         "count (repeatable)")
    qr.add_argument("--campaign", default=None, metavar="TAG",
                    help="restrict to one campaign's points")
    qr.add_argument("--format", choices=["text", "json", "csv"],
                    default="text")
    qr.add_argument("--rebuild", action="store_true",
                    help="rescan the store into the index first")
    qr.add_argument("--list-columns", action="store_true",
                    help="describe every queryable column and exit")
    qr.set_defaults(func=_cmd_query)

    df = sub.add_parser("diff",
                        help="compare two campaigns point by point")
    df.add_argument("campaign_a", help="baseline campaign tag")
    df.add_argument("campaign_b", help="candidate campaign tag")
    df.add_argument("--metric", action="append", default=[],
                    metavar="COL",
                    help="metric column to compare (repeatable; default: "
                         "cycles, ipc, stp, edp)")
    df.add_argument("--tolerance", type=float, default=0.01, metavar="REL",
                    help="relative drift allowed before flagging "
                         "(default: 0.01)")
    df.add_argument("--all", action="store_true",
                    help="show every common point, not just regressions")
    df.add_argument("--format", choices=["text", "json"], default="text")
    df.set_defaults(func=_cmd_diff)

    bl = sub.add_parser("baseline",
                        help="record / check a metric-regression baseline")
    bl_sub = bl.add_subparsers(dest="baseline_cmd", required=True)
    for name, help_text in (("record", "snapshot current metrics"),
                            ("check", "compare the warehouse against a "
                                      "recorded baseline")):
        blp = bl_sub.add_parser(name, help=help_text)
        blp.add_argument("--file", default=".repro-warehouse-baseline.json",
                         metavar="FILE")
        blp.add_argument("--metric", action="append", default=[],
                         metavar="COL",
                         help="metric column (repeatable; default: "
                              "cycles, ipc, stp, edp)")
        blp.add_argument("--where", action="append", default=[],
                         metavar="COL OP VAL",
                         help="restrict the point set (repeatable)")
        blp.add_argument("--campaign", default=None, metavar="TAG")
        blp.add_argument("--tolerance", type=float,
                         default=0.02 if name == "record" else None,
                         metavar="REL",
                         help="relative drift allowed (check default: "
                              "the recorded value)")
        blp.set_defaults(func=_cmd_baseline)
    bl_sub.choices["check"].add_argument(
        "--format", choices=["text", "json"], default="text")
    bl_sub.choices["record"].set_defaults(format="text")
    bl.set_defaults(func=_cmd_baseline)

    wa = sub.add_parser("warehouse",
                        help="rebuild or inspect the warehouse index")
    wa_sub = wa.add_subparsers(dest="warehouse_cmd", required=True)
    wa_rebuild = wa_sub.add_parser(
        "rebuild", help="rescan every stored blob into the index")
    wa_rebuild.set_defaults(func=_cmd_warehouse)
    wa_status = wa_sub.add_parser(
        "status", help="print index location, rows, size, campaigns")
    wa_status.set_defaults(func=_cmd_warehouse)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped through `head`): exit quietly.
        return 0
    except KeyboardInterrupt:
        # Ctrl-C or SIGTERM (converted by the executor): completed work
        # is already checkpointed; report the interruption and exit
        # nonzero without a traceback.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
