"""Structured comparison of two simulation results.

Answers "what changed and why" when a configuration knob moves: per-thread
CPI deltas, event-count deltas ranked by relative change, occupancy and
cache-behaviour shifts — the first thing to look at when a result
surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.stats import SimResult


@dataclass
class ResultComparison:
    """Delta report between a baseline and a candidate run."""

    base_label: str
    cand_label: str
    cycles: Tuple[int, int]
    speedup: float
    thread_cpi: List[Tuple[str, float, float]]  # (benchmark, base, cand)
    event_deltas: List[Tuple[str, int, int, float]]  # name, base, cand, rel
    occupancy: Dict[str, Tuple[float, float]]

    def format(self, top_events: int = 10) -> str:
        lines = [f"{self.base_label}  ->  {self.cand_label}",
                 f"cycles {self.cycles[0]} -> {self.cycles[1]} "
                 f"(speedup x{self.speedup:.3f})"]
        lines.append("per-thread CPI:")
        for bench, b, c in self.thread_cpi:
            arrow = "better" if c < b else ("worse" if c > b else "same")
            lines.append(f"  {bench:<16} {b:8.3f} -> {c:8.3f}  ({arrow})")
        lines.append(f"largest event changes (top {top_events}):")
        for name, b, c, rel in self.event_deltas[:top_events]:
            lines.append(f"  {name:<22} {b:>9} -> {c:>9}  ({rel:+.0%})")
        lines.append("occupancy:")
        for name, (b, c) in sorted(self.occupancy.items()):
            lines.append(f"  {name:<6} {b:7.2f} -> {c:7.2f}")
        return "\n".join(lines)


def compare_results(base: SimResult, cand: SimResult) -> ResultComparison:
    """Build a :class:`ResultComparison` (runs must share the workload)."""
    base_benches = [t.benchmark for t in base.threads]
    cand_benches = [t.benchmark for t in cand.threads]
    if base_benches != cand_benches:
        raise ValueError(f"result workloads differ: {base_benches} vs "
                         f"{cand_benches}")
    base_ev = base.events.as_dict()
    cand_ev = cand.events.as_dict()
    deltas = []
    for name in base_ev:
        b, c = base_ev[name], cand_ev[name]
        if b == 0 and c == 0:
            continue
        rel = (c - b) / b if b else float("inf")
        deltas.append((name, b, c, rel))
    deltas.sort(key=lambda d: -abs(d[3] if d[3] != float("inf") else 10.0))
    return ResultComparison(
        base_label=base.config_label,
        cand_label=cand.config_label,
        cycles=(base.cycles, cand.cycles),
        speedup=base.cycles / cand.cycles if cand.cycles else float("inf"),
        thread_cpi=[(bt.benchmark, bt.cpi, ct.cpi)
                    for bt, ct in zip(base.threads, cand.threads)],
        event_deltas=deltas,
        occupancy={k: (base.occupancy.get(k, 0.0), cand.occupancy.get(k, 0.0))
                   for k in set(base.occupancy) | set(cand.occupancy)},
    )
