"""Golden-model memory-order validation.

The timing pipeline never carries data values, so a forwarding bug (a
load taking its value from the wrong store) would silently corrupt only
*timing* — hard to notice.  This checker closes the gap: it derives, from
the trace alone, the architecturally correct producer of every load (the
youngest earlier overlapping store), and audits the pipeline's recorded
forwarding decisions against it.

A load's recorded source must be one of:

* the architecturally correct store (direct SQ forwarding),
* nothing (``forwarded_from is None``) — legal only if the correct store
  had already left the window (retired into the store buffer / cache) or
  no earlier store overlaps at all.

Any other combination is a memory-ordering bug.  Violation squashes are
accounted for naturally: only the final (retired) instance of each trace
position is audited.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.pipeline import Pipeline
from repro.trace.trace import Trace


@dataclass
class MemcheckReport:
    """Audit outcome for one thread's retired loads."""

    loads_checked: int = 0
    forwarded: int = 0
    from_memory: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def format(self) -> str:
        status = "OK" if self.ok else f"{len(self.errors)} ERROR(S)"
        lines = [f"memcheck: {status} — {self.loads_checked} loads audited "
                 f"({self.forwarded} forwarded, {self.from_memory} from "
                 f"memory/buffer)"]
        lines.extend(f"  {e}" for e in self.errors[:20])
        return "\n".join(lines)


def _overlaps(a, b) -> bool:
    return (a.mem_addr < b.mem_addr + b.mem_size
            and b.mem_addr < a.mem_addr + a.mem_size)


def golden_producers(trace: Trace) -> Dict[int, Optional[int]]:
    """Per load position: trace position of the youngest earlier
    overlapping store (None if the load's value comes from memory)."""
    producers: Dict[int, Optional[int]] = {}
    stores: List[int] = []
    for seq, ins in enumerate(trace):
        if ins.is_load:
            best = None
            for s in stores:
                if _overlaps(trace[s], ins):
                    best = s
            producers[seq] = best
        elif ins.is_store:
            stores.append(seq)
    return producers


def check_memory_order(pipeline: Pipeline, tid: int = 0) -> MemcheckReport:
    """Audit thread *tid* of a finished, schedule-recorded pipeline run."""
    if not pipeline.record_schedule:
        raise ValueError("Pipeline must be built with record_schedule=True")
    thread = pipeline.threads[tid]
    trace = thread.trace
    golden = golden_producers(trace)

    # The final retired instance per position (replays overwrite).
    final: Dict[int, dict] = {}
    for rec in pipeline.instr_log:
        if rec["tid"] == tid:
            final[rec["seq"]] = rec

    # Map store positions to the gseq their final instance carried: the
    # pipeline records forwarding sources by gseq, which we cannot know
    # here — instead we exploit that forwarding is recorded per DynInstr
    # and exposed via the 'forwarded_seq' field the pipeline logs.
    report = MemcheckReport()
    for seq, rec in final.items():
        if rec["op"] != "LOAD":
            continue
        report.loads_checked += 1
        got = rec.get("forwarded_seq")
        want = golden.get(seq)
        if got is not None:
            report.forwarded += 1
            if want is None:
                report.errors.append(
                    f"load #{seq} forwarded from store #{got} but no "
                    f"earlier store overlaps it")
            elif got != want:
                report.errors.append(
                    f"load #{seq} forwarded from store #{got}, "
                    f"architecture requires store #{want}")
        else:
            report.from_memory += 1
            # Legal: no producer, or the producer had already retired by
            # the load's issue (value reachable via buffer/cache).
            if want is not None:
                producer = final.get(want)
                if producer is not None and \
                        producer["retire"] > rec["issue"]:
                    report.errors.append(
                        f"load #{seq} read memory at cycle {rec['issue']} "
                        f"while its producer store #{want} was still in "
                        f"the window (retired at {producer['retire']})")
    return report
