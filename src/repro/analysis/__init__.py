"""Post-simulation analysis, visualization and self-validation."""

from repro.analysis.compare import ResultComparison, compare_results
from repro.analysis.litmus import LitmusReport, run_litmus
from repro.analysis.memcheck import (MemcheckReport, check_memory_order,
                                     golden_producers)
from repro.analysis.pipetrace import format_pipetrace, occupancy_timeline

__all__ = ["ResultComparison", "compare_results", "LitmusReport",
           "run_litmus", "MemcheckReport", "check_memory_order",
           "golden_producers", "format_pipetrace", "occupancy_timeline"]
