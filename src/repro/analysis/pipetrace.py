"""Textual pipeline visualization (a gem5-style "pipe trace").

Requires a :class:`~repro.core.Pipeline` constructed with
``record_schedule=True``: each retired instruction's lifetime (dispatch,
issue, completion, retirement cycles) is then available in
``pipeline.instr_log``.

Stage legend in the rendered chart::

    D  dispatched (entered the IQ or the shelf)
    =  waiting to issue
    I  issued to a functional unit
    ~  executing
    C  completed (wrote back)
    .  waiting to retire
    R  retired
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.pipeline import Pipeline


def format_pipetrace(pipeline: Pipeline, start: int = 0,
                     max_instructions: int = 40,
                     tid: Optional[int] = None,
                     width: int = 64) -> str:
    """Render a per-instruction lifetime chart.

    Args:
        pipeline: a finished pipeline run with ``record_schedule=True``.
        start: skip this many log records first.
        max_instructions: number of rows to draw.
        tid: restrict to one thread (None = all threads).
        width: character budget for the timeline column.
    """
    if not pipeline.record_schedule:
        raise ValueError("Pipeline must be built with record_schedule=True")
    records = [r for r in pipeline.instr_log
               if tid is None or r["tid"] == tid]
    records.sort(key=lambda r: (r["dispatch"], r["tid"], r["seq"]))
    records = records[start:start + max_instructions]
    if not records:
        return "(no retired instructions in the selected window)"

    lo = min(r["dispatch"] for r in records)
    hi = max(r["retire"] for r in records)
    span = max(hi - lo + 1, 1)
    scale = max(1, -(-span // width))  # ceil: cycles per character

    def col(cycle: int) -> int:
        return (cycle - lo) // scale

    lines = [f"cycles {lo}..{hi} ({scale} cycle(s)/char)  "
             f"D=dispatch I=issue C=complete R=retire"]
    for r in records:
        row = [" "] * (col(hi) + 1)

        def paint(a: int, b: int, ch: str) -> None:
            for i in range(col(a), col(b) + 1):
                if 0 <= i < len(row) and row[i] == " ":
                    row[i] = ch

        paint(r["issue"], r["complete"], "~")
        paint(r["complete"], r["retire"], ".")
        paint(r["dispatch"], r["issue"], "=")
        row[col(r["dispatch"])] = "D"
        row[col(r["issue"])] = "I"
        row[col(r["complete"])] = "C"
        row[col(r["retire"])] = "R"
        where = "shelf" if r["to_shelf"] else "iq"
        lines.append(f"t{r['tid']}#{r['seq']:<5} {r['op']:<8} {where:<5} "
                     f"|{''.join(row)}|")
    return "\n".join(lines)


def occupancy_timeline(pipeline: Pipeline, buckets: int = 40) -> str:
    """Coarse utilization chart: retired instructions per time bucket.

    Works on any finished run with ``record_schedule=True`` and gives a
    quick view of throughput phases (warm-up, steady state, drain).
    """
    if not pipeline.record_schedule:
        raise ValueError("Pipeline must be built with record_schedule=True")
    if not pipeline.instr_log:
        return "(nothing retired)"
    hi = max(r["retire"] for r in pipeline.instr_log) + 1
    step = max(1, -(-hi // buckets))
    counts = [0] * (-(-hi // step))
    for r in pipeline.instr_log:
        counts[r["retire"] // step] += 1
    peak = max(counts)
    lines = [f"retired instructions per {step}-cycle bucket "
             f"(peak {peak}):"]
    for i, c in enumerate(counts):
        bar = "#" * (0 if peak == 0 else round(24 * c / peak))
        lines.append(f"  {i * step:>8} |{bar:<24}| {c}")
    return "\n".join(lines)
