"""Timing litmus tests: micro-benchmarks that pin down the machine model.

Real simulators ship self-checks that measure fundamental pipeline
latencies with tiny hand-built kernels and compare them against the
configuration.  Each litmus here builds a minimal trace, runs it on a
given :class:`~repro.core.CoreConfig`, and returns the *measured* value
so callers (and the test suite) can assert the model's arithmetic:

* ALU chain throughput — one dependent op per cycle;
* load-to-use distance — the paper's 2-cycle L1 floor;
* branch misprediction penalty — resolution wait + front-end refill;
* store-to-load forwarding latency;
* issue-width ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import CoreConfig
from repro.core.pipeline import Pipeline
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.trace.trace import Trace


def _alu(dest, srcs, pc):
    return Instruction(op=OpClass.INT_ALU, dest=dest, srcs=srcs, pc=pc,
                       next_pc=pc + 4)


def _issue_cycles(config: CoreConfig, instrs: List[Instruction]) -> dict:
    pipe = Pipeline(config, [Trace("litmus", instrs)],
                    record_schedule=True)
    pipe.run(stop="all")
    return {seq: cycle for cycle, _tid, seq, _sh in pipe.issue_log}


def alu_chain_throughput(config: Optional[CoreConfig] = None,
                         length: int = 256) -> float:
    """Cycles per instruction along a pure RAW chain (expected: 1.0)."""
    cfg = config or CoreConfig(num_threads=1)
    # PCs loop within one I-cache line so instruction fetch stays warm.
    instrs = [_alu(2, (2,), 0x1000 + 4 * (i % 16)) for i in range(length)]
    cycles = _issue_cycles(cfg, instrs)
    # steady-state slope, skipping the cold front end
    mid, end = length // 2, length - 1
    return (cycles[end] - cycles[mid]) / (end - mid)


def load_to_use_distance(config: Optional[CoreConfig] = None) -> int:
    """Issue-to-issue distance from an L1-hit load to its consumer."""
    cfg = config or CoreConfig(num_threads=1)
    instrs = [
        # Warming load; the second load's address register depends on it,
        # so the re-access happens only after the line has truly filled
        # (not while the miss is still in the MSHRs).
        Instruction(op=OpClass.LOAD, dest=2, srcs=(1,), pc=0x1000,
                    next_pc=0x1004, mem_addr=0x100),
        _alu(2, (2,), 0x1004),
        Instruction(op=OpClass.LOAD, dest=3, srcs=(2,), pc=0x1008,
                    next_pc=0x100C, mem_addr=0x100),  # L1 hit
        _alu(4, (3,), 0x100C),                         # the consumer
    ]
    cycles = _issue_cycles(cfg, instrs)
    return cycles[3] - cycles[2]


def mispredict_penalty(config: Optional[CoreConfig] = None) -> float:
    """Extra cycles per mispredicted branch (resolution + refill)."""
    import random as _random
    cfg = config or CoreConfig(num_threads=1)
    rng = _random.Random(7)

    def branch_run(pattern):
        instrs = []
        pc0 = 0x1000
        for i in range(400):
            taken = pattern(i)
            instrs.append(Instruction(
                op=OpClass.BRANCH, dest=None, srcs=(1,),
                pc=pc0, next_pc=pc0 if taken else pc0 + 4, taken=taken))
        res = Pipeline(cfg, [Trace("b", instrs)]).run(stop="all")
        return res.cycles, res.events.branch_mispredicts

    predictable, _ = branch_run(lambda i: True)
    noisy, mispredicts = branch_run(lambda i: rng.random() < 0.5)
    if mispredicts == 0:
        return 0.0
    return max(0.0, (noisy - predictable) / mispredicts)


def forwarding_latency(config: Optional[CoreConfig] = None) -> int:
    """Issue-to-issue distance through store-to-load forwarding."""
    cfg = config or CoreConfig(num_threads=1)
    instrs = [
        Instruction(op=OpClass.LOAD, dest=9, srcs=(8,), pc=0x1000,
                    next_pc=0x1004, mem_addr=0x40000),  # pins retirement
        Instruction(op=OpClass.STORE, dest=None, srcs=(1, 2), pc=0x1004,
                    next_pc=0x1008, mem_addr=0x100),
        _alu(7, (7,), 0x1008),
        _alu(7, (7,), 0x100C),
        Instruction(op=OpClass.LOAD, dest=3, srcs=(7,), pc=0x1010,
                    next_pc=0x1014, mem_addr=0x100),    # forwards
        _alu(4, (3,), 0x1014),
    ]
    cycles = _issue_cycles(cfg, instrs)
    return cycles[5] - cycles[4]


def issue_width_ceiling(config: Optional[CoreConfig] = None) -> float:
    """Peak steady-state IPC on fully independent single-cycle work
    (expected: the configured issue width, front-end permitting)."""
    cfg = config or CoreConfig(num_threads=1)
    n = 2000
    instrs = [_alu(2 + i % 8, (), 0x1000 + 4 * (i % 32))
              for i in range(n)]
    cycles = _issue_cycles(cfg, instrs)
    mid, end = n // 2, n - 1
    slope = (cycles[end] - cycles[mid]) / (end - mid)
    return 1.0 / slope if slope else float("inf")


@dataclass
class LitmusReport:
    """All litmus measurements for one configuration."""

    alu_cpi: float
    load_to_use: int
    mispredict_penalty: float
    forwarding: int
    peak_ipc: float

    def format(self) -> str:
        return "\n".join([
            f"ALU chain CPI          {self.alu_cpi:.2f}  (expect 1.00)",
            f"load-to-use distance   {self.load_to_use}     (expect 2)",
            f"mispredict penalty     {self.mispredict_penalty:.1f} cycles",
            f"forwarding latency     {self.forwarding}     (expect 2)",
            f"peak IPC               {self.peak_ipc:.2f}  (expect ~width)",
        ])


def run_litmus(config: Optional[CoreConfig] = None) -> LitmusReport:
    """Measure every litmus on *config* (default: the Base64 core)."""
    cfg = config or CoreConfig(num_threads=1)
    return LitmusReport(
        alu_cpi=alu_chain_throughput(cfg),
        load_to_use=load_to_use_distance(cfg),
        mispredict_penalty=mispredict_penalty(cfg),
        forwarding=forwarding_latency(cfg),
        peak_ipc=issue_width_ceiling(cfg),
    )
