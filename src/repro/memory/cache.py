"""A set-associative, LRU, write-back/write-allocate cache model.

Tag state only (trace-driven simulation never needs the data values).
Each lookup either hits or misses; on a miss the caller is responsible for
probing the next level and then calling :meth:`Cache.fill`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.writebacks = 0


class Cache:
    """One level of set-associative cache.

    Args:
        name: label for reports (``"L1D"`` etc.).
        size: capacity in bytes.
        assoc: number of ways.
        line_size: bytes per line (power of two).
        latency: hit latency in cycles.
    """

    def __init__(self, name: str, size: int, assoc: int,
                 line_size: int = 64, latency: int = 1) -> None:
        if size % (assoc * line_size) != 0:
            raise ValueError(f"{name}: size {size} not divisible by "
                             f"assoc*line_size {assoc * line_size}")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.latency = latency
        self.num_sets = size // (assoc * line_size)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self._set_mask = self.num_sets - 1
        self._line_shift = line_size.bit_length() - 1
        # Per-set mapping tag -> [last-use stamp, dirty]; dict preserves no
        # order we rely on — LRU uses the stamp.  Mutable 2-lists, so the
        # hit path updates in place instead of allocating a fresh tuple.
        self._sets: list = [dict() for _ in range(self.num_sets)]
        self._stamp = 0
        self.stats = CacheStats()

    # -- address helpers ---------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """Address of the line containing *addr*."""
        return addr >> self._line_shift

    def _index(self, line: int) -> int:
        return line & self._set_mask

    # -- operations --------------------------------------------------------

    def lookup(self, addr: int, is_write: bool = False) -> bool:
        """Access *addr*; return True on hit.  Updates LRU and stats."""
        line = addr >> self._line_shift
        cset = self._sets[line & self._set_mask]
        stamp = self._stamp + 1
        self._stamp = stamp
        entry = cset.get(line)
        if entry is not None:
            entry[0] = stamp
            if is_write:
                entry[1] = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def probe(self, addr: int) -> bool:
        """Non-mutating presence check (oracle steering's functional query)."""
        line = self.line_addr(addr)
        return line in self._sets[self._index(line)]

    def fill(self, addr: int, is_write: bool = False) -> Optional[int]:
        """Install the line for *addr*; return the victim line address if a
        dirty line was evicted (for write-back traffic accounting)."""
        line = self.line_addr(addr)
        idx = self._index(line)
        cset = self._sets[idx]
        self._stamp += 1
        victim_writeback = None
        if line not in cset and len(cset) >= self.assoc:
            victim = min(cset, key=lambda l: cset[l][0])
            if cset[victim][1]:
                self.stats.writebacks += 1
                victim_writeback = victim << self._line_shift
            del cset[victim]
        prior = cset.get(line)
        if prior is not None:
            prior[0] = self._stamp
            if is_write:
                prior[1] = True
        else:
            cset[line] = [self._stamp, is_write]
        return victim_writeback

    def invalidate_all(self) -> None:
        """Drop all lines (used between independent simulation runs)."""
        for cset in self._sets:
            cset.clear()
        self._stamp = 0

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Cache({self.name}, {self.size // 1024}KB, "
                f"{self.assoc}-way, {self.latency}cyc)")
