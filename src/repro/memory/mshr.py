"""Miss status holding registers.

Bounds the number of outstanding misses and merges secondary misses to a
line already in flight (paper Section III-D: a missing load "is allocated
a miss status holding register, which arbitrates for writeback and tag
wakeup when the cache miss returns").
"""

from __future__ import annotations

from typing import Dict, Optional

#: "No outstanding fill" sentinel for :meth:`MSHRFile.next_fill`.
NO_EVENT = 1 << 62


class MSHRFile:
    """A pool of MSHRs keyed by line address.

    Each entry records the cycle its fill completes.  ``allocate`` either
    merges into an existing entry (returning the remaining latency) or
    claims a free register.  When all registers are busy the requester must
    retry, which the pipeline models as a structural replay.
    """

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        self._entries: Dict[int, int] = {}  # line -> fill-complete cycle
        self.merges = 0
        self.allocations = 0
        self.full_events = 0

    def _expire(self, cycle: int) -> None:
        done = [line for line, c in self._entries.items() if c <= cycle]
        for line in done:
            del self._entries[line]

    def lookup(self, line: int, cycle: int) -> Optional[int]:
        """If *line* is already in flight, return its fill-complete cycle."""
        entries = self._entries
        if not entries:  # common case on cache-friendly phases
            return None
        self._expire(cycle)
        return entries.get(line)

    def allocate(self, line: int, cycle: int, fill_cycle: int) -> Optional[int]:
        """Track a new miss for *line* completing at *fill_cycle*.

        Returns the (possibly merged) fill-complete cycle, or ``None`` if
        no MSHR is free — the access must be retried later.
        """
        self._expire(cycle)
        existing = self._entries.get(line)
        if existing is not None:
            self.merges += 1
            return existing
        if len(self._entries) >= self.num_entries:
            self.full_events += 1
            return None
        self._entries[line] = fill_cycle
        self.allocations += 1
        return fill_cycle

    def next_fill(self, cycle: int) -> int:
        """Earliest fill-complete cycle strictly after *cycle*
        (:data:`NO_EVENT` when none is outstanding) — a fast-forward
        horizon query; entries are expired lazily as usual."""
        return min((c for c in self._entries.values() if c > cycle),
                   default=NO_EVENT)

    @property
    def outstanding(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()
        self.merges = self.allocations = self.full_events = 0
