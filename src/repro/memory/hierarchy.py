"""Two-level cache hierarchy with a flat-latency main memory.

Latency composition follows the usual trace-driven convention: a miss at a
level adds that level's latency plus the latency of wherever the line is
found.  Lines are installed (tag state) at access time; the *timing* of the
fill is carried by the returned latency and by the MSHR file, which merges
requests to in-flight lines so back-to-back misses to one line observe the
single fill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.cache import Cache
from repro.memory.mshr import MSHRFile


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache hierarchy parameters (defaults = paper Table I at 2 GHz)."""

    line_size: int = 64
    l1i_size: int = 32 * 1024
    l1i_assoc: int = 2
    l1i_latency: int = 1
    l1d_size: int = 32 * 1024
    l1d_assoc: int = 2
    l1d_latency: int = 2
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 8
    l2_latency: int = 32
    mem_latency: int = 200  #: 100 ns at 2 GHz
    l1d_mshrs: int = 16
    l2_mshrs: int = 32
    #: L1D prefetcher: 'none' (paper baseline), 'next-line', or 'stride'.
    l1d_prefetch: str = "none"


class MemoryHierarchy:
    """L1I + L1D backed by a unified L2 and flat-latency memory.

    The L1s are shared by all SMT threads of the core, as in the paper's
    gem5 configuration.
    """

    def __init__(self, config: HierarchyConfig = HierarchyConfig()) -> None:
        self.config = config
        c = config
        self.l1i = Cache("L1I", c.l1i_size, c.l1i_assoc, c.line_size,
                         c.l1i_latency)
        self.l1d = Cache("L1D", c.l1d_size, c.l1d_assoc, c.line_size,
                         c.l1d_latency)
        self.l2 = Cache("L2", c.l2_size, c.l2_assoc, c.line_size,
                        c.l2_latency)
        self.l1d_mshrs = MSHRFile(c.l1d_mshrs)
        self.l2_mshrs = MSHRFile(c.l2_mshrs)
        from repro.memory.prefetch import make_prefetcher
        self.prefetcher = make_prefetcher(c.l1d_prefetch)
        self.prefetches_issued = 0
        self.prefetches_useful = 0
        self._prefetched_lines: set = set()

    # -- data side ----------------------------------------------------------

    def access_data(self, addr: int, is_write: bool,
                    cycle: int) -> Optional[int]:
        """Access the data path; return total latency in cycles.

        Returns ``None`` when no L1D MSHR is available (structural hazard;
        the pipeline retries the access on a later cycle).
        """
        c = self.config
        line = self.l1d.line_addr(addr)
        if self.prefetcher is not None and line in self._prefetched_lines:
            self._prefetched_lines.discard(line)
            self.prefetches_useful += 1
        if self.l1d.lookup(addr, is_write):
            # Tag state fills at request time; an in-flight MSHR for the
            # line means the data itself is still on its way — a secondary
            # (merged) miss observes the remaining fill latency.
            inflight = self.l1d_mshrs.lookup(line, cycle)
            if inflight is not None:
                self.l1d_mshrs.merges += 1
                return max(inflight - cycle, c.l1d_latency)
            return c.l1d_latency
        # L1D miss: find the line below.
        l2_line = self.l2.line_addr(addr)
        if self.l2.lookup(addr):
            l2_inflight = self.l2_mshrs.lookup(l2_line, cycle)
            if l2_inflight is not None:
                self.l2_mshrs.merges += 1
                below = max(l2_inflight - cycle, c.l2_latency)
            else:
                below = c.l2_latency
            total = c.l1d_latency + below
        else:
            total = c.l1d_latency + c.l2_latency + c.mem_latency
            self.l2_mshrs.allocate(l2_line, cycle, cycle + total)
            self.l2.fill(addr)
        got = self.l1d_mshrs.allocate(line, cycle, cycle + total)
        if got is None:
            return None
        self.l1d.fill(addr, is_write)
        if self.prefetcher is not None:
            self._issue_prefetches(self.prefetcher.on_miss(line), cycle)
        return total

    def _issue_prefetches(self, lines, cycle: int) -> None:
        """Bring prefetch candidates into L1D through spare MSHRs."""
        c = self.config
        shift = self.l1d._line_shift
        for line in lines:
            addr = line << shift
            if self.l1d.probe(addr):
                continue
            if self.l2.probe(addr):
                total = c.l1d_latency + c.l2_latency
            else:
                total = c.l1d_latency + c.l2_latency + c.mem_latency
                l2_line = self.l2.line_addr(addr)
                if self.l2_mshrs.lookup(l2_line, cycle) is None:
                    self.l2_mshrs.allocate(l2_line, cycle, cycle + total)
                self.l2.fill(addr)
            if self.l1d_mshrs.allocate(line, cycle, cycle + total) is None:
                return  # no spare MSHRs: drop remaining prefetches
            self.l1d.fill(addr)
            self._prefetched_lines.add(line)
            self.prefetches_issued += 1

    def probe_data(self, addr: int) -> int:
        """Latency the access *would* see, without changing any state.

        This is the paper's oracle-steering functional cache query
        ("atomically, instantly and not modifying state", Section IV-A).
        """
        c = self.config
        if self.l1d.probe(addr):
            return c.l1d_latency
        if self.l2.probe(addr):
            return c.l1d_latency + c.l2_latency
        return c.l1d_latency + c.l2_latency + c.mem_latency

    # -- instruction side ----------------------------------------------------

    def access_inst(self, pc: int, cycle: int) -> int:
        """Fetch path access; returns latency in cycles (never blocks on
        MSHRs — the front end simply stalls for the returned time)."""
        c = self.config
        if self.l1i.lookup(pc):
            return c.l1i_latency
        if self.l2.lookup(pc):
            total = c.l1i_latency + c.l2_latency
        else:
            total = c.l1i_latency + c.l2_latency + c.mem_latency
        self.l1i.fill(pc)
        self.l2.fill(pc)
        return total

    def next_fill_event(self, cycle: int) -> int:
        """Earliest outstanding MSHR fill strictly after *cycle*.

        A conservative fast-forward horizon component: fills surface to the
        pipeline through the completion heap (the requester's latency was
        fixed at access time), but bounding jumps by the next fill keeps the
        horizon robust against any path that re-queries MSHR state.
        Returns :data:`repro.memory.mshr.NO_EVENT` when nothing is in
        flight.
        """
        l1d = self.l1d_mshrs.next_fill(cycle)
        l2 = self.l2_mshrs.next_fill(cycle)
        return l1d if l1d < l2 else l2

    # -- maintenance ----------------------------------------------------------

    def reset(self) -> None:
        """Drop all cached state and statistics."""
        for cache in (self.l1i, self.l1d, self.l2):
            cache.invalidate_all()
            cache.stats.reset()
        self.l1d_mshrs.reset()
        self.l2_mshrs.reset()
        self._prefetched_lines.clear()
        self.prefetches_issued = 0
        self.prefetches_useful = 0

    def stats(self) -> dict:
        """Per-level access statistics for reports and the energy model."""
        return {
            "l1i": vars(self.l1i.stats).copy(),
            "l1d": vars(self.l1d.stats).copy(),
            "l2": vars(self.l2.stats).copy(),
            "l1d_mshr_merges": self.l1d_mshrs.merges,
            "l1d_mshr_full": self.l1d_mshrs.full_events,
            "prefetches_issued": self.prefetches_issued,
            "prefetches_useful": self.prefetches_useful,
        }
