"""Hardware prefetchers for the L1 data cache.

Two classic designs:

* **next-line** — on a demand miss to line *X*, fetch *X+1*;
* **stride** — a small table of recent miss addresses detects constant
  strides (positive or negative, any line distance) and runs a few lines
  ahead of the stream.

Prefetches consume MSHRs like demand misses (so a prefetcher can hurt by
stealing MLP budget — worth measuring against the shelf, whose benefit
also depends on memory-level parallelism).
"""

from __future__ import annotations

from typing import List, Optional


class NextLinePrefetcher:
    """Fetch line X+1 on a demand miss to line X."""

    name = "next-line"

    def __init__(self, degree: int = 1) -> None:
        self.degree = degree

    def on_miss(self, line: int) -> List[int]:
        return [line + d for d in range(1, self.degree + 1)]

    def on_hit(self, line: int) -> List[int]:
        return []


class StridePrefetcher:
    """Detect constant-stride miss streams and run ahead of them."""

    name = "stride"

    def __init__(self, streams: int = 4, degree: int = 2,
                 confirm: int = 2) -> None:
        self.streams = streams
        self.degree = degree
        self.confirm = confirm
        # each entry: [last_line, stride, confidence]
        self._table: List[List[int]] = []

    def on_miss(self, line: int) -> List[int]:
        # match an existing stream?
        for entry in self._table:
            last, stride, conf = entry
            if stride and line == last + stride:
                entry[0] = line
                entry[2] = min(conf + 1, self.confirm + 2)
                if entry[2] >= self.confirm:
                    return [line + stride * (d + 1)
                            for d in range(self.degree)]
                return []
        # extend a stream whose head we just passed (new stride guess)
        for entry in self._table:
            last, _stride, _conf = entry
            delta = line - last
            if 0 < abs(delta) <= 8:
                entry[:] = [line, delta, 1]
                return []
        # allocate a new stream (LRU-ish: drop the oldest)
        self._table.append([line, 0, 0])
        if len(self._table) > self.streams:
            self._table.pop(0)
        return []

    def on_hit(self, line: int) -> List[int]:
        return []


def make_prefetcher(name: str):
    """Factory for ``HierarchyConfig.l1d_prefetch`` values."""
    if name == "none":
        return None
    if name == "next-line":
        return NextLinePrefetcher()
    if name == "stride":
        return StridePrefetcher()
    raise ValueError(f"unknown prefetcher {name!r}")
