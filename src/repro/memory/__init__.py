"""Cache hierarchy substrate.

Models the paper's memory system (Table I): 32KB 2-way L1I (1 cycle),
32KB 2-way L1D (2 cycles), 2MB 8-way unified L2 (32 cycles), and 100ns
main memory (200 cycles at the 2GHz clock).  Caches are set-associative,
LRU, write-back/write-allocate, with a bounded pool of miss status holding
registers (MSHRs) that merges misses to the same line — paper Section
III-D ("loads are allocated a miss status holding register ... when the
cache miss returns").
"""

from repro.memory.cache import Cache, CacheStats
from repro.memory.mshr import MSHRFile
from repro.memory.hierarchy import MemoryHierarchy, HierarchyConfig

__all__ = [
    "Cache",
    "CacheStats",
    "MSHRFile",
    "MemoryHierarchy",
    "HierarchyConfig",
]
