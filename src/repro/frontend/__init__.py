"""Front-end components: branch prediction and SMT fetch policy.

The paper's configuration fetches 8-wide with a 6-cycle fetch-to-dispatch
pipe and selects threads with the ICOUNT policy (Tullsen et al.), whose
synergy with shelf steering Section IV-B highlights: slow-moving threads'
instructions head to the shelf, leaving IQ capacity to the others.
"""

from repro.frontend.branch_predictor import (
    BimodalPredictor,
    BranchPredictor,
    LocalPredictor,
    PredictorConfig,
    TournamentPredictor,
    make_predictor,
)
from repro.frontend.fetch import (ICount2Policy, ICountPolicy,
                                  RoundRobinPolicy, make_fetch_policy)

__all__ = [
    "BimodalPredictor",
    "BranchPredictor",
    "LocalPredictor",
    "PredictorConfig",
    "TournamentPredictor",
    "make_predictor",
    "ICountPolicy",
    "ICount2Policy",
    "RoundRobinPolicy",
    "make_fetch_policy",
]
