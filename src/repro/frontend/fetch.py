"""SMT fetch thread-selection policies.

ICOUNT (Tullsen et al., paper [16]) favors the thread with the fewest
instructions in the front end and pre-issue window, which both balances
progress and — per the paper's Section IV-B — synergizes with shelf
steering.  Round-robin is provided as a simple alternative for ablation.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence


class ICountPolicy:
    """Pick the fetchable thread with the lowest in-flight, pre-issue count."""

    name = "icount"
    fetch_threads = 1  #: threads sharing the fetch stage per cycle

    def __init__(self, num_threads: int) -> None:
        self.num_threads = num_threads
        self._tiebreak = 0

    def select(self, fetchable: Sequence[bool],
               icounts: Sequence[int]) -> Optional[int]:
        """Return the thread id to fetch this cycle, or None if none can.

        Args:
            fetchable: per-thread flag — False while a thread is blocked on
                an I-cache miss, unresolved mispredicted branch, trace end,
                or a full front-end buffer.
            icounts: per-thread count of instructions in the front end and
                the pre-issue window (IQ + shelf).
        """
        best: Optional[int] = None
        best_key = None
        for off in range(self.num_threads):
            tid = (self._tiebreak + off) % self.num_threads
            if not fetchable[tid]:
                continue
            key = icounts[tid]
            if best_key is None or key < best_key:
                best, best_key = tid, key
        if best is not None:
            self._tiebreak = (best + 1) % self.num_threads
        return best


class ICount2Policy(ICountPolicy):
    """ICOUNT.2.X: the two lowest-count threads share the fetch width.

    Tullsen et al. found ICOUNT.2.8 the best-performing fetch scheme; the
    pipeline splits its fetch width evenly across the selected threads.
    """

    name = "icount2"
    fetch_threads = 2


class RoundRobinPolicy:
    """Rotate through fetchable threads regardless of occupancy."""

    name = "round-robin"
    fetch_threads = 1

    def __init__(self, num_threads: int) -> None:
        self.num_threads = num_threads
        self._next = 0

    def select(self, fetchable: Sequence[bool],
               icounts: Sequence[int]) -> Optional[int]:
        for off in range(self.num_threads):
            tid = (self._next + off) % self.num_threads
            if fetchable[tid]:
                self._next = (tid + 1) % self.num_threads
                return tid
        return None


def make_fetch_policy(name: str, num_threads: int):
    """Factory: ``"icount"`` (paper default), ``"icount2"`` (ICOUNT.2.X),
    or ``"round-robin"``."""
    if name == "icount":
        return ICountPolicy(num_threads)
    if name == "icount2":
        return ICount2Policy(num_threads)
    if name == "round-robin":
        return RoundRobinPolicy(num_threads)
    raise ValueError(f"unknown fetch policy {name!r}")
