"""Gshare branch direction predictor with a branch target buffer.

Per-thread global history (SMT predictors either tag or split history; we
split, which is the common gem5 configuration).  The trace is a resolved
dynamic stream, so the predictor's only simulated effect is *timing*: a
wrong prediction gates the thread's fetch until the branch resolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class PredictorConfig:
    """Direction predictor and BTB geometry."""

    history_bits: int = 12        #: gshare global-history length
    table_bits: int = 12          #: log2 of the pattern-history table size
    btb_entries: int = 2048       #: direct-mapped BTB size


class BranchPredictor:
    """Per-thread gshare + shared direct-mapped BTB.

    ``predict`` returns whether the *direction and target* were both
    correct; the pipeline treats any wrong answer as a misprediction that
    blocks fetch until resolution.  ``update`` trains the tables.
    """

    def __init__(self, num_threads: int,
                 config: PredictorConfig = PredictorConfig()) -> None:
        self.config = config
        self.num_threads = num_threads
        size = 1 << config.table_bits
        self._mask = size - 1
        self._hist_mask = (1 << config.history_bits) - 1
        # 2-bit saturating counters, initialized weakly taken.
        self._pht: List[List[int]] = [[2] * size for _ in range(num_threads)]
        self._history: List[int] = [0] * num_threads
        self._btb = {}
        self._btb_mask = config.btb_entries - 1
        self.lookups = 0
        self.direction_mispredicts = 0
        self.target_mispredicts = 0

    def _index(self, tid: int, pc: int) -> int:
        return ((pc >> 2) ^ self._history[tid]) & self._mask

    def predict(self, tid: int, pc: int, taken: bool, target: int) -> bool:
        """Predict branch at *pc*; return True iff prediction is correct.

        *taken*/*target* are the trace's resolved outcome, used only to
        score the prediction (the stream itself is already correct-path).
        """
        self.lookups += 1
        pred_taken = self._direction(tid, pc)
        correct = pred_taken == taken
        if not correct:
            self.direction_mispredicts += 1
        elif taken:
            # Direction right; target must come from the BTB.
            btb_idx = (pc >> 2) & self._btb_mask
            entry = self._btb.get(btb_idx)
            if entry != (pc, target):
                self.target_mispredicts += 1
                correct = False
        return correct

    def update(self, tid: int, pc: int, taken: bool, target: int) -> None:
        """Train the PHT, history and BTB with the resolved outcome."""
        idx = self._index(tid, pc)
        ctr = self._pht[tid][idx]
        self._pht[tid][idx] = min(ctr + 1, 3) if taken else max(ctr - 1, 0)
        self._history[tid] = ((self._history[tid] << 1) | int(taken)) \
            & self._hist_mask
        if taken:
            self._btb[(pc >> 2) & self._btb_mask] = (pc, target)

    @property
    def mispredicts(self) -> int:
        return self.direction_mispredicts + self.target_mispredicts

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups

    def reset(self) -> None:
        for pht in self._pht:
            for i in range(len(pht)):
                pht[i] = 2
        self._history = [0] * self.num_threads
        self._btb.clear()
        self.lookups = 0
        self.direction_mispredicts = 0
        self.target_mispredicts = 0

    # -- direction-only hook for subclasses ---------------------------------

    def _direction(self, tid: int, pc: int) -> bool:
        return self._pht[tid][self._index(tid, pc)] >= 2

    def _train_direction(self, tid: int, pc: int, taken: bool) -> None:
        idx = self._index(tid, pc)
        ctr = self._pht[tid][idx]
        self._pht[tid][idx] = min(ctr + 1, 3) if taken else max(ctr - 1, 0)


class BimodalPredictor(BranchPredictor):
    """PC-indexed 2-bit counters, no history — the classic baseline."""

    def _index(self, tid: int, pc: int) -> int:
        return ((pc >> 2) ^ (tid << 6)) & self._mask

    def update(self, tid: int, pc: int, taken: bool, target: int) -> None:
        self._train_direction(tid, pc, taken)
        if taken:
            self._btb[(pc >> 2) & self._btb_mask] = (pc, target)


class LocalPredictor(BranchPredictor):
    """Two-level local-history predictor (per-branch history registers)."""

    def __init__(self, num_threads: int,
                 config: PredictorConfig = PredictorConfig(),
                 local_bits: int = 10) -> None:
        super().__init__(num_threads, config)
        self._local_mask = (1 << local_bits) - 1
        self._lhist: dict = {}

    def _index(self, tid: int, pc: int) -> int:
        key = (tid, (pc >> 2) & 0x3FF)
        hist = self._lhist.get(key, 0)
        return ((pc >> 2) ^ hist) & self._mask

    def update(self, tid: int, pc: int, taken: bool, target: int) -> None:
        self._train_direction(tid, pc, taken)
        key = (tid, (pc >> 2) & 0x3FF)
        self._lhist[key] = ((self._lhist.get(key, 0) << 1) | int(taken)) \
            & self._local_mask
        if taken:
            self._btb[(pc >> 2) & self._btb_mask] = (pc, target)


class TournamentPredictor(BranchPredictor):
    """Gshare + bimodal with a per-PC chooser (Alpha 21264 style)."""

    def __init__(self, num_threads: int,
                 config: PredictorConfig = PredictorConfig()) -> None:
        super().__init__(num_threads, config)
        self._bimodal = BimodalPredictor(num_threads, config)
        size = 1 << config.table_bits
        self._chooser = [[2] * size for _ in range(num_threads)]

    def _direction(self, tid: int, pc: int) -> bool:
        g = super()._direction(tid, pc)
        b = self._bimodal._direction(tid, pc)
        use_gshare = self._chooser[tid][(pc >> 2) & self._mask] >= 2
        return g if use_gshare else b

    def update(self, tid: int, pc: int, taken: bool, target: int) -> None:
        g_right = super()._direction(tid, pc) == taken
        b_right = self._bimodal._direction(tid, pc) == taken
        if g_right != b_right:
            c = self._chooser[tid][(pc >> 2) & self._mask]
            self._chooser[tid][(pc >> 2) & self._mask] = \
                min(c + 1, 3) if g_right else max(c - 1, 0)
        super().update(tid, pc, taken, target)
        self._bimodal._train_direction(tid, pc, taken)


def make_predictor(name: str, num_threads: int,
                   config: PredictorConfig = PredictorConfig()
                   ) -> BranchPredictor:
    """Factory: ``gshare`` (default), ``bimodal``, ``local``,
    ``tournament``."""
    table = {"gshare": BranchPredictor, "bimodal": BimodalPredictor,
             "local": LocalPredictor, "tournament": TournamentPredictor}
    try:
        return table[name](num_threads, config)
    except KeyError:
        raise ValueError(f"unknown branch predictor {name!r}") from None
