"""Campaigns: persistent, resumable batches of simulations.

A full-scale reproduction is hundreds of simulator runs.  A
:class:`Campaign` enumerates (configuration, workload) points, runs the
missing ones, and checkpoints every completed point to a JSON file so an
interrupted campaign resumes where it stopped, and finished results can
be analyzed without re-simulating.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import CoreConfig
from repro.core.pipeline import Pipeline
from repro.core.stats import SimResult
from repro.trace import generate


@dataclass(frozen=True)
class CampaignPoint:
    """One simulation in a campaign."""

    config_name: str
    config: CoreConfig
    benchmarks: Tuple[str, ...]
    length: int
    seed: int = 0
    stop: str = "first"

    @property
    def key(self) -> str:
        """Stable identifier used for checkpointing."""
        mix = "+".join(self.benchmarks)
        return (f"{self.config_name}|{mix}|{self.length}|{self.seed}|"
                f"{self.stop}")


def _result_record(point: CampaignPoint, result: SimResult,
                   elapsed: float) -> dict:
    return {
        "key": point.key,
        "config": point.config_name,
        "benchmarks": list(point.benchmarks),
        "length": point.length,
        "seed": point.seed,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "threads": [{"benchmark": t.benchmark, "retired": t.retired,
                     "cpi": t.cpi} for t in result.threads],
        "events": result.events.as_dict(),
        "steering": result.steering_stats,
        "bpred_accuracy": result.bpred_accuracy,
        "occupancy": result.occupancy,
        "elapsed_s": elapsed,
    }


class Campaign:
    """A checkpointed batch of simulation points."""

    def __init__(self, path: Union[str, Path],
                 points: Sequence[CampaignPoint]) -> None:
        self.path = Path(path)
        self.points = list(points)
        keys = [p.key for p in self.points]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate campaign points")
        self.records: Dict[str, dict] = {}
        if self.path.exists():
            with self.path.open() as fh:
                for line in fh:
                    rec = json.loads(line)
                    self.records[rec["key"]] = rec

    @property
    def pending(self) -> List[CampaignPoint]:
        return [p for p in self.points if p.key not in self.records]

    @property
    def completed(self) -> int:
        return sum(1 for p in self.points if p.key in self.records)

    def run(self, progress: Optional[Callable[[str, int, int], None]] = None
            ) -> Dict[str, dict]:
        """Execute all pending points, checkpointing after each.

        Args:
            progress: optional callback ``(point_key, done, total)``.

        Returns the full key -> record mapping (existing + new).
        """
        total = len(self.points)
        with self.path.open("a") as fh:
            for point in self.pending:
                t0 = time.time()
                traces = [generate(b, point.length, point.seed + i)
                          for i, b in enumerate(point.benchmarks)]
                result = Pipeline(point.config, traces).run(stop=point.stop)
                rec = _result_record(point, result, time.time() - t0)
                fh.write(json.dumps(rec) + "\n")
                fh.flush()
                self.records[point.key] = rec
                if progress:
                    progress(point.key, self.completed, total)
        return dict(self.records)

    def dataframe_rows(self) -> List[dict]:
        """Flat per-thread rows for ad-hoc analysis (no pandas needed)."""
        rows = []
        for rec in self.records.values():
            for i, t in enumerate(rec["threads"]):
                rows.append({
                    "config": rec["config"], "seed": rec["seed"],
                    "mix": "+".join(rec["benchmarks"]),
                    "thread": i, "benchmark": t["benchmark"],
                    "cpi": t["cpi"], "retired": t["retired"],
                    "cycles": rec["cycles"],
                })
        return rows


def standard_campaign(path: Union[str, Path], mixes, length: int,
                      configs: Optional[Dict[str, CoreConfig]] = None
                      ) -> Campaign:
    """The paper's evaluation grid: every mix on every evaluated config."""
    if configs is None:
        from repro.harness.configs import EVALUATED_CONFIGS
        configs = {name: factory(4)
                   for name, factory in EVALUATED_CONFIGS.items()}
    points = [CampaignPoint(name, cfg, tuple(mix), length, seed=i)
              for name, cfg in configs.items()
              for i, mix in enumerate(mixes)]
    return Campaign(path, points)
