"""Campaigns: persistent, resumable batches of simulations.

A full-scale reproduction is hundreds of simulator runs.  A
:class:`Campaign` enumerates (configuration, workload) points, runs the
missing ones — fanned out across worker processes when ``jobs > 1`` —
and checkpoints every completed point to a JSON file so an interrupted
campaign resumes where it stopped, and finished results can be analyzed
without re-simulating.  Campaign points also flow through the persistent
result store (:mod:`repro.harness.cache`), so deleting a checkpoint file
does not force re-simulation.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import CoreConfig
from repro.core.stats import SimResult
from repro.harness.cache import point_digest
from repro.harness.executor import run_points


@dataclass(frozen=True)
class CampaignPoint:
    """One simulation in a campaign."""

    config_name: str
    config: CoreConfig
    benchmarks: Tuple[str, ...]
    length: int
    seed: int = 0
    stop: str = "first"

    @property
    def key(self) -> str:
        """Stable identifier used for checkpointing."""
        mix = "+".join(self.benchmarks)
        return (f"{self.config_name}|{mix}|{self.length}|{self.seed}|"
                f"{self.stop}")

    @property
    def digest(self) -> str:
        """Content digest — the store / warehouse key for this point."""
        return point_digest(self.config, self.benchmarks, self.length,
                            self.seed, self.stop)


def _point_record(point: CampaignPoint, record: dict,
                  elapsed: float) -> dict:
    """Checkpoint line: point identity + a :meth:`SimResult.as_record`."""
    return {
        "key": point.key,
        "config": point.config_name,
        "benchmarks": list(point.benchmarks),
        "length": point.length,
        "seed": point.seed,
        **record,
        "elapsed_s": elapsed,
    }


def _result_record(point: CampaignPoint, result: SimResult,
                   elapsed: float) -> dict:
    return _point_record(point, result.as_record(), elapsed)


class Campaign:
    """A checkpointed batch of simulation points.

    Every campaign carries a *tag* (default: the checkpoint file's
    stem) under which its progress is reported to the warehouse index —
    one membership row per completed point — so `repro query --where
    campaign=<tag>`, `repro diff`, and the service's ``/campaigns``
    endpoint can watch a sweep materialize.  Warehouse reporting is
    strictly best-effort: an unwritable index never fails a campaign.
    """

    def __init__(self, path: Union[str, Path],
                 points: Sequence[CampaignPoint],
                 tag: Optional[str] = None) -> None:
        self.path = Path(path)
        self.points = list(points)
        self.tag = tag if tag is not None else self.path.stem
        keys = [p.key for p in self.points]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate campaign points")
        self.records: Dict[str, dict] = {}
        if self.path.exists():
            with self.path.open() as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    # A crash mid-write leaves a truncated trailing line;
                    # tolerate it (and any other mangled line) so the
                    # checkpoint file stays usable — the affected point
                    # simply runs again.
                    try:
                        rec = json.loads(line)
                        key = rec["key"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        continue
                    self.records[key] = rec

    @property
    def pending(self) -> List[CampaignPoint]:
        return [p for p in self.points if p.key not in self.records]

    @property
    def completed(self) -> int:
        return sum(1 for p in self.points if p.key in self.records)

    def run(self, progress: Optional[Callable[[str, int, int], None]] = None,
            jobs: Optional[int] = None,
            service: Optional[object] = None) -> Dict[str, dict]:
        """Execute all pending points, checkpointing after each.

        With ``jobs > 1`` (or ``$REPRO_JOBS`` set) pending points run
        concurrently across worker processes; each is still checkpointed
        the moment it completes, so interrupting a parallel campaign
        loses at most the in-flight points.  Simulated records are
        bit-identical to a serial run (completion *order* in the file may
        differ; records are keyed, so consumers are unaffected).

        With ``service`` set (a URL string or
        :class:`repro.service.client.ServiceClient`) the campaign spawns
        no local pool at all: every pending point is submitted to a
        running simulation service (``python -m repro serve``) and the
        returned records — identical in schema and content to locally
        simulated ones — are checkpointed as each job completes.

        Args:
            progress: optional callback ``(point_key, done, total)``.
            jobs: worker processes (default: ``$REPRO_JOBS``, else serial).
            service: submit points to this service instead of simulating
                locally.

        Returns the full key -> record mapping (existing + new).
        """
        if service is not None:
            return self._run_via_service(service, progress)
        total = len(self.points)
        pending = self.pending
        warehouse = self._begin_campaign()
        specs = [(p.config, p.benchmarks, p.length, p.seed, p.stop)
                 for p in pending]
        with self._checkpoint_file() as fh:
            for i, result, elapsed in run_points(specs, jobs=jobs):
                self._checkpoint(fh, pending[i],
                                 _result_record(pending[i], result, elapsed))
                self._mark_progress(warehouse, pending[i])
                if progress:
                    progress(pending[i].key, self.completed, total)
        return dict(self.records)

    # -- warehouse campaign reporting ---------------------------------------

    def _begin_campaign(self):
        """Declare this campaign in the warehouse (and back-fill marks
        for points completed by earlier runs).  Returns the warehouse
        handle, or ``None`` when analytics are unavailable — campaigns
        never fail because of the index."""
        from repro import warehouse as _warehouse
        from repro.harness.cache import get_store
        store = get_store()
        wh = store.warehouse() if store is not None else None
        if wh is None:
            return None
        try:
            wh.campaign_begin(self.tag, total=len(self.points))
            for p in self.points:
                if p.key in self.records:
                    wh.campaign_mark(self.tag, p.digest, p.key)
        except _warehouse.WAREHOUSE_ERRORS:
            return None
        return wh

    def _mark_progress(self, warehouse, point: CampaignPoint) -> None:
        if warehouse is None:
            return
        from repro import warehouse as _warehouse
        try:
            warehouse.campaign_mark(self.tag, point.digest, point.key)
        except _warehouse.WAREHOUSE_ERRORS:
            pass  # best-effort analytics (see _begin_campaign)

    def _checkpoint_file(self):
        """Open the checkpoint for appending, first terminating any
        partial trailing line a crash mid-write may have left (so the
        next record doesn't merge into it and get discarded by the
        tolerant loader on reload)."""
        if self.path.exists() and self.path.stat().st_size:
            with self.path.open("rb+") as fh:
                fh.seek(-1, 2)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
        return self.path.open("a")

    def _checkpoint(self, fh, point: CampaignPoint, rec: dict) -> None:
        fh.write(json.dumps(rec) + "\n")
        fh.flush()
        self.records[point.key] = rec

    def _run_via_service(self, service,
                         progress: Optional[Callable[[str, int, int], None]]
                         ) -> Dict[str, dict]:
        """Submit every pending point to a running simulation service and
        checkpoint results as jobs complete (completion order)."""
        from repro.service.client import ServiceClient
        client = ServiceClient(service) if isinstance(service, str) \
            else service
        total = len(self.points)
        pending = self.pending
        warehouse = self._begin_campaign()
        job_ids = {client.submit_point(p.config, p.benchmarks, p.length,
                                       seed=p.seed, stop=p.stop,
                                       campaign=self.tag): p
                   for p in pending}
        with self._checkpoint_file() as fh:
            outstanding = dict(job_ids)
            while outstanding:
                for job_id in list(outstanding):
                    status = client.status(job_id)
                    if status["state"] == "queued" or \
                            status["state"] == "running":
                        continue
                    point = outstanding.pop(job_id)
                    if status["state"] != "done":
                        raise RuntimeError(
                            f"service job {job_id} for {point.key} "
                            f"failed: {status.get('error')}")
                    payload = client.result(job_id)
                    record = payload["record"]
                    elapsed = record.pop("elapsed_s", 0.0)
                    self._checkpoint(fh, point,
                                     _point_record(point, record, elapsed))
                    self._mark_progress(warehouse, point)
                    if progress:
                        progress(point.key, self.completed, total)
                if outstanding:
                    time.sleep(0.05)
        return dict(self.records)

    def dataframe_rows(self) -> List[dict]:
        """Flat per-thread rows for ad-hoc analysis (no pandas needed)."""
        rows = []
        for rec in self.records.values():
            for i, t in enumerate(rec["threads"]):
                rows.append({
                    "config": rec["config"], "seed": rec["seed"],
                    "mix": "+".join(rec["benchmarks"]),
                    "thread": i, "benchmark": t["benchmark"],
                    "cpi": t["cpi"], "retired": t["retired"],
                    "cycles": rec["cycles"],
                })
        return rows


def standard_campaign(path: Union[str, Path], mixes, length: int,
                      configs: Optional[Dict[str, CoreConfig]] = None
                      ) -> Campaign:
    """The paper's evaluation grid: every mix on every evaluated config."""
    if configs is None:
        from repro.harness.configs import EVALUATED_CONFIGS
        configs = {name: factory(4)
                   for name, factory in EVALUATED_CONFIGS.items()}
    points = [CampaignPoint(name, cfg, tuple(mix), length, seed=i)
              for name, cfg in configs.items()
              for i, mix in enumerate(mixes)]
    return Campaign(path, points)
