"""Process-pool fan-out for simulation points.

The evaluation grid is embarrassingly parallel — hundreds of independent
:meth:`Pipeline.run` invocations — so :func:`run_points` fans pending
points out over a spawn-safe :class:`~concurrent.futures.ProcessPoolExecutor`
and streams ``(index, result, elapsed)`` tuples back as points complete.
At ``jobs=1`` (the default) it degrades to a plain serial loop with no
pool, no pickling, and identical results.

Worker processes consult and populate the persistent
:mod:`~repro.harness.cache` store directly, so a point simulated by any
worker is a disk hit for every later process.

Job count resolution, in priority order: explicit ``jobs=`` argument,
:func:`set_default_jobs` (the CLI's ``--jobs``), ``$REPRO_JOBS``, then 1.
A non-positive count means "all cores".
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro import envvars
from repro.core.config import CoreConfig
from repro.core.pipeline import Pipeline
from repro.core.stats import SimResult
from repro.harness.cache import get_store, point_digest
from repro.trace import generate

#: (config, benchmarks, length, seed, stop) — one simulation's inputs.
PointSpec = Tuple[CoreConfig, Tuple[str, ...], int, int, str]

_default_jobs: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default job count (the CLI's ``--jobs``)."""
    global _default_jobs
    _default_jobs = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a job count: argument, CLI default, ``$REPRO_JOBS``, else 1."""
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        env = (envvars.raw("REPRO_JOBS") or "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"bad REPRO_JOBS value {env!r}") from None
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Hard-kill a pool's worker processes.

    Used on interrupt/shutdown paths only: ``shutdown(cancel_futures=
    True)`` drops *pending* futures but still lets every in-flight point
    run to completion (and the executor's atexit hook joins the workers),
    which can stall exit for minutes.  Mid-simulation results are never
    checkpointed, so killing the workers loses nothing durable.
    """
    processes = getattr(pool, "_processes", None)
    for proc in list((processes or {}).values()):
        try:
            proc.terminate()
        except (OSError, ValueError):
            pass


@contextlib.contextmanager
def interrupt_on_sigterm():
    """Convert SIGTERM into :class:`KeyboardInterrupt` while active.

    A campaign killed by a supervisor (``kill``, CI job cancellation,
    container stop) then takes the same graceful path as Ctrl-C: pending
    futures are cancelled, completed points stay checkpointed, and the
    CLI exits nonzero.  A no-op off the main thread or where SIGTERM is
    unavailable; the previous handler is restored on exit.
    """
    if not hasattr(signal, "SIGTERM") or \
            threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def simulate_point(config: CoreConfig, benchmarks: Tuple[str, ...],
                   length: int, seed: int, stop: str) -> SimResult:
    """Run one simulation point through the persistent store.

    Checks the content-addressed disk store first, simulates on miss, and
    persists the result so any other process sharing the store dir hits.
    """
    store = get_store()
    if store is not None:
        digest = point_digest(config, benchmarks, length, seed, stop)
        cached = store.get(digest)
        if cached is not None:
            return cached
    traces = [generate(b, length, seed + i)
              for i, b in enumerate(benchmarks)]
    result = Pipeline(config, traces).run(stop=stop)
    if store is not None:
        # the point tuple rides along so the store can write the meta
        # sidecar and the warehouse row with full config columns.
        store.put(digest, result,
                  point=(config, benchmarks, length, seed, stop))
    return result


def _worker(spec: PointSpec) -> Tuple[SimResult, float]:
    t0 = time.time()
    result = simulate_point(*spec)
    return result, time.time() - t0


def run_points(specs: Iterable[PointSpec], jobs: Optional[int] = None
               ) -> Iterator[Tuple[int, SimResult, float]]:
    """Run every spec, yielding ``(index, result, elapsed_s)`` as each
    completes.

    With ``jobs > 1`` points run across a spawn-context process pool and
    arrive in completion order; with ``jobs = 1`` (or a single spec) they
    run serially, in order, in this process.  Either way every completed
    point is yielded exactly once, so callers can checkpoint incrementally.
    """
    specs = list(specs)
    jobs = min(resolve_jobs(jobs), max(len(specs), 1))
    if jobs <= 1:
        for i, spec in enumerate(specs):
            result, elapsed = _worker(spec)
            yield i, result, elapsed
        return
    # spawn, not fork: workers re-import the package, so they are safe
    # regardless of parent threads and identical across platforms.
    ctx = multiprocessing.get_context("spawn")
    pool = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)
    with interrupt_on_sigterm():
        try:
            futures = {pool.submit(_worker, spec): i
                       for i, spec in enumerate(specs)}
            for future in as_completed(futures):
                result, elapsed = future.result()
                yield futures[future], result, elapsed
        except BaseException:
            # KeyboardInterrupt / SIGTERM / a consumer abandoning the
            # generator: kill in-flight workers (before shutdown() —
            # which nulls the process table), drop everything not yet
            # running, and return without draining the whole grid.
            # Already-yielded (checkpointed) points are preserved.
            terminate_workers(pool)
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)


def map_points(specs: Sequence[PointSpec], jobs: Optional[int] = None
               ) -> list:
    """Like :func:`run_points` but returns results in *spec* order."""
    out: list = [None] * len(specs)
    for i, result, _ in run_points(specs, jobs=jobs):
        out[i] = result
    return out
