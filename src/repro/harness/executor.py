"""Process-pool fan-out for simulation points.

The evaluation grid is embarrassingly parallel — hundreds of independent
:meth:`Pipeline.run` invocations — so :func:`run_points` fans pending
points out over a spawn-safe :class:`~concurrent.futures.ProcessPoolExecutor`
and streams ``(index, result, elapsed)`` tuples back as points complete.
At ``jobs=1`` (the default) it degrades to a plain serial loop with no
pool, no pickling, and identical results.

Worker processes consult and populate the persistent
:mod:`~repro.harness.cache` store directly, so a point simulated by any
worker is a disk hit for every later process.

Job count resolution, in priority order: explicit ``jobs=`` argument,
:func:`set_default_jobs` (the CLI's ``--jobs``), ``$REPRO_JOBS``, then 1.
A non-positive count means "all cores".
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, \
    Tuple

from repro import envvars
from repro.core.config import CoreConfig
from repro.core.gang import GangEngine, gang_enabled, gang_size
from repro.core.pipeline import Pipeline
from repro.core.stats import SimResult
from repro.harness.cache import get_store, point_digest
from repro.trace import generate

#: (config, benchmarks, length, seed, stop) — one simulation's inputs.
PointSpec = Tuple[CoreConfig, Tuple[str, ...], int, int, str]

# ----------------------------------------------------------------------
# per-process trace memo
# ----------------------------------------------------------------------

#: (name, length, seed) -> trace, LRU-bounded.  Traces are immutable
#: once generated (cursors live on ThreadContext), so one object safely
#: serves every point that names it — which is also what lets gang
#: members share a single decoded-trace array set (keyed on object
#: identity in :mod:`repro.core.gang`).
_TRACE_MEMO: "OrderedDict[Tuple[str, int, int], object]" = OrderedDict()
_TRACE_MEMO_MAX = 64
_trace_memo_hits = 0
_trace_memo_misses = 0


def traces_for(benchmarks: Tuple[str, ...], length: int,
               seed: int) -> list:
    """The traces for one point, memoized per trace per process.

    A 50-config grid over one mix generates its traces once per worker
    instead of 50 times; repeated lookups also return the *same* trace
    objects, enabling decode sharing across gang members.
    """
    global _trace_memo_hits, _trace_memo_misses
    out = []
    for i, bench in enumerate(benchmarks):
        key = (bench, length, seed + i)
        trace = _TRACE_MEMO.get(key)
        if trace is None:
            _trace_memo_misses += 1
            trace = generate(bench, length, seed + i)
            _TRACE_MEMO[key] = trace
            if len(_TRACE_MEMO) > _TRACE_MEMO_MAX:
                _TRACE_MEMO.popitem(last=False)
        else:
            _trace_memo_hits += 1
            _TRACE_MEMO.move_to_end(key)
        out.append(trace)
    return out


def clear_trace_memo() -> None:
    """Drop every memoized trace and zero the hit/miss counters
    (invoked by :func:`repro.harness.runner.clear_cache`)."""
    global _trace_memo_hits, _trace_memo_misses
    _TRACE_MEMO.clear()
    _trace_memo_hits = _trace_memo_misses = 0


def trace_memo_stats() -> Dict[str, int]:
    """Live memo counters: ``entries``, ``hits``, ``misses``."""
    return {"entries": len(_TRACE_MEMO), "hits": _trace_memo_hits,
            "misses": _trace_memo_misses}

_default_jobs: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default job count (the CLI's ``--jobs``)."""
    global _default_jobs
    _default_jobs = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a job count: argument, CLI default, ``$REPRO_JOBS``, else 1."""
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        env = (envvars.raw("REPRO_JOBS") or "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"bad REPRO_JOBS value {env!r}") from None
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Hard-kill a pool's worker processes.

    Used on interrupt/shutdown paths only: ``shutdown(cancel_futures=
    True)`` drops *pending* futures but still lets every in-flight point
    run to completion (and the executor's atexit hook joins the workers),
    which can stall exit for minutes.  Mid-simulation results are never
    checkpointed, so killing the workers loses nothing durable.
    """
    processes = getattr(pool, "_processes", None)
    for proc in list((processes or {}).values()):
        try:
            proc.terminate()
        except (OSError, ValueError):
            pass


@contextlib.contextmanager
def interrupt_on_sigterm():
    """Convert SIGTERM into :class:`KeyboardInterrupt` while active.

    A campaign killed by a supervisor (``kill``, CI job cancellation,
    container stop) then takes the same graceful path as Ctrl-C: pending
    futures are cancelled, completed points stay checkpointed, and the
    CLI exits nonzero.  A no-op off the main thread or where SIGTERM is
    unavailable; the previous handler is restored on exit.
    """
    if not hasattr(signal, "SIGTERM") or \
            threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


class PointTimeout(Exception):
    """Raised inside a worker when a point exceeds its time budget."""


@contextlib.contextmanager
def _alarm(seconds: Optional[float]):
    """Run the body under a real-time interval timer (worker-side)."""
    if not seconds or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _timeout(signum, frame):
        raise PointTimeout

    previous = signal.signal(signal.SIGALRM, _timeout)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_wire_batch(wire_specs: List[dict]) -> List[dict]:
    """Simulate a batch of wire-format job specs (the shared body of
    the service pool's ``run_batch`` and the fleet worker's lease loop).

    Returns one outcome dict per spec, in order:

    * ``{"ok": True, "result": SimResult, "elapsed_s": float,
      "store_hit": bool}`` — simulated (or loaded from the persistent
      store) successfully;
    * ``{"ok": False, "error": {...}}`` — the point timed out or its
      spec failed validation; the rest of the batch still runs.

    With gang mode on (``REPRO_GANG``), store-missing points *without*
    a per-point timeout that share a trace signature simulate as one
    :class:`~repro.core.gang.GangEngine` unit (results bit-identical
    to solo, ``elapsed_s`` reported as the gang's share); timed points
    stay on the solo path because the ``SIGALRM`` budget is per point
    and gang members interleave.
    """
    # late import: repro.service imports this module at load time, so
    # the spec class must resolve lazily to keep the layering acyclic.
    from repro.service.jobs import JobSpec
    store = get_store()
    out: List[Optional[dict]] = [None] * len(wire_specs)
    gang_ok = gang_enabled()
    gang_points: List[tuple] = []
    gang_indices: List[int] = []
    for idx, wire in enumerate(wire_specs):
        timeout_s = wire.get("_timeout_s")
        t0 = time.time()
        try:
            spec = JobSpec.from_wire(wire)
            hit = store.get(spec.digest()) if store is not None else None
            if hit is None and gang_ok and timeout_s is None:
                gang_points.append(spec.point())
                gang_indices.append(idx)
                continue
            with _alarm(timeout_s):
                result = hit if hit is not None \
                    else simulate_point(*spec.point())
        except PointTimeout:
            out[idx] = {"ok": False, "error": {
                "type": "timeout",
                "message": f"point exceeded its {timeout_s}s budget"}}
        except ValueError as exc:
            out[idx] = {"ok": False, "error": {
                "type": "bad-spec", "message": str(exc)}}
        else:
            out[idx] = {"ok": True, "result": result,
                        "elapsed_s": time.time() - t0,
                        "store_hit": hit is not None}
    for group in _gang_groups(gang_points):
        t0 = time.time()
        results = simulate_gang([gang_points[g] for g in group])
        share = (time.time() - t0) / len(group)
        for g, result in zip(group, results):
            out[gang_indices[g]] = {"ok": True, "result": result,
                                    "elapsed_s": share,
                                    "store_hit": False}
    return out  # type: ignore[return-value]


def simulate_point(config: CoreConfig, benchmarks: Tuple[str, ...],
                   length: int, seed: int, stop: str) -> SimResult:
    """Run one simulation point through the persistent store.

    Checks the content-addressed disk store first, simulates on miss, and
    persists the result so any other process sharing the store dir hits.
    """
    store = get_store()
    if store is not None:
        digest = point_digest(config, benchmarks, length, seed, stop)
        cached = store.get(digest)
        if cached is not None:
            return cached
    traces = traces_for(benchmarks, length, seed)
    result = Pipeline(config, traces).run(stop=stop)
    if store is not None:
        # the point tuple rides along so the store can write the meta
        # sidecar and the warehouse row with full config columns.
        store.put(digest, result,
                  point=(config, benchmarks, length, seed, stop))
    return result


def simulate_gang(specs: Sequence[PointSpec]) -> List[SimResult]:
    """Run gang-compatible specs — identical ``(benchmarks, length,
    seed, stop)``, any configs — as one gang through the store.

    Per-spec store hits are honoured individually; the misses become
    members of one :class:`~repro.core.gang.GangEngine` sharing decoded
    traces, and every result is persisted exactly as
    :func:`simulate_point` would.  If the gang raises (e.g. one member
    deadlocks), the misses are re-run solo so the failure is raised by
    — and attributed to — the offending spec alone.
    """
    specs = list(specs)
    store = get_store()
    results: List[Optional[SimResult]] = [None] * len(specs)
    digests: List[Optional[str]] = [None] * len(specs)
    pending = []
    for i, (config, benchmarks, length, seed, stop) in enumerate(specs):
        if store is not None:
            digests[i] = point_digest(config, benchmarks, length, seed,
                                      stop)
            cached = store.get(digests[i])
            if cached is not None:
                results[i] = cached
                continue
        pending.append(i)
    if not pending:
        return results  # type: ignore[return-value]
    try:
        members = []
        for i in pending:
            config, benchmarks, length, seed, stop = specs[i]
            members.append(
                Pipeline(config, traces_for(benchmarks, length, seed)))
        gang_results = GangEngine(
            members, stop=specs[pending[0]][4]).run()
    except Exception:  # repro-lint: waive=DET104
        # Audited: nothing is swallowed — the solo replay below re-runs
        # every miss, so the failing member re-raises its exact
        # exception with solo attribution, and its healthy gang-mates
        # still produce (bit-identical) results.
        for i in pending:
            results[i] = simulate_point(*specs[i])
        return results  # type: ignore[return-value]
    for i, result in zip(pending, gang_results):
        results[i] = result
        if store is not None:
            store.put(digests[i], result, point=specs[i])
    return results  # type: ignore[return-value]


def _worker(spec: PointSpec) -> Tuple[SimResult, float]:
    t0 = time.time()
    result = simulate_point(*spec)
    return result, time.time() - t0


def _gang_worker(specs: Sequence[PointSpec]
                 ) -> Tuple[List[SimResult], float]:
    t0 = time.time()
    results = simulate_gang(specs)
    return results, time.time() - t0


def _gang_groups(specs: Sequence[PointSpec]) -> List[List[int]]:
    """Partition spec indices into gang-compatible chunks.

    Specs sharing ``(benchmarks, length, seed, stop)`` — i.e. the same
    traces and stop condition, whatever their configs — group together
    in first-appearance order, chunked at :func:`gang_size` members.
    Unique signatures come out as singletons and take the plain solo
    paths.
    """
    by_signature: "OrderedDict[tuple, List[int]]" = OrderedDict()
    for i, (config, benchmarks, length, seed, stop) in enumerate(specs):
        by_signature.setdefault(
            (benchmarks, length, seed, stop), []).append(i)
    size = gang_size()
    groups: List[List[int]] = []
    for indices in by_signature.values():
        for k in range(0, len(indices), size):
            groups.append(indices[k:k + size])
    return groups


def run_points(specs: Iterable[PointSpec], jobs: Optional[int] = None
               ) -> Iterator[Tuple[int, SimResult, float]]:
    """Run every spec, yielding ``(index, result, elapsed_s)`` as each
    completes.

    With ``jobs > 1`` points run across a spawn-context process pool and
    arrive in completion order; with ``jobs = 1`` (or a single spec) they
    run serially in this process.  Either way every completed point is
    yielded exactly once, so callers can checkpoint incrementally.

    When gang mode is on (``REPRO_GANG``, default) specs sharing a trace
    signature run as one :class:`~repro.core.gang.GangEngine` unit —
    one pool task (or one serial step) per gang, results bit-identical
    to solo, per-spec elapsed reported as the gang's share — so yields
    may leave spec order even at ``jobs = 1``.
    """
    specs = list(specs)
    jobs = min(resolve_jobs(jobs), max(len(specs), 1))
    if gang_enabled() and len(specs) > 1:
        groups = _gang_groups(specs)
    else:
        groups = [[i] for i in range(len(specs))]
    if jobs <= 1:
        for indices in groups:
            if len(indices) == 1:
                result, elapsed = _worker(specs[indices[0]])
                yield indices[0], result, elapsed
            else:
                results, elapsed = _gang_worker(
                    [specs[i] for i in indices])
                share = elapsed / len(indices)
                for i, result in zip(indices, results):
                    yield i, result, share
        return
    # spawn, not fork: workers re-import the package, so they are safe
    # regardless of parent threads and identical across platforms.
    ctx = multiprocessing.get_context("spawn")
    pool = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)
    with interrupt_on_sigterm():
        try:
            futures = {}
            for indices in groups:
                if len(indices) == 1:
                    future = pool.submit(_worker, specs[indices[0]])
                else:
                    future = pool.submit(
                        _gang_worker, [specs[i] for i in indices])
                futures[future] = indices
            for future in as_completed(futures):
                indices = futures[future]
                if len(indices) == 1:
                    result, elapsed = future.result()
                    yield indices[0], result, elapsed
                    continue
                results, elapsed = future.result()
                share = elapsed / len(indices)
                for i, result in zip(indices, results):
                    yield i, result, share
        except BaseException:
            # KeyboardInterrupt / SIGTERM / a consumer abandoning the
            # generator: kill in-flight workers (before shutdown() —
            # which nulls the process table), drop everything not yet
            # running, and return without draining the whole grid.
            # Already-yielded (checkpointed) points are preserved.
            terminate_workers(pool)
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)


def map_points(specs: Sequence[PointSpec], jobs: Optional[int] = None
               ) -> list:
    """Like :func:`run_points` but returns results in *spec* order."""
    out: list = [None] * len(specs)
    for i, result, _ in run_points(specs, jobs=jobs):
        out[i] = result
    return out
