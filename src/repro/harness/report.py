"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned text table (the benches print these, and
    EXPERIMENTS.md records them)."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
