"""Cached simulation runners and run-scale selection.

Simulation results are memoized at two levels: in-process by
(configuration, benchmark, length, seed, stop-mode), so the many
experiments that share runs — e.g. Figure 10's mix runs feeding
Figure 13's EDP — simulate each point once per process; and persistently
via the content-addressed disk store in :mod:`repro.harness.cache`, so a
fresh interpreter (or a pool worker) reuses every previously simulated
point.  :func:`prefill` fans uncached points out across a process pool
(see :mod:`repro.harness.executor`) and seeds both levels.

STP needs a single-threaded reference CPI per benchmark.  We reference all
configurations against the *baseline* (Base64) single-thread CPIs, which
makes STP directly comparable across configurations (and makes the 1- and
2-thread comparison of Figure 14 meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro import envvars
from repro.core.config import CoreConfig
from repro.core.stats import SimResult
from repro.harness import cache as _cache
from repro.harness import executor
from repro.harness.configs import base64_config
from repro.harness.executor import PointSpec, run_points, simulate_point
from repro.metrics.throughput import stp


@dataclass(frozen=True)
class RunScale:
    """How big the experiments run."""

    name: str
    instructions_per_thread: int
    num_mixes: int  #: how many of the 28 balanced mixes to simulate

    def __str__(self) -> str:
        return (f"{self.name} ({self.instructions_per_thread} instrs/thread, "
                f"{self.num_mixes} mixes)")


SCALES = {
    "smoke": RunScale("smoke", 800, 3),
    "default": RunScale("default", 2500, 8),
    "full": RunScale("full", 6000, 28),
}


def get_scale(name: Optional[str] = None) -> RunScale:
    """Resolve the run scale: explicit name, else ``$REPRO_SCALE``, else
    ``default``."""
    key = name or envvars.raw("REPRO_SCALE")
    try:
        return SCALES[key]
    except KeyError:
        raise ValueError(f"unknown scale {key!r}; "
                         f"choose from {', '.join(SCALES)}") from None


# -- memoized simulation ---------------------------------------------------

_CACHE: Dict[PointSpec, SimResult] = {}
_STATS = {"hits": 0, "misses": 0}


def clear_cache(disk: bool = False) -> None:
    """Drop memoized simulation results (tests use this).

    Clears the in-process memo dict, resets its hit/miss counters, and
    drops the persistent-store handle so the next run re-reads
    ``$REPRO_CACHE_DIR``.  With ``disk=True`` the on-disk entries are
    deleted too.
    """
    _CACHE.clear()
    _STATS["hits"] = _STATS["misses"] = 0
    executor.clear_trace_memo()
    if disk:
        store = _cache.get_store()
        if store is not None:
            store.clear()
    _cache.reset_store()


def cache_stats() -> Dict[str, int]:
    """Hit/miss counters for both cache levels (in-process + disk)."""
    stats = {"memo_hits": _STATS["hits"], "memo_misses": _STATS["misses"],
             "memo_size": len(_CACHE)}
    stats.update({"trace_" + k: v
                  for k, v in executor.trace_memo_stats().items()})
    store = _cache.get_store()
    if store is not None:
        stats.update(store.stats)
    return stats


def _run(config: CoreConfig, benchmarks: Tuple[str, ...], length: int,
         seed: int, stop: str) -> SimResult:
    key = (config, benchmarks, length, seed, stop)
    if key in _CACHE:
        _STATS["hits"] += 1
    else:
        _STATS["misses"] += 1
        _CACHE[key] = simulate_point(*key)
    return _CACHE[key]


def prefill(points: Iterable[PointSpec],
            jobs: Optional[int] = None) -> int:
    """Simulate every not-yet-memoized point, fanned out over *jobs*
    worker processes, and seed both cache levels.

    Points already in the in-process memo are skipped; workers skip
    points present in the persistent store.  Returns how many points
    were dispatched.  After this, the matching :func:`run_mix` /
    :func:`run_benchmark` calls are all cache hits, so experiment code
    keeps its simple serial shape while the simulation work scales
    across cores.
    """
    seen = set()
    specs = []
    for spec in points:
        if spec not in seen and spec not in _CACHE:
            seen.add(spec)
            specs.append(spec)
    for i, result, _ in run_points(specs, jobs=jobs):
        _CACHE[specs[i]] = result
    return len(specs)


def run_benchmark(config: CoreConfig, benchmark: str, length: int,
                  seed: int = 0) -> SimResult:
    """Run one benchmark alone to completion on a 1-thread *config*."""
    if config.num_threads != 1:
        config = config.with_threads(1)
    return _run(config, (benchmark,), length, seed, "all")


def run_mix(config: CoreConfig, mix: Sequence[str], length: int,
            seed: int = 0) -> SimResult:
    """Run an SMT mix until the first thread finishes its trace."""
    if len(mix) != config.num_threads:
        raise ValueError(f"mix of {len(mix)} benchmarks on a "
                         f"{config.num_threads}-thread config")
    return _run(config, tuple(mix), length, seed, "first")


def single_thread_cpi(config: CoreConfig, benchmark: str, length: int,
                      seed: int = 0) -> float:
    """CPI of *benchmark* running alone on a 1-thread *config*."""
    return run_benchmark(config, benchmark, length, seed).threads[0].cpi


def mix_stp(config: CoreConfig, mix: Sequence[str], length: int,
            seed: int = 0,
            reference: Optional[CoreConfig] = None) -> float:
    """STP of *mix* on *config*, referenced to single-thread Base64 CPIs.

    The seed offset per thread slot matches :func:`run_mix`, so the
    reference run replays the identical trace the SMT thread executes.
    """
    ref = reference if reference is not None else base64_config(1)
    multi = run_mix(config, mix, length, seed)
    singles = [single_thread_cpi(ref, b, length, seed + i)
               for i, b in enumerate(mix)]
    return stp(multi, singles)
