"""Experiment harness: configuration factories, cached runners, scaling.

Every experiment accepts a :class:`RunScale` so the full suite can run at
smoke-test size in CI and at paper-like size offline (set
``REPRO_SCALE=full``).
"""

from repro.harness.configs import (
    base64_config,
    base128_config,
    shelf_config,
    EVALUATED_CONFIGS,
)
from repro.harness.runner import (
    RunScale,
    clear_cache,
    get_scale,
    mix_stp,
    run_benchmark,
    run_mix,
    single_thread_cpi,
)
from repro.harness.report import format_table
from repro.harness.campaign import Campaign, CampaignPoint, standard_campaign

__all__ = [
    "Campaign",
    "CampaignPoint",
    "standard_campaign",
    "base64_config",
    "base128_config",
    "shelf_config",
    "EVALUATED_CONFIGS",
    "RunScale",
    "clear_cache",
    "get_scale",
    "mix_stp",
    "run_benchmark",
    "run_mix",
    "single_thread_cpi",
    "format_table",
]
