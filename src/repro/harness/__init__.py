"""Experiment harness: configuration factories, cached runners, scaling.

Every experiment accepts a :class:`RunScale` so the full suite can run at
smoke-test size in CI and at paper-like size offline (set
``REPRO_SCALE=full``).
"""

from repro.harness.configs import (
    base64_config,
    base128_config,
    shelf_config,
    EVALUATED_CONFIGS,
)
from repro.harness.runner import (
    RunScale,
    cache_stats,
    clear_cache,
    get_scale,
    mix_stp,
    prefill,
    run_benchmark,
    run_mix,
    single_thread_cpi,
)
from repro.harness.cache import ResultStore, point_digest
from repro.harness.executor import (
    interrupt_on_sigterm,
    resolve_jobs,
    run_points,
    set_default_jobs,
    simulate_point,
)
from repro.harness.report import format_table
from repro.harness.campaign import Campaign, CampaignPoint, standard_campaign

__all__ = [
    "Campaign",
    "CampaignPoint",
    "standard_campaign",
    "base64_config",
    "base128_config",
    "shelf_config",
    "EVALUATED_CONFIGS",
    "ResultStore",
    "RunScale",
    "cache_stats",
    "clear_cache",
    "get_scale",
    "interrupt_on_sigterm",
    "mix_stp",
    "point_digest",
    "prefill",
    "resolve_jobs",
    "run_benchmark",
    "run_mix",
    "run_points",
    "set_default_jobs",
    "simulate_point",
    "single_thread_cpi",
    "format_table",
]
