"""The paper's evaluated configurations (Table I and Section V).

* ``Base64``  — 64-entry ROB, 32-entry IQ/LQ/SQ: the baseline.
* ``Base64+Shelf64`` — baseline plus a 64-entry shelf, under conservative
  (no same-cycle shelf issue) or optimistic assumptions, with practical or
  oracle steering.
* ``Base128`` — all OOO structures doubled: the paper's upper bound.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.config import CoreConfig


def base64_config(threads: int = 4) -> CoreConfig:
    """The baseline 4-thread OOO core (64-entry ROB, 32-entry IQ/LQ/SQ)."""
    return CoreConfig(num_threads=threads)


def base128_config(threads: int = 4) -> CoreConfig:
    """Every OOO structure doubled — the shelf's theoretical upper bound."""
    return CoreConfig(num_threads=threads, rob_entries=128, iq_entries=64,
                      lq_entries=64, sq_entries=64)


def shelf_config(threads: int = 4, steering: str = "practical",
                 optimistic: bool = False,
                 shelf_entries: int = 64) -> CoreConfig:
    """Base64 plus a shelf (default 64 entries, practical steering)."""
    return CoreConfig(num_threads=threads, shelf_entries=shelf_entries,
                      steering=steering,
                      shelf_same_cycle_issue=optimistic)


#: label -> factory, the four bars of Figures 10 and 13.
EVALUATED_CONFIGS: Dict[str, Callable[[int], CoreConfig]] = {
    "Base64": base64_config,
    "Shelf64-cons": lambda t=4: shelf_config(t, optimistic=False),
    "Shelf64-opt": lambda t=4: shelf_config(t, optimistic=True),
    "Base128": base128_config,
}
