"""Persistent, content-addressed store for simulation results.

A :class:`ResultStore` maps a stable digest of one simulation point —
(configuration, benchmarks, length, seed, stop-mode) plus a
simulator-version salt — to a pickled :class:`~repro.core.stats.SimResult`
on disk.  Every process (serial runs, campaign workers, fresh
interpreters) shares the same store, so a full-scale reproduction only
ever simulates each point once per simulator version.

The store location is controlled by ``$REPRO_CACHE_DIR``:

* unset     — ``$XDG_CACHE_HOME/repro-sim`` (default ``~/.cache/repro-sim``);
* a path    — that directory;
* ``off`` / ``0`` / ``none`` / empty — persistent caching disabled.

The version salt hashes the simulator's own source (core, memory,
frontend, rename, trace, isa packages), so editing the timing model
invalidates stale entries without any manual bookkeeping.  Loading is
corruption-tolerant: an unreadable entry is deleted and counted, never
raised.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro import envvars
from repro.core.config import CoreConfig
from repro.core.stats import SimResult

#: bump when the on-disk record layout changes incompatibly.
SCHEMA_VERSION = 2

#: everything a truncated or version-skewed pickle can raise on load:
#: I/O errors, short reads, bad opcodes/containers, and stale references
#: to renamed classes/modules.  Anything outside this set is a real bug
#: and must propagate.
CORRUPTION_ERRORS = (OSError, EOFError, ValueError, TypeError, KeyError,
                     IndexError, AttributeError, ImportError,
                     pickle.UnpicklingError, MemoryError)

#: packages whose source defines simulated behaviour (salt inputs).
_SALT_PACKAGES = ("core", "memory", "frontend", "rename", "trace", "isa")

_salt: Optional[str] = None


def simulator_salt() -> str:
    """Digest of the simulator's source files (computed once per process).

    Any change to the packages that define timing behaviour produces new
    digests, so stale results from an older simulator are never served.
    """
    global _salt
    if _salt is None:
        import repro
        root = Path(repro.__file__).parent
        h = hashlib.sha256()
        for pkg in _SALT_PACKAGES:
            for f in sorted((root / pkg).glob("*.py")):
                h.update(f.name.encode())
                h.update(f.read_bytes())
        _salt = h.hexdigest()[:16]
    return _salt


#: :class:`CoreConfig` fields that select an execution *mode* rather
#: than simulated behaviour — results are bit-identical whichever way
#: they are set, so they must never differentiate digests.  ``repro
#: check``'s DIG501 rule enforces that digest-scope code only reaches
#: config values through :func:`digest_config_dict`, which strips these.
MODE_FLAG_FIELDS: Tuple[str, ...] = ("sanitize",)


def digest_config_dict(config: CoreConfig) -> Dict[str, object]:
    """The digest view of a configuration: every field value,
    recursively, minus the :data:`MODE_FLAG_FIELDS`.

    This is the one sanctioned ``asdict`` call site in digest scope —
    a bare ``asdict(config)`` in a digest function would leak mode
    flags into the content address (and DIG501 flags it).
    """
    values = asdict(config)
    for field in MODE_FLAG_FIELDS:
        values.pop(field, None)
    return values


def point_digest(config: CoreConfig, benchmarks: Tuple[str, ...],
                 length: int, seed: int, stop: str) -> str:
    """Stable content digest of one simulation point.

    Built from the *values* of every behaviour-defining configuration
    field (recursively, including the cache hierarchy), so two
    structurally-equal configs digest identically across processes and
    interpreter runs.  Mode flags are excluded: a sanitized run must be
    a store hit for an unsanitized one and vice versa.
    """
    payload = json.dumps({
        "schema": SCHEMA_VERSION,
        "salt": simulator_salt(),
        "config": digest_config_dict(config),
        "benchmarks": list(benchmarks),
        "length": length,
        "seed": seed,
        "stop": stop,
    }, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


class GCResult(NamedTuple):
    """Outcome of one :meth:`ResultStore.gc` sweep.

    The evicted digest list is what keeps the warehouse index exact:
    :meth:`~repro.warehouse.index.Warehouse.delete` drops precisely
    these rows instead of forcing a full rebuild.
    """

    removed: int
    freed_bytes: int
    digests: List[str]


class ResultStore:
    """Content-addressed on-disk result store with hit/miss accounting.

    Beyond the blobs, the store maintains two pieces of derived state:

    * a ``<digest>.meta.json`` *point sidecar* per entry (written when
      the caller supplies the point, as :func:`simulate_point
      <repro.harness.executor.simulate_point>` does) recording the
      digest's pre-image — config fields via
      :func:`digest_config_dict`, benchmarks, length, seed, stop — so
      the warehouse can index config columns from a cold store;
    * the warehouse index itself (:mod:`repro.warehouse`), fed by an
      ingest hook on :meth:`put` and invalidated by :meth:`gc` /
      :meth:`clear`.  Index failures never propagate into simulation:
      they are counted in ``index_errors`` and the blob write stands.
    """

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.errors = 0    #: corrupt entries discarded on load
        self.evictions = 0  #: entries removed by :meth:`clear`
        self.index_errors = 0  #: warehouse ingest/invalidation failures
        self._warehouse = None
        self._warehouse_resolved = False

    def _path(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}.pkl"

    def _meta_path(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}.meta.json"

    def get(self, digest: str) -> Optional[SimResult]:
        """Load a result, or ``None`` on miss.  Corrupt entries are
        deleted and counted as misses."""
        path = self._path(digest)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except CORRUPTION_ERRORS:
            # Truncated write, version skew, bad pickle: drop the entry.
            # Occurrences are counted (``disk_errors`` in cache_stats()).
            self.errors += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(result, SimResult):
            self.errors += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, digest: str, result: SimResult,
            point: Optional[Tuple] = None) -> None:
        """Atomically persist a result (concurrent writers are safe: the
        temp-file + rename sequence never exposes a partial entry).

        With *point* — the ``(config, benchmarks, length, seed, stop)``
        tuple the digest was computed from — a point sidecar is written
        next to the blob and the warehouse index row carries the full
        config columns; without it only blob-derivable columns are
        indexed.  Neither sidecar nor index touches the blob bytes or
        the digest.
        """
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        meta = None
        if point is not None:
            config, benchmarks, length, seed, stop = point
            meta = {"config": digest_config_dict(config),
                    "benchmarks": list(benchmarks),
                    "length": length, "seed": seed, "stop": stop}
            self._write_meta(digest, meta)
        self._ingest(digest, result, meta)

    def _write_meta(self, digest: str, meta: Dict[str, object]) -> None:
        """Atomically write the point sidecar (same discipline as the
        blob: never expose a partial file to a concurrent reader)."""
        path = self._meta_path(digest)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(meta, fh, sort_keys=True, default=str)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def meta(self, digest: str) -> Optional[Dict[str, object]]:
        """The point sidecar for *digest*, or ``None`` (pre-sidecar
        entry, or an unreadable sidecar — both tolerated)."""
        try:
            with self._meta_path(digest).open() as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) else None

    # -- warehouse index hooks ----------------------------------------------

    def warehouse(self):
        """This store's warehouse index handle (lazy; ``None`` when the
        warehouse is disabled or its database cannot be opened)."""
        if not self._warehouse_resolved:
            from repro import warehouse as _warehouse
            self._warehouse_resolved = True
            db = _warehouse.db_path_for(self.directory)
            if db is not None:
                try:
                    self._warehouse = _warehouse.Warehouse(db)
                except _warehouse.WAREHOUSE_ERRORS:
                    self.index_errors += 1
                    self._warehouse = None
        return self._warehouse

    def _ingest(self, digest: str, result: SimResult,
                meta: Optional[Dict[str, object]]) -> None:
        from repro import warehouse as _warehouse
        if not _warehouse.ingest_enabled():
            return
        wh = self.warehouse()
        if wh is None:
            return
        try:
            wh.ingest(digest, result, meta)
        except _warehouse.WAREHOUSE_ERRORS:
            # analytics must never break a simulation: count and move
            # on — `repro warehouse rebuild` restores the lost row.
            self.index_errors += 1

    def _invalidate(self, digests: List[str]) -> None:
        from repro import warehouse as _warehouse
        wh = self.warehouse()
        if wh is None:
            return
        try:
            wh.delete(digests)
        except _warehouse.WAREHOUSE_ERRORS:
            self.index_errors += 1

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every stored entry (and its sidecar); returns how many
        were removed.  The warehouse index is cleared with them."""
        removed = 0
        if self.directory.is_dir():
            for f in self.directory.glob("*/*.pkl"):
                try:
                    f.unlink()
                    removed += 1
                except OSError:
                    pass
            for f in self.directory.glob("*/*.meta.json"):
                try:
                    f.unlink()
                except OSError:
                    pass
        self.evictions += removed
        wh = self.warehouse()
        if wh is not None:
            from repro import warehouse as _warehouse
            try:
                wh.clear()
            except _warehouse.WAREHOUSE_ERRORS:
                self.index_errors += 1
        return removed

    def entries(self) -> List[Tuple[Path, int, float]]:
        """Every stored entry as ``(path, size_bytes, mtime)``, sorted by
        path for determinism.  Entries that vanish mid-scan (a concurrent
        ``gc`` or ``clear``) are skipped."""
        out: List[Tuple[Path, int, float]] = []
        if not self.directory.is_dir():
            return out
        for f in sorted(self.directory.glob("*/*.pkl")):
            try:
                st = f.stat()
            except OSError:
                continue
            out.append((f, st.st_size, st.st_mtime))
        return out

    def disk_stats(self) -> Dict[str, object]:
        """On-disk footprint of the blobs *and* the warehouse index:
        ``entries``/``bytes`` for the blobs, ``index_present``/
        ``index_rows``/``index_bytes`` for the sqlite index."""
        entries = self.entries()
        stats: Dict[str, object] = {
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "index_present": False,
            "index_rows": 0,
            "index_bytes": 0,
        }
        wh = self.warehouse()
        if wh is not None and wh.path.exists():
            from repro import warehouse as _warehouse
            try:
                stats["index_rows"] = wh.row_count()
                stats["index_bytes"] = wh.size_bytes()
                stats["index_present"] = True
            except _warehouse.WAREHOUSE_ERRORS:
                self.index_errors += 1
        return stats

    def gc(self, max_bytes: int) -> GCResult:
        """Evict least-recently-written entries until the store holds at
        most *max_bytes*.

        Returns a :class:`GCResult` — eviction count, freed bytes, and
        the exact digests removed (their warehouse rows are deleted in
        the same sweep, and sidecars go with their blobs).  Eviction
        order is oldest mtime first (ties broken by path), so hot
        recent results survive.
        """
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        removed = freed = 0
        digests: List[str] = []
        for path, size, _ in sorted(entries, key=lambda e: (e[2], str(e[0]))):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            try:
                self._meta_path(path.stem).unlink()
            except OSError:
                pass
            digests.append(path.stem)
            total -= size
            freed += size
            removed += 1
        self.evictions += removed
        if digests:
            self._invalidate(digests)
        return GCResult(removed, freed, digests)

    @property
    def stats(self) -> Dict[str, int]:
        return {"disk_hits": self.hits, "disk_misses": self.misses,
                "disk_errors": self.errors,
                "disk_evictions": self.evictions,
                "index_errors": self.index_errors}


# -- process-wide store handle ----------------------------------------------

_store: Optional[ResultStore] = None
_store_resolved = False


def store_dir() -> Optional[Path]:
    """Resolve the store directory from the environment (None = disabled)."""
    env = envvars.raw("REPRO_CACHE_DIR")
    if env is not None:
        if env.strip().lower() in envvars.OFF_VALUES:
            return None
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-sim"


def get_store() -> Optional[ResultStore]:
    """The process-wide store handle, or ``None`` when caching is off.

    When ``$REPRO_FLEET_DIR`` is set the handle is a
    :class:`repro.fleet.ShardedStore` (the digest-prefix-sharded fleet
    store, a drop-in for :class:`ResultStore`); otherwise the flat
    single-directory store.  Both selections are deployment knobs and
    never influence digests."""
    global _store, _store_resolved
    if not _store_resolved:
        # imported lazily: repro.fleet sits above the harness layer.
        from repro.fleet.shards import ShardedStore, fleet_dir
        fleet_root = fleet_dir()
        if fleet_root is not None:
            _store = ShardedStore(fleet_root)
        else:
            directory = store_dir()
            _store = ResultStore(directory) if directory is not None \
                else None
        _store_resolved = True
    return _store


def reset_store() -> None:
    """Drop the process-wide handle so the next access re-reads the
    environment (tests repoint ``$REPRO_CACHE_DIR`` between runs)."""
    global _store, _store_resolved
    _store = None
    _store_resolved = False
