"""Persistent, content-addressed store for simulation results.

A :class:`ResultStore` maps a stable digest of one simulation point —
(configuration, benchmarks, length, seed, stop-mode) plus a
simulator-version salt — to a pickled :class:`~repro.core.stats.SimResult`
on disk.  Every process (serial runs, campaign workers, fresh
interpreters) shares the same store, so a full-scale reproduction only
ever simulates each point once per simulator version.

The store location is controlled by ``$REPRO_CACHE_DIR``:

* unset     — ``$XDG_CACHE_HOME/repro-sim`` (default ``~/.cache/repro-sim``);
* a path    — that directory;
* ``off`` / ``0`` / ``none`` / empty — persistent caching disabled.

The version salt hashes the simulator's own source (core, memory,
frontend, rename, trace, isa packages), so editing the timing model
invalidates stale entries without any manual bookkeeping.  Loading is
corruption-tolerant: an unreadable entry is deleted and counted, never
raised.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import envvars
from repro.core.config import CoreConfig
from repro.core.stats import SimResult

#: bump when the on-disk record layout changes incompatibly.
SCHEMA_VERSION = 2

#: everything a truncated or version-skewed pickle can raise on load:
#: I/O errors, short reads, bad opcodes/containers, and stale references
#: to renamed classes/modules.  Anything outside this set is a real bug
#: and must propagate.
CORRUPTION_ERRORS = (OSError, EOFError, ValueError, TypeError, KeyError,
                     IndexError, AttributeError, ImportError,
                     pickle.UnpicklingError, MemoryError)

#: packages whose source defines simulated behaviour (salt inputs).
_SALT_PACKAGES = ("core", "memory", "frontend", "rename", "trace", "isa")

_salt: Optional[str] = None


def simulator_salt() -> str:
    """Digest of the simulator's source files (computed once per process).

    Any change to the packages that define timing behaviour produces new
    digests, so stale results from an older simulator are never served.
    """
    global _salt
    if _salt is None:
        import repro
        root = Path(repro.__file__).parent
        h = hashlib.sha256()
        for pkg in _SALT_PACKAGES:
            for f in sorted((root / pkg).glob("*.py")):
                h.update(f.name.encode())
                h.update(f.read_bytes())
        _salt = h.hexdigest()[:16]
    return _salt


#: :class:`CoreConfig` fields that select an execution *mode* rather
#: than simulated behaviour — results are bit-identical whichever way
#: they are set, so they must never differentiate digests.  ``repro
#: check``'s DIG501 rule enforces that digest-scope code only reaches
#: config values through :func:`digest_config_dict`, which strips these.
MODE_FLAG_FIELDS: Tuple[str, ...] = ("sanitize",)


def digest_config_dict(config: CoreConfig) -> Dict[str, object]:
    """The digest view of a configuration: every field value,
    recursively, minus the :data:`MODE_FLAG_FIELDS`.

    This is the one sanctioned ``asdict`` call site in digest scope —
    a bare ``asdict(config)`` in a digest function would leak mode
    flags into the content address (and DIG501 flags it).
    """
    values = asdict(config)
    for field in MODE_FLAG_FIELDS:
        values.pop(field, None)
    return values


def point_digest(config: CoreConfig, benchmarks: Tuple[str, ...],
                 length: int, seed: int, stop: str) -> str:
    """Stable content digest of one simulation point.

    Built from the *values* of every behaviour-defining configuration
    field (recursively, including the cache hierarchy), so two
    structurally-equal configs digest identically across processes and
    interpreter runs.  Mode flags are excluded: a sanitized run must be
    a store hit for an unsanitized one and vice versa.
    """
    payload = json.dumps({
        "schema": SCHEMA_VERSION,
        "salt": simulator_salt(),
        "config": digest_config_dict(config),
        "benchmarks": list(benchmarks),
        "length": length,
        "seed": seed,
        "stop": stop,
    }, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultStore:
    """Content-addressed on-disk result store with hit/miss accounting."""

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.errors = 0    #: corrupt entries discarded on load
        self.evictions = 0  #: entries removed by :meth:`clear`

    def _path(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[SimResult]:
        """Load a result, or ``None`` on miss.  Corrupt entries are
        deleted and counted as misses."""
        path = self._path(digest)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except CORRUPTION_ERRORS:
            # Truncated write, version skew, bad pickle: drop the entry.
            # Occurrences are counted (``disk_errors`` in cache_stats()).
            self.errors += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(result, SimResult):
            self.errors += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, digest: str, result: SimResult) -> None:
        """Atomically persist a result (concurrent writers are safe: the
        temp-file + rename sequence never exposes a partial entry)."""
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every stored entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for f in self.directory.glob("*/*.pkl"):
                try:
                    f.unlink()
                    removed += 1
                except OSError:
                    pass
        self.evictions += removed
        return removed

    def entries(self) -> List[Tuple[Path, int, float]]:
        """Every stored entry as ``(path, size_bytes, mtime)``, sorted by
        path for determinism.  Entries that vanish mid-scan (a concurrent
        ``gc`` or ``clear``) are skipped."""
        out: List[Tuple[Path, int, float]] = []
        if not self.directory.is_dir():
            return out
        for f in sorted(self.directory.glob("*/*.pkl")):
            try:
                st = f.stat()
            except OSError:
                continue
            out.append((f, st.st_size, st.st_mtime))
        return out

    def disk_stats(self) -> Dict[str, int]:
        """On-disk footprint: ``{"entries": n, "bytes": total}``."""
        entries = self.entries()
        return {"entries": len(entries),
                "bytes": sum(size for _, size, _ in entries)}

    def gc(self, max_bytes: int) -> Tuple[int, int]:
        """Evict least-recently-written entries until the store holds at
        most *max_bytes*.

        Returns ``(removed, freed_bytes)``.  Eviction order is oldest
        mtime first (ties broken by path), so hot recent results survive.
        """
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        removed = freed = 0
        for path, size, _ in sorted(entries, key=lambda e: (e[2], str(e[0]))):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
        self.evictions += removed
        return removed, freed

    @property
    def stats(self) -> Dict[str, int]:
        return {"disk_hits": self.hits, "disk_misses": self.misses,
                "disk_errors": self.errors, "disk_evictions": self.evictions}


# -- process-wide store handle ----------------------------------------------

_store: Optional[ResultStore] = None
_store_resolved = False


def store_dir() -> Optional[Path]:
    """Resolve the store directory from the environment (None = disabled)."""
    env = envvars.raw("REPRO_CACHE_DIR")
    if env is not None:
        if env.strip().lower() in envvars.OFF_VALUES:
            return None
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-sim"


def get_store() -> Optional[ResultStore]:
    """The process-wide store handle, or ``None`` when caching is off."""
    global _store, _store_resolved
    if not _store_resolved:
        directory = store_dir()
        _store = ResultStore(directory) if directory is not None else None
        _store_resolved = True
    return _store


def reset_store() -> None:
    """Drop the process-wide handle so the next access re-reads the
    environment (tests repoint ``$REPRO_CACHE_DIR`` between runs)."""
    global _store, _store_resolved
    _store = None
    _store_resolved = False
