"""Energy-delay product helpers (paper Figure 13's metric)."""

from __future__ import annotations

from repro.energy.model import EnergyReport


def edp(report: EnergyReport) -> float:
    """Energy-delay product in joule-seconds (lower is better)."""
    return report.energy_j * report.time_s


def edp_improvement(candidate: EnergyReport, baseline: EnergyReport) -> float:
    """Fractional EDP improvement of *candidate* over *baseline*.

    Positive means the candidate is better (the paper reports e.g. the
    64+64 shelf design improving EDP by 10.9% over Base64).
    """
    base = edp(baseline)
    if base <= 0:
        raise ValueError("baseline EDP must be positive")
    return 1.0 - edp(candidate) / base
