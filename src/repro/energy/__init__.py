"""McPAT-style analytic energy, power and area model.

The paper extends McPAT [21] (with the corrections of [22]) to model the
shelf, the extended RAT/free lists, the widened scheduling logic, the
speculation shift registers, and the steering structures, and reports core
power *including L1 caches* (L2 and DRAM excluded).

This module reproduces that accounting analytically: each modelled
structure has a storage kind (RAM / CAM / FIFO / table) whose per-access
energy, leakage and area scale with its entry count and payload width —
the same relative scaling McPAT's circuit models produce, which is what
the paper's relative results (Figure 13, Figure 14, Table II) depend on.
"""

from repro.energy.model import (
    AreaReport,
    EnergyReport,
    StructureSpec,
    area_report,
    core_structures,
    energy_report,
)
from repro.energy.edp import edp, edp_improvement

__all__ = [
    "AreaReport",
    "EnergyReport",
    "StructureSpec",
    "area_report",
    "core_structures",
    "energy_report",
    "edp",
    "edp_improvement",
]
