"""Structure-level energy / leakage / area models.

Each microarchitectural structure is a :class:`StructureSpec` with a
storage *kind* that sets its scaling behaviour:

========  ==========================================================
``ram``   pointer-addressed array (ROB, PRF): access cost grows with
          the square root of entry count (bitline/wordline lengths).
``cam``   fully-associative search (IQ wakeup, LQ/SQ scans): every
          access touches all entries — linear scaling, doubled cell
          area for the match logic.
``fifo``  head/tail-addressed queue (the shelf): access cost nearly
          independent of depth — this asymmetry versus the CAM
          structures is precisely the paper's efficiency argument.
``table`` small direct-indexed tables (RAT, RCT, PLT, predictors).
========  ==========================================================

Absolute numbers are synthetic-but-plausible (pJ / mW / relative area
units at the paper's 2 GHz); the *ratios* between kinds follow McPAT's
circuit models, which is what the reproduced figures measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.config import CoreConfig
from repro.core.stats import SimResult
from repro.isa.instruction import NUM_ARCH_REGS

# -- per-kind coefficients ---------------------------------------------------

#: dynamic energy: pJ per access = COEF * width_bits * scale(entries)
_ENERGY_COEF = {"ram": 0.0016, "cam": 0.0024, "fifo": 0.0015,
                "table": 0.0018}
#: leakage: mW per bit-cell
_LEAK_COEF = {"ram": 0.00014, "cam": 0.00028, "fifo": 0.00014,
              "table": 0.00016, "cache": 0.00008}
#: area: relative units per bit-cell
_AREA_COEF = {"ram": 1.0, "cam": 2.0, "fifo": 0.8, "table": 1.0,
              "cache": 0.25}

#: fixed blocks (front end, decoders, FUs, bypass, misc control): these do
#: not change across the paper's configurations, so they enter totals as
#: constants.  Units match the structure models above.
_FIXED_AREA_UNITS = 238_000.0
_FIXED_LEAK_MW = 180.0
#: pJ per cycle of clock/misc activity independent of instructions.
_FIXED_CYCLE_PJ = 90.0

#: per-event energies for fixed-function activity (pJ).
_FETCH_PJ = 5.0
_DECODE_RENAME_PJ = 6.5
_FU_OP_PJ = 11.0
_BPRED_PJ = 3.0
_L1_ACCESS_PJ = 22.0


def _scale(kind: str, entries: int) -> float:
    if kind == "cam":
        return float(entries)
    if kind == "fifo":
        return max(1.0, math.log2(max(entries, 2)))
    return math.sqrt(max(entries, 1))


@dataclass(frozen=True)
class StructureSpec:
    """One modelled storage structure."""

    name: str
    kind: str       #: 'ram' | 'cam' | 'fifo' | 'table' | 'cache'
    entries: int
    width_bits: int

    @property
    def bits(self) -> int:
        return self.entries * self.width_bits

    def access_pj(self) -> float:
        """Energy of one access (for CAMs: one search/broadcast)."""
        return _ENERGY_COEF[self.kind] * self.width_bits * \
            _scale(self.kind, self.entries)

    def leakage_mw(self) -> float:
        return _LEAK_COEF[self.kind] * self.bits

    def area_units(self) -> float:
        return _AREA_COEF[self.kind] * self.bits


def core_structures(config: CoreConfig) -> Dict[str, StructureSpec]:
    """The paper's modelled structures for *config* (Table I geometry)."""
    c = config
    s: Dict[str, StructureSpec] = {}
    s["rob"] = StructureSpec("rob", "ram", c.rob_entries, 84)
    s["iq"] = StructureSpec("iq", "cam", c.iq_entries, 92)
    s["lq"] = StructureSpec("lq", "cam", c.lq_entries, 64)
    s["sq"] = StructureSpec("sq", "cam", c.sq_entries, 72)
    s["prf"] = StructureSpec("prf", "ram", c.prf_entries, 64)
    s["rat"] = StructureSpec(
        "rat", "table", NUM_ARCH_REGS * c.num_threads,
        2 * max(1, (c.prf_entries + c.ext_tags - 1)).bit_length())
    s["freelists"] = StructureSpec(
        "freelists", "table", c.prf_entries + c.ext_tags,
        max(1, (c.prf_entries + c.ext_tags - 1)).bit_length())
    # Select/wakeup logic area and energy grow with IQ size; modelled as
    # an extra CAM-kind block proportional to the issue queue.
    s["sched_logic"] = StructureSpec("sched_logic", "cam", c.iq_entries, 30)
    if c.shelf_entries:
        s["shelf"] = StructureSpec("shelf", "fifo", c.shelf_entries, 70)
        s["issue_track"] = StructureSpec(
            "issue_track", "table", c.rob_entries, 1)
        s["ssr"] = StructureSpec("ssr", "table", 2 * c.num_threads, 8)
        s["rct"] = StructureSpec(
            "rct", "table", NUM_ARCH_REGS * c.num_threads, c.rct_bits)
        s["plt"] = StructureSpec(
            "plt", "table", NUM_ARCH_REGS * c.num_threads, c.plt_loads)
        # Extra rename multiplexing / priority logic (paper Figure 8).
        s["rename_ext"] = StructureSpec("rename_ext", "table",
                                        4 * c.num_threads, 64)
    s["l1i"] = StructureSpec("l1i", "cache",
                             c.hierarchy.l1i_size // 8, 8 * 8)
    s["l1d"] = StructureSpec("l1d", "cache",
                             c.hierarchy.l1d_size // 8, 8 * 8)
    return s


# ---------------------------------------------------------------------------
# energy accounting
# ---------------------------------------------------------------------------

@dataclass
class EnergyReport:
    """Energy decomposition of one simulation on one configuration."""

    config_label: str
    cycles: int
    clock_ghz: float
    dynamic_pj: Dict[str, float] = field(default_factory=dict)
    leakage_pj: float = 0.0

    @property
    def dynamic_total_pj(self) -> float:
        return sum(self.dynamic_pj.values())

    @property
    def total_pj(self) -> float:
        return self.dynamic_total_pj + self.leakage_pj

    @property
    def time_s(self) -> float:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def power_w(self) -> float:
        return self.total_pj * 1e-12 / self.time_s if self.time_s else 0.0

    @property
    def energy_j(self) -> float:
        return self.total_pj * 1e-12

    def summary(self) -> str:
        top = sorted(self.dynamic_pj.items(), key=lambda kv: -kv[1])[:8]
        lines = [f"{self.config_label}: {self.power_w:.2f} W over "
                 f"{self.time_s * 1e6:.1f} us "
                 f"(leakage {self.leakage_pj / self.total_pj:.0%})"]
        for name, pj in top:
            lines.append(f"  {name:<12} {pj / self.total_pj:6.1%}")
        return "\n".join(lines)


def energy_report(config: CoreConfig, result: SimResult) -> EnergyReport:
    """Price a simulation's event counts against the structure models."""
    s = core_structures(config)
    ev = result.events
    dyn: Dict[str, float] = {}

    def add(name: str, pj: float) -> None:
        dyn[name] = dyn.get(name, 0.0) + pj

    add("rob", (ev.rob_writes + ev.rob_retires) * s["rob"].access_pj())
    add("iq", ev.iq_writes * s["iq"].access_pj()
        + ev.iq_wakeups * s["iq"].access_pj()          # tag broadcast search
        + ev.iq_issues * 0.5 * s["iq"].access_pj())    # payload read
    add("sched_logic", (ev.iq_issues + ev.shelf_issues)
        * s["sched_logic"].access_pj())
    add("prf", (ev.prf_reads + ev.prf_writes) * s["prf"].access_pj())
    add("lq", ev.lq_writes * 0.5 * s["lq"].access_pj()
        + ev.lq_searches * s["lq"].access_pj())
    add("sq", ev.sq_writes * 0.5 * s["sq"].access_pj()
        + ev.sq_searches * s["sq"].access_pj())
    add("rat", (ev.renames_iq + ev.renames_shelf) * 4
        * s["rat"].access_pj())
    add("freelists", (ev.renames_iq + ev.renames_shelf)
        * s["freelists"].access_pj())
    if "shelf" in s:
        add("shelf", (ev.shelf_writes + ev.shelf_issues)
            * s["shelf"].access_pj())
        add("steering", (ev.renames_iq + ev.renames_shelf)
            * (s["rct"].access_pj() + s["plt"].access_pj()
               + s["rename_ext"].access_pj()))
        add("ssr", ev.shelf_issues * s["ssr"].access_pj())
    add("frontend", ev.fetches * (_FETCH_PJ + _DECODE_RENAME_PJ))
    add("bpred", ev.bpred_lookups * _BPRED_PJ)
    add("fu", ev.fu_ops * _FU_OP_PJ)
    l1i = result.cache_stats["l1i"]
    l1d = result.cache_stats["l1d"]
    l1_accesses = (l1i["hits"] + l1i["misses"]
                   + l1d["hits"] + l1d["misses"])
    add("l1", l1_accesses * _L1_ACCESS_PJ)
    add("clock_misc", result.cycles * _FIXED_CYCLE_PJ)

    leak_mw = _FIXED_LEAK_MW + sum(sp.leakage_mw() for sp in s.values())
    time_s = result.cycles / (config.clock_ghz * 1e9)
    leakage_pj = leak_mw * 1e-3 * time_s * 1e12

    return EnergyReport(config_label=config.label(), cycles=result.cycles,
                        clock_ghz=config.clock_ghz, dynamic_pj=dyn,
                        leakage_pj=leakage_pj)


# ---------------------------------------------------------------------------
# area accounting
# ---------------------------------------------------------------------------

@dataclass
class AreaReport:
    """Area decomposition of one configuration (relative units)."""

    config_label: str
    structures: Dict[str, float]
    fixed: float = _FIXED_AREA_UNITS

    @property
    def l1_area(self) -> float:
        return self.structures.get("l1i", 0.0) + \
            self.structures.get("l1d", 0.0)

    def total(self, include_l1: bool = True) -> float:
        core = self.fixed + sum(v for k, v in self.structures.items()
                                if k not in ("l1i", "l1d"))
        return core + (self.l1_area if include_l1 else 0.0)

    def increase_over(self, base: "AreaReport",
                      include_l1: bool = True) -> float:
        """Fractional area increase vs. *base* (the Table II statistic)."""
        return self.total(include_l1) / base.total(include_l1) - 1.0


def area_report(config: CoreConfig) -> AreaReport:
    """Static area of *config*'s core (no simulation required)."""
    s = core_structures(config)
    return AreaReport(config_label=config.label(),
                      structures={k: sp.area_units()
                                  for k, sp in s.items()})
