"""Single registry of every ``REPRO_*`` environment variable.

Each knob the simulator reads from the environment is declared here
once — name, default, parser kind, digest safety, and documentation —
and every reader goes through :func:`raw` / :func:`enabled` instead of
touching ``os.environ`` directly.  ``repro check``'s DIG502 rule flags
any ``os.environ["REPRO_..."]`` read that bypasses this module, so the
table below is guaranteed complete.

Digest safety: none of these variables may influence simulation
*results*; they select execution modes (lane engine, fast-forward,
sanitizer), deployment knobs (job count, cache location), or test-only
fault injection.  The ``digest_safe=False`` marking is what DIG501
enforces — a digest-scope function in :mod:`repro.harness.cache` must
never read one of these.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Values (case-insensitive, stripped) that turn a ``kind="flag"``
#: variable off.  Anything else — including the bare empty string for a
#: *set* variable — counts as "on" for default-off flags; default-on
#: flags are only disabled by an explicit member of this set.
OFF_VALUES = frozenset({"", "0", "off", "false", "no", "none", "disabled"})


@dataclass(frozen=True)
class EnvVar:
    """One declared environment knob."""

    name: str
    #: value assumed when the variable is unset (None = genuinely unset).
    default: Optional[str]
    #: "flag" (on/off via :data:`OFF_VALUES`), "int", "choice", "path".
    kind: str
    doc: str
    #: may this variable's value influence result-store digests?
    #: Always False today: every knob is a mode/deployment flag.
    digest_safe: bool = False


REGISTRY: Dict[str, EnvVar] = {var.name: var for var in (
    EnvVar(
        "REPRO_JOBS", None, "int",
        "Worker processes for simulation fan-out (harness executor and "
        "`repro experiments`).  Unset/empty = serial; 0 or negative = "
        "all cores.  Overridden by an explicit jobs= argument or the "
        "CLI's --jobs."),
    EnvVar(
        "REPRO_SCALE", "default", "choice",
        "Experiment run scale: smoke | default | full (see "
        "repro.harness.runner.SCALES).  Overridden by --scale."),
    EnvVar(
        "REPRO_CACHE_DIR", None, "path",
        "Persistent result-store location.  Unset = "
        "$XDG_CACHE_HOME/repro-sim; a path = that directory; any of "
        "off/0/none/empty = caching disabled."),
    EnvVar(
        "REPRO_SANITIZE", "0", "flag",
        "Enable the microarchitectural invariant sanitizer "
        "(repro.core.sanitizer); default off.  CoreConfig(sanitize=True) "
        "enables it regardless."),
    EnvVar(
        "REPRO_FASTFORWARD", "1", "flag",
        "Event-driven fast-forward for the cycle loop (default on).  "
        "0 selects the per-cycle polling loop, the reference "
        "implementation fast-forward must stay bit-identical to."),
    EnvVar(
        "REPRO_LANES", "1", "flag",
        "Flat-lane (structure-of-arrays) engine for the cycle loop "
        "(default on).  0 selects the per-object reference pipeline; "
        "results are bit-identical either way."),
    EnvVar(
        "REPRO_GANG", "1", "flag",
        "Gang simulation: advance compatible campaign points (same "
        "trace signature, differing configs) through one interpreter "
        "loop with shared decoded traces (default on).  0 runs every "
        "point solo.  A mode flag like REPRO_LANES: results are "
        "bit-identical either way and the value never enters digests."),
    EnvVar(
        "REPRO_GANG_SIZE", "16", "int",
        "Maximum members per simulation gang (default 16).  Larger "
        "gangs amortize trace decode further but hold more member "
        "state live at once; 1 effectively disables gang formation.  "
        "Never part of result digests."),
    EnvVar(
        "REPRO_WAREHOUSE_DB", None, "path",
        "Result-warehouse index location (a sqlite file).  Unset = "
        "<store dir>/warehouse.sqlite3 next to the content-addressed "
        "blobs; a path = that file; any of off/0/none/empty = the "
        "warehouse is disabled entirely (no ingest, no queries)."),
    EnvVar(
        "REPRO_WAREHOUSE_INGEST", "1", "flag",
        "Live warehouse ingest on ResultStore.put (default on): every "
        "stored result is indexed the moment it is written.  0 turns "
        "the ingest hook off — `repro warehouse rebuild` can always "
        "reconstruct the index from the blobs later.  Never affects "
        "record blobs or digests."),
    EnvVar(
        "REPRO_SERVICE_CRASH_ONCE", None, "path",
        "Test-only fault injection for the simulation service: a file "
        "path.  When the file exists, the next worker batch deletes it "
        "and kills its own process with os._exit(3), exercising the "
        "BrokenProcessPool retry path end to end.  Never set this in "
        "production."),
    EnvVar(
        "REPRO_FLEET_DIR", None, "path",
        "Root of the fleet's digest-prefix-sharded result store.  When "
        "set, get_store() returns a repro.fleet.ShardedStore over "
        "<dir>/shard-NN instead of a flat ResultStore: blobs live on "
        "exactly one shard (routed by digest prefix), warehouse index "
        "rows are replicated to every shard.  A deployment knob like "
        "REPRO_CACHE_DIR — never part of result digests."),
    EnvVar(
        "REPRO_FLEET_SHARDS", "4", "int",
        "Number of digest-prefix shards under REPRO_FLEET_DIR "
        "(default 4).  Must be consistent across every node mounting "
        "the same fleet dir; routing is digest-prefix modulo this "
        "count.  Never part of result digests."),
    EnvVar(
        "REPRO_FLEET_NODE", None, "str",
        "Worker-node name override for `repro worker` (default: "
        "host-pid derived).  A pure label for registration, leases, "
        "and /fleet/nodes — never part of result digests."),
    EnvVar(
        "REPRO_FLEET_HEARTBEAT_S", "2", "float",
        "Fleet heartbeat interval in seconds (default 2).  Workers "
        "POST /fleet/heartbeat this often; the coordinator declares a "
        "node dead after 3 missed intervals and re-queues its in-"
        "flight jobs.  Never part of result digests."),
    EnvVar(
        "REPRO_FLEET_LEASE_S", "60", "float",
        "Per-point lease budget in seconds (default 60).  A leased "
        "batch whose worker neither completes nor heartbeats within "
        "points * lease_s is revoked and re-queued exactly once.  "
        "Never part of result digests."),
    EnvVar(
        "REPRO_FLEET_CRASH_ONCE", None, "path",
        "Test-only fault injection for fleet workers: a file path.  "
        "When the file exists, the next leased batch deletes it and "
        "kills the worker process with os._exit(3) mid-batch, "
        "exercising lease expiry and exactly-once re-queue end to "
        "end.  Never set this in production."),
)}


def lookup(name: str) -> EnvVar:
    """The declaration for *name*; raises ``KeyError`` for unregistered
    variables so typos fail loudly instead of reading garbage."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"{name!r} is not a registered REPRO_* variable; declare it "
            f"in repro.envvars.REGISTRY first") from None


def raw(name: str) -> Optional[str]:
    """The variable's raw string value: the environment when set, else
    the registered default (which may be None)."""
    var = lookup(name)
    value = os.environ.get(name)
    return value if value is not None else var.default


def enabled(name: str) -> bool:
    """Resolve a ``kind="flag"`` variable to on/off via
    :data:`OFF_VALUES`."""
    var = lookup(name)
    if var.kind != "flag":
        raise ValueError(f"{name} is kind={var.kind!r}, not a flag")
    value = os.environ.get(name)
    if value is None:
        value = var.default or ""
    return value.strip().lower() not in OFF_VALUES


def names() -> Tuple[str, ...]:
    """Every registered variable name, sorted (for docs and tooling)."""
    return tuple(sorted(REGISTRY))
