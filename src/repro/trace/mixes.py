"""Balanced Random SMT workload mixes.

The paper generates mixes of the 28 SPEC benchmarks "such that each
benchmark appears an equal number of times in each workload, according to
the 'Balanced Random' mix methodology proposed by Velasquez et al." — i.e.
a set of random mixes balanced so every benchmark has equal total
representation.  With 28 mixes of 4 threads (112 slots), each of the 28
benchmarks appears exactly 4 times.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.trace.workloads import BENCHMARK_NAMES


def balanced_random_mixes(num_mixes: int = 28, threads_per_mix: int = 4,
                          benchmarks: Sequence[str] = BENCHMARK_NAMES,
                          seed: int = 2016) -> List[Tuple[str, ...]]:
    """Build *num_mixes* mixes of *threads_per_mix* benchmarks each.

    Every benchmark appears the same number of times across all mixes
    (requires ``num_mixes * threads_per_mix`` to be a multiple of
    ``len(benchmarks)``).  A mix never contains the same benchmark twice,
    so each of its threads runs distinct code.

    Returns a list of benchmark-name tuples, deterministic in *seed*.
    """
    slots = num_mixes * threads_per_mix
    n = len(benchmarks)
    if slots % n != 0:
        raise ValueError(
            f"{num_mixes} mixes x {threads_per_mix} threads = {slots} slots "
            f"is not a multiple of {n} benchmarks; balance impossible")
    copies = slots // n
    rng = random.Random(seed)

    # Rejection-sample permuted copy lists until every mix is duplicate-free.
    for _attempt in range(10_000):
        pool = [b for b in benchmarks for _ in range(copies)]
        rng.shuffle(pool)
        mixes = [tuple(pool[i * threads_per_mix:(i + 1) * threads_per_mix])
                 for i in range(num_mixes)]
        if all(len(set(m)) == threads_per_mix for m in mixes):
            return mixes
    raise RuntimeError("could not build duplicate-free balanced mixes")


def mix_name(mix: Sequence[str]) -> str:
    """Short display name for a mix (e.g. for axis labels, as in Fig. 11)."""
    return "+".join(b.split(".")[0][:4] + "." + b.split(".")[1][:4]
                    if "." in b else b[:8] for b in mix)
