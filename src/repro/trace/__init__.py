"""Dynamic-instruction traces and synthetic SPEC-like workloads.

The paper drives gem5 with SPEC CPU2006 SimPoints.  Without those inputs,
this package provides 28 deterministic synthetic benchmark generators that
span the behaviours the paper's evaluation depends on — serialized
pointer-chasing, streaming MLP, high-ILP compute, branchy control flow and
blends — plus the "Balanced Random" SMT mix methodology used in the paper
(each benchmark appears an equal number of times across mixes).
"""

from repro.trace.trace import Trace, TraceCursor
from repro.trace.workloads import (
    BENCHMARK_NAMES,
    WorkloadSpec,
    benchmark_spec,
    generate,
)
from repro.trace.mixes import balanced_random_mixes, mix_name

__all__ = [
    "Trace",
    "TraceCursor",
    "BENCHMARK_NAMES",
    "WorkloadSpec",
    "benchmark_spec",
    "generate",
    "balanced_random_mixes",
    "mix_name",
]
