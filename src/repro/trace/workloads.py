"""Synthetic benchmark generators standing in for SPEC CPU2006.

The paper's evaluation runs 28 SPEC benchmarks (all but dealII).  We cannot
redistribute SPEC, so this module provides 28 deterministic generators in
seven behaviour families, chosen to span the axes the shelf results depend
on:

``pchase``    serialized pointer chasing — latency-bound, long RAW chains,
              variants sized to hit in L1, L2 or memory.
``stream``    STREAM-style kernels — independent iterations, high MLP,
              memory-bandwidth bound.
``ilp``       wide independent ALU/FP chains — compute bound, reordering
              helps a lot (few in-sequence instructions single-threaded).
``serial``    single long dependence chains — almost fully in-sequence even
              single-threaded (in-order friendly).
``branchy``   control-dominated code with tunable predictability.
``mixed``     blends approximating typical integer/FP applications.
``gather``    irregular indexed accesses — partially cache-missing loads.

Each generator produces a *dynamic* trace: a loop body with fixed PCs is
instanced repeatedly with concrete addresses and branch outcomes, so the
branch predictor and caches see realistic, repeating code.  Everything is
seeded and reproducible.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.trace.trace import Trace

_WORD = 8  # bytes per data element
_KB = 1024
_MB = 1024 * _KB


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one synthetic benchmark."""

    name: str
    family: str
    footprint: int  #: bytes of data touched (drives cache behaviour)
    description: str


class _Body:
    """Builds one loop iteration with stable PCs across iterations.

    The first iteration records the static slot layout; later iterations
    re-emit the same PCs with fresh dynamic values (addresses, outcomes).
    """

    def __init__(self, base_pc: int) -> None:
        self.base_pc = base_pc
        self.instrs: List[Instruction] = []
        self._slot = 0

    def _pc(self) -> int:
        pc = self.base_pc + 4 * self._slot
        self._slot += 1
        return pc

    def _next_pc(self, pc: int) -> int:
        return pc + 4

    def alu(self, dest: int, srcs: Tuple[int, ...],
            op: OpClass = OpClass.INT_ALU) -> None:
        pc = self._pc()
        self.instrs.append(Instruction(op=op, dest=dest, srcs=srcs, pc=pc,
                                       next_pc=self._next_pc(pc)))

    def load(self, dest: int, addr: int, addr_reg: int) -> None:
        pc = self._pc()
        self.instrs.append(Instruction(op=OpClass.LOAD, dest=dest,
                                       srcs=(addr_reg,), pc=pc,
                                       next_pc=self._next_pc(pc),
                                       mem_addr=addr, mem_size=_WORD))

    def store(self, addr: int, addr_reg: int, data_reg: int) -> None:
        pc = self._pc()
        self.instrs.append(Instruction(op=OpClass.STORE, dest=None,
                                       srcs=(addr_reg, data_reg), pc=pc,
                                       next_pc=self._next_pc(pc),
                                       mem_addr=addr, mem_size=_WORD))

    def branch(self, taken: bool, target: int, src: int) -> None:
        pc = self._pc()
        nxt = target if taken else self._next_pc(pc)
        self.instrs.append(Instruction(op=OpClass.BRANCH, dest=None,
                                       srcs=(src,), pc=pc, next_pc=nxt,
                                       taken=taken))


# A body-emitting function: (body, rng, iteration, state) -> None.
_BodyFn = Callable[[_Body, random.Random, int, dict], None]


def _chase_order(rng: random.Random, n_elems: int) -> List[int]:
    """A single-cycle random permutation for pointer chasing."""
    order = list(range(n_elems))
    rng.shuffle(order)
    return order


# ---------------------------------------------------------------------------
# Family: pchase — serialized pointer chasing
# ---------------------------------------------------------------------------

def _make_pchase(footprint: int, chains: int, alu_pad: int,
                 side_work: int = 0) -> _BodyFn:
    """Pointer chase; *side_work* adds an independent streaming access +
    compute per iteration (reorderable past the stalled chase, as real
    pointer-chasing codes carry surrounding work)."""
    n_elems = max(footprint // _WORD, 16)
    side_elems = max(8 * _KB // _WORD, 16)

    def body(b: _Body, rng: random.Random, it: int, st: dict) -> None:
        if "order" not in st:
            st["order"] = _chase_order(rng, n_elems)
            st["pos"] = [c * (n_elems // max(chains, 1)) for c in range(chains)]
        order = st["order"]
        for c in range(chains):
            ptr_reg = 1 + c  # r1..rC carry the chase pointers
            pos = st["pos"][c]
            addr = pos * _WORD
            st["pos"][c] = order[pos]
            b.load(ptr_reg, addr, ptr_reg)  # serialized: addr depends on load
            for k in range(alu_pad):
                # pad ALU work dependent on the loaded value
                b.alu(8 + (c * alu_pad + k) % 8, (ptr_reg,))
            for k in range(side_work):
                # independent side stream: L1-resident load + compute
                side_addr = 0x400000 + ((it * side_work + k) % side_elems) \
                    * _WORD
                dest = 16 + k % 8
                b.load(dest, side_addr, 6)
                b.alu(24 + k % 4, (dest, 24 + k % 4),
                      op=OpClass.INT_MUL if k % 2 else OpClass.INT_ALU)
        b.branch(True, b.base_pc, 1)

    return body


# ---------------------------------------------------------------------------
# Family: stream — independent streaming kernels
# ---------------------------------------------------------------------------

def _make_stream(footprint: int, loads: int, stores: int, fp_ops: int) -> _BodyFn:
    n_elems = max(footprint // _WORD, 64)

    def body(b: _Body, rng: random.Random, it: int, st: dict) -> None:
        idx = (it * 4) % n_elems  # unrolled by 4 elements per iteration
        for u in range(4):
            elem = (idx + u) % n_elems
            vals = []
            for l in range(loads):
                dest = 8 + (u * loads + l) % 8
                # distinct arrays laid out back to back
                addr = (l * n_elems + elem) * _WORD
                b.load(dest, addr, 1)
                vals.append(dest)
            for f in range(fp_ops):
                src = tuple(vals[:2]) if len(vals) >= 2 else (vals[0],) if vals else (1,)
                b.alu(16 + (u * fp_ops + f) % 8, src, op=OpClass.FP_ADD)
                vals.append(16 + (u * fp_ops + f) % 8)
            for s in range(stores):
                addr = ((loads + s) * n_elems + elem) * _WORD
                b.store(addr, 1, vals[-1] if vals else 1)
        b.alu(1, (1,))  # index increment
        b.branch(True, b.base_pc, 1)

    return body


# ---------------------------------------------------------------------------
# Family: ilp — wide independent compute chains
# ---------------------------------------------------------------------------

def _make_ilp(chains: int, ops: Tuple[OpClass, ...], chain_len: int,
              loads_every: int = 0) -> _BodyFn:
    """Independent compute chains with *heterogeneous* latencies.

    Chain *c* uses ``ops[c % len(ops)]``; mixing 1-cycle and multi-cycle
    classes means fast chains run ahead of stalled elder ones, producing
    the reordered instructions real ILP-rich codes exhibit.  Optional
    L1-resident loads feed each chain every *loads_every* steps.
    """
    foot_elems = max(8 * _KB // _WORD, 16)

    def body(b: _Body, rng: random.Random, it: int, st: dict) -> None:
        for step in range(chain_len):
            for c in range(chains):
                reg = 4 + c % 24
                op = ops[c % len(ops)]
                if loads_every and (step + c) % loads_every == 0:
                    addr = ((it * chain_len + step + c * 97) % foot_elems) \
                        * _WORD + c * 8 * _KB
                    b.load(reg, addr, 2)
                    b.alu(reg, (reg,), op=op)
                else:
                    b.alu(reg, (reg,), op=op)
        b.alu(1, (1,))
        b.branch(True, b.base_pc, 1)

    return body


# ---------------------------------------------------------------------------
# Family: serial — one long dependence chain
# ---------------------------------------------------------------------------

def _make_serial(op: OpClass, chain_len: int, mem_every: int = 0,
                 footprint: int = 16 * _KB, side_every: int = 0) -> _BodyFn:
    """A single long dependence chain; *side_every* interleaves an
    independent 1-cycle op every N chain steps (work that reorders past
    the stalled chain in an OOO core)."""
    n_elems = max(footprint // _WORD, 16)

    def body(b: _Body, rng: random.Random, it: int, st: dict) -> None:
        if mem_every and "order" not in st:
            st["order"] = _chase_order(rng, n_elems)
            st["pos"] = 0
        for step in range(chain_len):
            if mem_every and step % mem_every == mem_every - 1:
                pos = st["pos"]
                st["pos"] = st["order"][pos]
                b.load(2, pos * _WORD, 2)
                b.alu(2, (2,), op=op)
            else:
                b.alu(2, (2,), op=op)
            if side_every and step % side_every == side_every - 1:
                side = 10 + step % 4
                b.alu(side, (side, 8))
        b.alu(1, (1,))
        b.branch(True, b.base_pc, 1)

    return body


# ---------------------------------------------------------------------------
# Family: branchy — control-dominated code
# ---------------------------------------------------------------------------

def _make_branchy(taken_prob: float, inner_branches: int,
                  work_per_branch: int) -> _BodyFn:
    """Control-dominated code: per-block work mixes an L1-resident load
    and multi-cycle ops (branchy integer codes test loaded values), so
    blocks behind a slow compare reorder."""
    table_elems = max(48 * _KB // _WORD, 16)

    def body(b: _Body, rng: random.Random, it: int, st: dict) -> None:
        for k in range(inner_branches):
            cond = 4 + k % 12
            addr = ((it * inner_branches + k) * 7 % table_elems) * _WORD
            b.load(cond, addr, 2)           # value under test
            for w in range(work_per_branch):
                reg = 4 + (k * work_per_branch + w + 1) % 12
                op = OpClass.INT_MUL if (k + w) % 3 == 0 else OpClass.INT_ALU
                b.alu(reg, (reg, cond), op=op)
            taken = rng.random() < taken_prob
            # forward branch over a notional block (dynamic stream linear)
            b.branch(taken, b.base_pc + 4 * (b._slot + 2), cond)
        b.alu(2, (2,))
        b.branch(True, b.base_pc, 1)

    return body


# ---------------------------------------------------------------------------
# Family: mixed — blended application-like kernels
# ---------------------------------------------------------------------------

def _make_mixed(footprint: int, mem_ratio: float, store_ratio: float,
                branch_every: int, taken_prob: float,
                fp: bool = False) -> _BodyFn:
    n_elems = max(footprint // _WORD, 64)
    alu_op = OpClass.FP_ADD if fp else OpClass.INT_ALU
    body_ops = 24

    def body(b: _Body, rng: random.Random, it: int, st: dict) -> None:
        for k in range(body_ops):
            r = rng.random()
            if r < mem_ratio * store_ratio:
                addr = rng.randrange(n_elems) * _WORD
                b.store(addr, 1, 4 + k % 12)
            elif r < mem_ratio:
                addr = rng.randrange(n_elems) * _WORD
                b.load(4 + k % 12, addr, 1)
            else:
                dest = 4 + k % 12
                src2 = 4 + (k + 5) % 12
                b.alu(dest, (dest, src2), op=alu_op)
            if branch_every and k % branch_every == branch_every - 1:
                b.branch(rng.random() < taken_prob,
                         b.base_pc + 4 * (b._slot + 2), 4 + k % 12)
        b.alu(1, (1,))
        b.branch(True, b.base_pc, 1)

    return body


# ---------------------------------------------------------------------------
# Family: gather — irregular indexed accesses
# ---------------------------------------------------------------------------

def _make_gather(footprint: int, rmw: bool, stride: int = 0,
                 loads_per_iter: int = 6) -> _BodyFn:
    n_elems = max(footprint // _WORD, 64)

    def body(b: _Body, rng: random.Random, it: int, st: dict) -> None:
        for k in range(loads_per_iter):
            if stride:
                elem = (it * loads_per_iter + k) * stride % n_elems
            else:
                elem = rng.randrange(n_elems)
            addr = elem * _WORD
            dest = 8 + k % 8
            b.load(dest, addr, 2)
            b.alu(dest, (dest, 3))
            if rmw:
                b.store(addr, 2, dest)
        b.alu(2, (2,))
        b.branch(True, b.base_pc, 1)

    return body


# ---------------------------------------------------------------------------
# The 28-benchmark roster
# ---------------------------------------------------------------------------

_SPECS: Dict[str, Tuple[WorkloadSpec, _BodyFn]] = {}


def _register(name: str, family: str, footprint: int, description: str,
              fn: _BodyFn) -> None:
    _SPECS[name] = (WorkloadSpec(name, family, footprint, description), fn)


_register("pchase.l1", "pchase", 16 * _KB,
          "pointer chase resident in L1D, with independent side work",
          _make_pchase(16 * _KB, 1, 2, side_work=2))
_register("pchase.l2", "pchase", 256 * _KB,
          "pointer chase resident in L2, with independent side work",
          _make_pchase(256 * _KB, 1, 2, side_work=2))
_register("pchase.mem", "pchase", 8 * _MB,
          "pointer chase missing to memory", _make_pchase(8 * _MB, 1, 2))
_register("pchase.wide", "pchase", 8 * _MB,
          "four independent memory pointer chases (MLP)",
          _make_pchase(8 * _MB, 4, 1))

_register("stream.copy", "stream", 8 * _MB,
          "copy kernel: 1 load + 1 store per element",
          _make_stream(8 * _MB, 1, 1, 0))
_register("stream.add", "stream", 8 * _MB,
          "add kernel: 2 loads + fp add + 1 store",
          _make_stream(8 * _MB, 2, 1, 1))
_register("stream.triad", "stream", 8 * _MB,
          "triad kernel: 2 loads + 2 fp ops + 1 store",
          _make_stream(8 * _MB, 2, 1, 2))
_register("stream.l2", "stream", 512 * _KB,
          "streaming over an L2-resident working set",
          _make_stream(512 * _KB, 2, 1, 1))

_register("ilp.int4", "ilp", 32 * _KB,
          "4 independent integer chains, mixed latency, L1 loads",
          _make_ilp(4, (OpClass.INT_ALU, OpClass.INT_MUL), 6,
                    loads_every=3))
_register("ilp.int8", "ilp", 0,
          "8 independent integer chains, mixed latency",
          _make_ilp(8, (OpClass.INT_ALU, OpClass.INT_ALU, OpClass.INT_MUL),
                    4))
_register("ilp.fp4", "ilp", 32 * _KB,
          "4 independent FP chains with L1 loads",
          _make_ilp(4, (OpClass.FP_ADD, OpClass.FP_MUL), 6, loads_every=3))
_register("ilp.mul", "ilp", 0,
          "multiply chains interleaved with add chains",
          _make_ilp(4, (OpClass.INT_MUL, OpClass.INT_ALU), 4))

_register("serial.alu", "serial", 0, "single integer ALU dependence chain",
          _make_serial(OpClass.INT_ALU, 24))
_register("serial.mul", "serial", 0,
          "multiply dependence chain with sparse side ops",
          _make_serial(OpClass.INT_MUL, 12, side_every=3))
_register("serial.div", "serial", 0,
          "FP-divide chain with independent side ops",
          _make_serial(OpClass.FP_DIV, 6, side_every=1))
_register("serial.memdep", "serial", 16 * _KB,
          "L1-resident loads feeding the chain, sparse side ops",
          _make_serial(OpClass.INT_ALU, 20, mem_every=5, side_every=4))

_register("branchy.easy", "branchy", 0, "94%-biased branches",
          _make_branchy(0.94, 4, 3))
_register("branchy.hard", "branchy", 0, "70%-biased branches",
          _make_branchy(0.70, 4, 3))
_register("branchy.dense", "branchy", 0, "one branch per 2 ops, 85% bias",
          _make_branchy(0.85, 8, 2))
_register("branchy.flip", "branchy", 0, "55%-biased (near-random) branches",
          _make_branchy(0.55, 3, 4))

_register("mixed.int", "mixed", 96 * _KB,
          "integer blend: 30% memory (L2-resident), branch per 6 ops",
          _make_mixed(96 * _KB, 0.30, 0.25, 6, 0.85))
_register("mixed.fp", "mixed", 256 * _KB,
          "FP blend: 25% memory (L2-resident), sparse branches",
          _make_mixed(256 * _KB, 0.25, 0.2, 12, 0.9, fp=True))
_register("mixed.ptr", "mixed", 256 * _KB,
          "pointer-heavy blend: 40% memory, L2-resident",
          _make_mixed(256 * _KB, 0.40, 0.2, 8, 0.85))
_register("mixed.store", "mixed", 128 * _KB,
          "store-heavy blend: 35% memory, half stores",
          _make_mixed(128 * _KB, 0.35, 0.5, 8, 0.85))

_register("gather.small", "gather", 24 * _KB,
          "random loads over an L1-sized table", _make_gather(24 * _KB, False))
_register("gather.large", "gather", 4 * _MB,
          "random loads over a 4MB table", _make_gather(4 * _MB, False))
_register("gather.rmw", "gather", 256 * _KB,
          "random read-modify-write over 256KB",
          _make_gather(256 * _KB, True))
_register("gather.stride", "gather", 8 * _MB,
          "large-stride loads (one per line)",
          _make_gather(8 * _MB, False, stride=16))

#: The 28 benchmark names, in roster order (paper: 28 of 29 SPEC CPU2006).
BENCHMARK_NAMES: Tuple[str, ...] = tuple(_SPECS)

assert len(BENCHMARK_NAMES) == 28, "roster must hold exactly 28 benchmarks"


def benchmark_spec(name: str) -> WorkloadSpec:
    """Return the :class:`WorkloadSpec` for benchmark *name*."""
    try:
        return _SPECS[name][0]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"choose from {', '.join(BENCHMARK_NAMES)}") from None


@lru_cache(maxsize=256)
def generate(name: str, length: int, seed: int = 0) -> Trace:
    """Generate benchmark *name* as a trace of exactly *length* instructions.

    Generation is deterministic in ``(name, length, seed)`` and cached, so
    repeated experiment runs share trace objects.
    """
    if length <= 0:
        raise ValueError("trace length must be positive")
    spec, fn = _SPECS[name]
    # zlib.crc32 is stable across processes (str hash is randomized).
    rng = random.Random((zlib.crc32(name.encode()) & 0xFFFF) * 31 + seed)
    state: dict = {}
    instrs: List[Instruction] = []
    base_pc = 0x1000
    it = 0
    while len(instrs) < length:
        body = _Body(base_pc)
        fn(body, rng, it, state)
        instrs.extend(body.instrs)
        it += 1
    return Trace(name, instrs[:length])
