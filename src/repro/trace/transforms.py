"""Trace transformations: build new workloads from existing traces.

Utilities for composing evaluation scenarios without writing generators:
slicing phases out of a trace, repeating a region (loop amplification),
concatenating kernels into phase-change workloads, and relocating a
trace's data so multiple copies of one benchmark don't constructively
share the caches.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

from repro.isa.instruction import Instruction
from repro.trace.trace import Trace


def slice_trace(trace: Trace, start: int, length: int,
                name: str = "") -> Trace:
    """A window of *trace*: instructions ``[start, start + length)``."""
    if start < 0 or start + length > len(trace):
        raise ValueError(f"slice [{start}, {start + length}) outside "
                         f"trace of {len(trace)}")
    return Trace(name or f"{trace.name}[{start}:{start + length}]",
                 trace.instructions[start:start + length])


def repeat_trace(trace: Trace, times: int, name: str = "") -> Trace:
    """The trace replayed *times* times back to back."""
    if times < 1:
        raise ValueError("times must be >= 1")
    instrs: List[Instruction] = []
    for _ in range(times):
        instrs.extend(trace.instructions)
    return Trace(name or f"{trace.name}x{times}", instrs)


def concat_traces(traces: Sequence[Trace], name: str = "") -> Trace:
    """Phase-change workload: the traces executed one after another."""
    if not traces:
        raise ValueError("need at least one trace")
    instrs: List[Instruction] = []
    for t in traces:
        instrs.extend(t.instructions)
    return Trace(name or "+".join(t.name for t in traces), instrs)


def relocate_data(trace: Trace, offset: int, name: str = "") -> Trace:
    """Shift every data address by *offset* bytes (cache-conflict-free
    copies of one benchmark for homogeneous SMT mixes)."""
    if offset < 0:
        raise ValueError("offset must be non-negative")
    instrs = [replace(ins, mem_addr=ins.mem_addr + offset)
              if ins.mem_addr is not None else ins
              for ins in trace.instructions]
    return Trace(name or f"{trace.name}@+{offset:#x}", instrs)


def relocate_code(trace: Trace, offset: int, name: str = "") -> Trace:
    """Shift every PC by *offset* bytes (distinct predictor/I-cache
    footprints for homogeneous mixes)."""
    if offset < 0 or offset % 4:
        raise ValueError("offset must be non-negative and 4-aligned")
    instrs = []
    for ins in trace.instructions:
        instrs.append(replace(ins, pc=ins.pc + offset,
                              next_pc=ins.next_pc + offset))
    return Trace(name or f"{trace.name}@pc+{offset:#x}", instrs)


def homogeneous_mix(trace: Trace, copies: int,
                    stride: int = 1 << 24) -> List[Trace]:
    """*copies* cache- and predictor-independent clones of one trace, for
    homogeneous SMT experiments (thread *i*'s data and code live *i* x
    *stride* bytes away)."""
    if copies < 1:
        raise ValueError("copies must be >= 1")
    return [relocate_code(relocate_data(trace, i * stride), i * stride,
                          name=f"{trace.name}#{i}")
            for i in range(copies)]
