"""Trace container and replay cursor.

A :class:`Trace` is an immutable sequence of :class:`~repro.isa.Instruction`
records (a resolved dynamic instruction stream).  A :class:`TraceCursor`
replays one, with rewind support so the pipeline can squash-and-replay after
memory-order violations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.isa.instruction import Instruction


class Trace:
    """An immutable dynamic instruction stream with a name."""

    __slots__ = ("name", "_instrs")

    def __init__(self, name: str, instrs: Iterable[Instruction]) -> None:
        self.name = name
        self._instrs: List[Instruction] = list(instrs)

    def __len__(self) -> int:
        return len(self._instrs)

    def __getitem__(self, idx: int) -> Instruction:
        return self._instrs[idx]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instrs)

    @property
    def instructions(self) -> Sequence[Instruction]:
        return self._instrs

    def stats(self) -> dict:
        """Static composition of the trace (op-class fractions)."""
        total = len(self._instrs) or 1
        counts: dict = {}
        for ins in self._instrs:
            counts[ins.op.name] = counts.get(ins.op.name, 0) + 1
        return {op: n / total for op, n in sorted(counts.items())}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Trace({self.name!r}, {len(self)} instrs)"


class TraceCursor:
    """Replay position within a :class:`Trace`.

    ``peek``/``advance`` feed the fetch stage; ``rewind`` supports replay
    after a squash (the pipeline re-fetches from the squashed instruction's
    per-thread sequence number).
    """

    __slots__ = ("trace", "pos")

    def __init__(self, trace: Trace, pos: int = 0) -> None:
        self.trace = trace
        self.pos = pos

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.trace)

    def peek(self) -> Optional[Instruction]:
        """Next instruction to fetch, or ``None`` at end of trace."""
        if self.exhausted:
            return None
        return self.trace[self.pos]

    def advance(self) -> Instruction:
        """Consume and return the next instruction."""
        ins = self.trace[self.pos]
        self.pos += 1
        return ins

    def rewind(self, seq: int) -> None:
        """Reset replay position to per-thread sequence number *seq*."""
        if not 0 <= seq <= len(self.trace):
            raise ValueError(f"rewind target {seq} outside trace")
        self.pos = seq
