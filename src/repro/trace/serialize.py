"""Trace serialization: save and reload dynamic instruction streams.

Traces are stored as gzipped JSON-lines — one header record followed by
one record per instruction — so generated workloads can be archived,
diffed, and exchanged without re-running the generators.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Union

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.trace.trace import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write *trace* to *path* (gzipped JSON lines)."""
    path = Path(path)
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        fh.write(json.dumps({"format": _FORMAT_VERSION, "name": trace.name,
                             "length": len(trace)}) + "\n")
        for ins in trace:
            rec = {"op": ins.op.name, "pc": ins.pc, "next_pc": ins.next_pc}
            if ins.dest is not None:
                rec["dest"] = ins.dest
            if ins.srcs:
                rec["srcs"] = list(ins.srcs)
            if ins.mem_addr is not None:
                rec["addr"] = ins.mem_addr
                rec["size"] = ins.mem_size
            if ins.taken is not None:
                rec["taken"] = ins.taken
            fh.write(json.dumps(rec) + "\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if header.get("format") != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format "
                             f"{header.get('format')!r} in {path}")
        instrs = []
        for line in fh:
            rec = json.loads(line)
            instrs.append(Instruction(
                op=OpClass[rec["op"]],
                dest=rec.get("dest"),
                srcs=tuple(rec.get("srcs", ())),
                pc=rec["pc"],
                next_pc=rec["next_pc"],
                mem_addr=rec.get("addr"),
                mem_size=rec.get("size", 4),
                taken=rec.get("taken"),
            ))
    if len(instrs) != header["length"]:
        raise ValueError(f"truncated trace: header says {header['length']} "
                         f"instructions, file holds {len(instrs)}")
    return Trace(header["name"], instrs)
