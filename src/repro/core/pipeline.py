"""The cycle-level SMT out-of-order pipeline with the hybrid shelf/IQ window.

Trace-driven timing model.  Stage processing order within one cycle is
writeback -> shelf-retire -> ROB-retire -> issue -> dispatch -> fetch ->
per-cycle ticks, so same-cycle producer/consumer interactions resolve in
dataflow order and instructions dispatched in cycle *c* are issue
candidates from *c+1* on.

Control speculation is modelled by fetch gating: a branch the predictor
gets wrong stops its thread's fetch until the branch resolves (wrong-path
instructions are not simulated, as usual for trace-driven models).  Memory
order violations *are* modelled with a true squash-and-replay — rename
walk-back, structure rollback, trace-cursor rewind — because they exercise
the paper's shelf squash-index and retire-pointer machinery.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import CoreConfig
from repro.core.dynamic import DynInstr, slot_or_none
from repro.core.horizon import EventHorizon, fastforward_enabled
from repro.core.lanes import LaneEngine, lanes_enabled
from repro.core.stats import EventCounts, SimResult, ThreadResult
from repro.core.sanitizer import Sanitizer, sanitize_enabled
from repro.core.scoreboard import Scoreboard
from repro.core.steering import SteeringPolicy, make_steering
from repro.core.store_sets import StoreSets
from repro.core.thread_context import ThreadContext
from repro.frontend.branch_predictor import BranchPredictor, make_predictor
from repro.frontend.fetch import make_fetch_policy
from repro.isa.instruction import NUM_ARCH_REGS
from repro.isa.opcodes import DEFAULT_LATENCIES, OpClass, default_fu_pool
from repro.memory.hierarchy import MemoryHierarchy
from repro.rename.freelist import FreeList
from repro.rename.rat import RegisterAliasTable
from repro.trace.trace import Trace


class DeadlockError(RuntimeError):
    """The pipeline made no forward progress for an implausible interval —
    always an invariant bug, never a legitimate outcome."""


class Pipeline:
    """One SMT core executing one trace per hardware thread."""

    #: cycles without any retirement before declaring deadlock.
    DEADLOCK_WINDOW = 50_000

    def __init__(self, config: CoreConfig, traces: Sequence[Trace],
                 steering: Optional[SteeringPolicy] = None,
                 record_schedule: bool = False,
                 fastforward: Optional[bool] = None,
                 lanes: Optional[bool] = None) -> None:
        if len(traces) != config.num_threads:
            raise ValueError(f"{config.num_threads} threads need "
                             f"{config.num_threads} traces, got {len(traces)}")
        self.config = config
        #: structure-of-arrays hot loop (default on; $REPRO_LANES=0 or
        #: lanes=False selects the per-object reference pipeline, exactly
        #: as $REPRO_FASTFORWARD does for the event-driven loop).  Results
        #: are bit-identical either way — see docs/performance.md.
        self.lanes = lanes_enabled() if lanes is None else lanes
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.predictor = make_predictor(config.branch_predictor,
                                        config.num_threads)
        self.fetch_policy = make_fetch_policy(config.fetch_policy,
                                              config.num_threads)
        self.steering = steering if steering is not None \
            else make_steering(config, self.hierarchy, lanes=self.lanes)

        self.phys_fl = FreeList(
            range(NUM_ARCH_REGS * config.num_threads, config.prf_entries),
            name="phys")
        self.ext_fl = FreeList(
            range(config.prf_entries, config.prf_entries + config.ext_tags),
            name="ext")
        self.rat = RegisterAliasTable(config.num_threads, self.phys_fl,
                                      self.ext_fl)
        self.scoreboard = Scoreboard(config.prf_entries + config.ext_tags)
        for tid in range(config.num_threads):
            for arch in range(NUM_ARCH_REGS):
                self.scoreboard.mark_initial(tid * NUM_ARCH_REGS + arch)

        self.threads = [ThreadContext(tid, traces[tid], config)
                        for tid in range(config.num_threads)]
        self.iq: List[DynInstr] = []           #: shared issue queue
        self.fu = default_fu_pool()
        self.store_sets = StoreSets(config.store_set_bits)

        self.cycle = 0
        self._gseq = 0
        self._dispatch_rr = 0
        self._retire_rr = 0
        self._completions: List[Tuple[int, int, DynInstr]] = []  # heap

        self.events = EventCounts()
        # Per-cycle occupancy accumulators (plain ints: the _tick hot path
        # and fast-forward batch updates both touch them every cycle).
        self._occ_iq = 0
        self._occ_rob = 0
        self._occ_shelf = 0
        self._occ_lq = 0
        self._occ_sq = 0
        self._last_retire_cycle = 0
        #: last cycle any instruction was fetched, dispatched, or issued —
        #: the deadlock detector's forward-progress signal alongside
        #: retirement (all three only change on simulated, never on
        #: fast-forwarded, cycles, so the two loop modes agree).
        self._last_activity_cycle = 0
        self._total_retired = 0
        #: optional (cycle, tid, seq, to_shelf) issue log for tests/analysis.
        self.record_schedule = record_schedule
        self.issue_log: List[Tuple[int, int, int, bool]] = []
        #: optional per-retired-instruction lifetime records (see
        #: :mod:`repro.analysis.pipetrace`), only with record_schedule.
        self.instr_log: List[dict] = []

        #: opt-in invariant checker (config.sanitize or $REPRO_SANITIZE);
        #: observational only — sanitized runs stay bit-identical.
        self.sanitizer: Optional[Sanitizer] = \
            Sanitizer(self) if sanitize_enabled(config) else None

        #: event-driven fast-forward (default on; $REPRO_FASTFORWARD=0 or
        #: fastforward=False selects the per-cycle polling reference loop).
        #: Results are bit-identical either way — see docs/performance.md.
        self.fastforward = fastforward_enabled() if fastforward is None \
            else fastforward
        self._horizon = EventHorizon(self)
        #: wakeup-list scheduling (fast mode): min-heap of (ready_cycle,
        #: gseq, dyn) for IQ entries whose sources all have scheduled
        #: writebacks, and the due subset issue actually scans.
        self._ready_heap: List[Tuple[int, int, DynInstr]] = []
        self._ready_iq: List[DynInstr] = []
        #: fast-forward introspection (not part of SimResult).
        self.ff_jumps = 0
        self.ff_skipped_cycles = 0

        #: sliced-run state (see :meth:`start_run`): stop condition,
        #: cycle limit, remaining warm-up target, total trace length.
        self._run_stop: str = "first"
        self._run_limit: int = 0
        self._run_warm: int = 0
        self._run_total: int = 0

        #: flat-lane engine: mirrors per-instruction hot state into
        #: parallel int arrays and runs an inlined cycle step over them.
        #: Built last so it can snapshot every structure above.
        self._lane_engine: Optional[LaneEngine] = \
            LaneEngine(self) if self.lanes else None

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run(self, stop: str = "first", max_cycles: Optional[int] = None,
            warmup_instructions: int = 0) -> SimResult:
        """Simulate until the stop condition; return a :class:`SimResult`.

        Args:
            stop: ``"first"`` ends the run when the first thread retires
                its whole trace (the standard multiprogram methodology —
                contention stays constant); ``"all"`` runs every thread to
                completion (used for single-thread reference runs).
            max_cycles: hard safety bound (default: 400 cycles/instruction).
            warmup_instructions: once every thread has retired this many
                instructions, statistics (event counts, cache/predictor
                counters, per-thread CPI baselines) reset while all
                microarchitectural state stays warm — the paper warms
                structures before its measurement region the same way.
        """
        self.start_run(stop, max_cycles, warmup_instructions)
        self.advance()
        return self.finish_run()

    def start_run(self, stop: str = "first",
                  max_cycles: Optional[int] = None,
                  warmup_instructions: int = 0) -> None:
        """Validate and record run parameters without simulating.

        The sliced-run API — ``start_run`` / :meth:`advance` /
        :meth:`finish_run` — is :meth:`run` split into resumable pieces
        so a gang engine can interleave bounded slices of several
        pipelines through one driver loop.  ``run`` itself is exactly
        ``start_run(); advance(); finish_run()``, so the two surfaces
        can never drift.
        """
        if stop not in ("first", "all"):
            raise ValueError("stop must be 'first' or 'all'")
        total_instrs = sum(len(t.trace) for t in self.threads)
        limit = max_cycles if max_cycles is not None else 400 * total_instrs
        warm = warmup_instructions
        if warm and warm >= min(len(t.trace) for t in self.threads):
            raise ValueError("warmup must be shorter than the traces")
        self._run_stop = stop
        self._run_limit = limit
        self._run_warm = warm
        self._run_total = total_instrs

    def advance(self, until: Optional[int] = None) -> bool:
        """Simulate toward the stop condition; ``True`` once reached.

        With ``until`` set, returns ``False`` as soon as
        ``self.cycle >= until`` — a bounded slice; call again to resume
        the identical run (a fast-forward jump may overshoot the bound,
        which only makes the slice end later).  Raises
        :class:`DeadlockError` exactly as :meth:`run` would.
        """
        stop = self._run_stop
        limit = self._run_limit
        warm = self._run_warm
        total_instrs = self._run_total
        if self._lane_engine is not None:
            # The lane engine owns the cycle loop: same stop conditions,
            # warm-up resets, fast-forward jumps, and deadlock checks,
            # with the stage bodies inlined (see repro.core.lanes).
            done = self._lane_engine.run_loop(stop == "first", limit,
                                              warm, total_instrs,
                                              until=until or 0)
            if warm and all(t.retired >= warm for t in self.threads):
                # run_loop already reset statistics when every thread
                # crossed the warm-up mark (its warm check runs before
                # any bounded-slice return); never reset twice.
                self._run_warm = 0
            return done
        while self.cycle < limit:
            if stop == "first" and \
                    any(t.finished for t in self.threads):
                return True
            if all(t.finished for t in self.threads):
                return True
            if until is not None and self.cycle >= until:
                return False
            if not self.fastforward or not self._try_fast_forward(limit):
                self.step()
            if warm and all(t.retired >= warm for t in self.threads):
                self._reset_statistics()
                warm = self._run_warm = 0
            if self.cycle - self._progress_cycle() > \
                    self.DEADLOCK_WINDOW \
                    and not self._progress_scheduled():
                raise DeadlockError(self._deadlock_report())
        raise DeadlockError(f"max_cycles={limit} exceeded "
                            f"({self._total_retired}/"
                            f"{total_instrs} retired)")

    def finish_run(self) -> SimResult:
        """Post-run drain check and result construction (the tail of
        :meth:`run`); call once :meth:`advance` has returned ``True``."""
        if self.sanitizer is not None and \
                all(t.finished for t in self.threads):
            self.sanitizer.check_drain(self.cycle)
        return self._result(self._run_stop)

    def _reset_statistics(self) -> None:
        """End of warm-up: zero counters, keep all architectural state."""
        self.events = EventCounts()
        self._occ_iq = self._occ_rob = self._occ_shelf = 0
        self._occ_lq = self._occ_sq = 0
        for cache in (self.hierarchy.l1i, self.hierarchy.l1d,
                      self.hierarchy.l2):
            cache.stats.reset()
        self.predictor.lookups = 0
        self.predictor.direction_mispredicts = 0
        self.predictor.target_mispredicts = 0
        for t in self.threads:
            t.lsq.lq_search_events = 0
            t.lsq.sq_search_events = 0
            t.lsq.store_buffer.coalesced = 0
            t.measure_start_cycle = self.cycle
            t.measure_start_retired = t.retired

    def _progress_cycle(self) -> int:
        """Last cycle the pipeline demonstrably moved forward: a
        retirement, or failing that any fetch/dispatch/issue activity
        (a healthy run's longest quiet stretch is bounded by its longest
        memory stall, during which :meth:`_progress_scheduled` covers the
        in-flight writeback)."""
        if self._last_activity_cycle > self._last_retire_cycle:
            return self._last_activity_cycle
        return self._last_retire_cycle

    def _progress_scheduled(self) -> bool:
        """Is any event pending that could still lead to retirement?

        Distinguishes a *stalled-by-design* quiet stretch from a true
        deadlock by looking only at **time-driven** events — ones that
        fire by themselves: an outstanding writeback, an I-miss fill the
        front end is waiting out, or fetched instructions still crossing
        the fetch-to-dispatch pipe.  A legitimate long-latency stall —
        e.g. a DRAM access slower than ``DEADLOCK_WINDOW`` — always keeps
        one such event scheduled, so the detector no longer trips on it;
        a real deadlock only has instructions waiting on conditions that
        never arrive, and still raises.  Events at exactly ``self.cycle``
        count as pending: that cycle has not been simulated yet.
        """
        if self._completions:
            return True
        cycle = self.cycle
        for t in self.threads:
            if not t.trace_done and t.fetch_blocked_until >= cycle:
                return True
            for dyn in t.frontend:
                if dyn.frontend_ready >= cycle:
                    return True
        return False

    def _try_fast_forward(self, limit: int) -> bool:
        """Jump to the next event horizon; False when this cycle is live.

        The jump is clamped to the run's cycle limit and, until the first
        retirement-window checkpoint is reached, to that checkpoint — so
        the deadlock detector evaluates at exactly the cycle the reference
        loop would first raise on.
        """
        cycle = self.cycle
        target = self._horizon.next_event(cycle)
        if target <= cycle:
            return False
        if target > limit:
            target = limit
        checkpoint = self._progress_cycle() + self.DEADLOCK_WINDOW + 1
        if checkpoint > cycle and target > checkpoint:
            target = checkpoint
        if target <= cycle:
            return False
        self._fast_forward(target)
        return True

    def _fast_forward(self, target: int) -> None:
        """Advance to *target* in one jump, batch-applying the per-cycle
        work of the skipped cycles.

        Every skipped cycle is one the horizon proved inactive: no stage
        could fetch, dispatch, issue, write back, or retire, and every
        store buffer was empty — so the reference loop would only have run
        the end-of-cycle ticks.  Those are applied here in closed form:
        SSR and steering countdowns saturate toward zero, the round-robin
        pointers rotate once per cycle, and the occupancy accumulators
        grow linearly at the (frozen) current occupancies.
        """
        cycle = self.cycle
        count = target - cycle
        for thread in self.threads:
            thread.ssr.tick_many(count)
        self.steering.tick_many(cycle, count)
        n = self.config.num_threads
        self._dispatch_rr = (self._dispatch_rr + count) % n
        self._retire_rr = (self._retire_rr + count) % n
        self._occ_iq += count * len(self.iq)
        for thread in self.threads:
            self._occ_rob += count * len(thread.rob)
            self._occ_shelf += count * thread.shelf.occupancy
            self._occ_lq += count * thread.lsq.lq_occupancy
            self._occ_sq += count * thread.lsq.sq_occupancy
        self.ff_jumps += 1
        self.ff_skipped_cycles += count
        self.cycle = target

    def step(self) -> None:
        """Advance the pipeline by one cycle."""
        if self._lane_engine is not None:
            self._lane_engine.step()
            return
        cycle = self.cycle
        for t in self.threads:
            t.head_snapshot = t.issue_tracker.snapshot_head()
        self._writeback(cycle)
        self._shelf_retire_scan(cycle)
        self._retire(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        self._fetch(cycle)
        self._tick(cycle)
        if self.sanitizer is not None:
            self.sanitizer.check_cycle(cycle)
        self.cycle = cycle + 1

    # ------------------------------------------------------------------
    # writeback / completion
    # ------------------------------------------------------------------

    def _writeback(self, cycle: int) -> None:
        heap = self._completions
        while heap and heap[0][0] <= cycle:
            _, _, dyn = heapq.heappop(heap)
            if dyn.squashed:
                continue
            dyn.completed = True
            self.steering.on_complete(dyn, cycle)
            thread = self.threads[dyn.tid]
            if dyn.dest_tag is not None:
                self.events.prf_writes += 1
                # Every completing producer broadcasts its tag into the IQ
                # CAM — shelf instructions included (their extension tag is
                # exactly what lets IQ consumers wake on them, paper III-C).
                self.events.iq_wakeups += 1
            if dyn.is_store:
                dyn.executed = True
                self.store_sets.store_executed(dyn)
                victim = thread.lsq.violation_load(dyn)
                if victim is not None:
                    self.store_sets.train_violation(victim, dyn)
                    self.events.violations += 1
                    self._squash_thread(thread, victim.seq, cycle)
                    assert not dyn.squashed, \
                        "violating store squashed by its own victim"
            if dyn.is_branch and dyn.mispredicted:
                if thread.pending_branch is dyn:
                    thread.pending_branch = None
                    if cycle + 1 > thread.fetch_blocked_until:
                        thread.fetch_blocked_until = cycle + 1
            if dyn.to_shelf:
                self._try_shelf_retire(thread, dyn, cycle)

    def _shelf_wb_held(self, thread: ThreadContext, dyn: DynInstr) -> bool:
        """Shelf writeback hold: an elder instruction can still squash.

        Relaxed model: elder un-executed stores (memory-order violations).
        TSO additionally keeps everything speculative until all elder
        loads have completed (paper Section III-D).
        """
        if thread.lsq.has_unexecuted_elder_store(dyn.gseq):
            return True
        if self.config.memory_model == "tso" and \
                thread.lsq.has_incomplete_elder_load(dyn.gseq):
            return True
        return False

    def _try_shelf_retire(self, thread: ThreadContext, dyn: DynInstr,
                          cycle: int) -> bool:
        """Shelf writeback-commit: allowed only when no elder instruction
        can still squash *dyn* (realizing the SSR's guarantee exactly)."""
        if self._shelf_wb_held(thread, dyn):
            if dyn not in thread.shelf_wb_pending:
                thread.shelf_wb_pending.append(dyn)
            return False
        if dyn.is_store:
            if not thread.lsq.store_buffer.can_accept(dyn.instr.mem_addr):
                if dyn not in thread.shelf_wb_pending:
                    thread.shelf_wb_pending.append(dyn)
                return False
            thread.lsq.complete_shelf_store(dyn)
            self.events.storebuf_inserts += 1
        thread.shelf.mark_retired(dyn.shelf_idx)
        self.rat.retire(dyn.tid, dyn.rename)
        dyn.retired = True
        dyn.retire_cycle = cycle
        thread.in_flight.remove(dyn)
        self._count_retire(thread, cycle, dyn)
        return True

    def _shelf_retire_scan(self, cycle: int) -> None:
        for thread in self.threads:
            if not thread.shelf_wb_pending:
                continue
            still = []
            for dyn in thread.shelf_wb_pending:
                if dyn.squashed:
                    continue
                if self._shelf_wb_held(thread, dyn) or (
                        dyn.is_store and not thread.lsq.store_buffer
                        .can_accept(dyn.instr.mem_addr)):
                    still.append(dyn)
                else:
                    if dyn.is_store:
                        thread.lsq.complete_shelf_store(dyn)
                        self.events.storebuf_inserts += 1
                    thread.shelf.mark_retired(dyn.shelf_idx)
                    self.rat.retire(dyn.tid, dyn.rename)
                    dyn.retired = True
                    dyn.retire_cycle = cycle
                    thread.in_flight.remove(dyn)
                    self._count_retire(thread, cycle, dyn)
            thread.shelf_wb_pending = still

    def _count_retire(self, thread: ThreadContext, cycle: int,
                      dyn: Optional[DynInstr] = None) -> None:
        thread.retired += 1
        self._total_retired += 1
        self._last_retire_cycle = cycle
        if thread.retired >= len(thread.trace) and thread.finish_cycle is None:
            thread.finish_cycle = cycle
        if self.record_schedule and dyn is not None:
            self.instr_log.append({
                "tid": dyn.tid, "seq": dyn.seq, "op": dyn.op.name,
                "to_shelf": dyn.to_shelf,
                "dispatch": dyn.dispatch_cycle, "issue": dyn.issue_cycle,
                "complete": dyn.complete_cycle, "retire": cycle,
                "forwarded_seq": slot_or_none(dyn, "forwarded_seq"),
            })

    # ------------------------------------------------------------------
    # ROB retirement
    # ------------------------------------------------------------------

    def _retire(self, cycle: int) -> None:
        budget = self.config.retire_width
        n = self.config.num_threads
        for off in range(n):
            thread = self.threads[(self._retire_rr + off) % n]
            while budget and thread.rob:
                head = thread.rob[0]
                if not head.completed:
                    break
                # ROB instructions may not retire before older shelf
                # instructions (paper III-B): the stored shelf squash index
                # doubles as the retire gate.
                if not thread.shelf.all_retired_through(head.shelf_squash_idx):
                    break
                if head.is_store and not thread.lsq.store_buffer.can_accept(
                        head.instr.mem_addr):
                    break
                thread.rob.popleft()
                if head.is_load:
                    thread.lsq.retire_load(head)
                elif head.is_store:
                    thread.lsq.retire_store(head)
                    self.events.storebuf_inserts += 1
                self.rat.retire(head.tid, head.rename)
                head.retired = True
                head.retire_cycle = cycle
                thread.in_flight.remove(head)
                self.events.rob_retires += 1
                self._count_retire(thread, cycle, head)
                budget -= 1
        self._retire_rr = (self._retire_rr + 1) % n

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------

    def _issue(self, cycle: int) -> None:
        width = self.config.issue_width
        fast = self.fastforward
        if fast:
            self._pop_due_ready(cycle)
        while width:
            # Fast mode scans only the wakeup-driven ready set; the
            # reference mode re-scans the whole IQ.  Both produce the same
            # candidate set: an IQ entry passes _iq_ready only once all
            # sources are ready, and by then its producers' issues have
            # pushed it through the ready heap into _ready_iq.
            pool = self._ready_iq if fast else self.iq
            candidates = [d for d in pool if self._iq_ready(d, cycle)]
            for thread in self.threads:
                head = thread.shelf.head
                if head is not None and \
                        self._shelf_eligible(thread, head, cycle):
                    candidates.append(head)
            if not candidates:
                break
            candidates.sort(key=lambda d: d.gseq)
            progressed = False
            for dyn in candidates:
                if not width:
                    break
                if not self.fu.available(dyn.op, cycle):
                    continue
                if self._do_issue(dyn, cycle):
                    width -= 1
                    progressed = True
            if not progressed:
                break

    def _register_wakeup(self, dyn: DynInstr) -> None:
        """IQ dispatch (fast mode): subscribe to unready source tags.

        Each source occurrence whose producer has no scheduled writeback
        adds one waiter registration; the last producer's issue pushes the
        entry onto the ready heap keyed by its operands-ready cycle.  An
        entry with no such sources is scheduled immediately.
        """
        sb = self.scoreboard
        waits = 0
        for tag in dyn.src_tags:
            if sb.is_unwritten(tag):
                sb.add_waiter(tag, dyn)
                waits += 1
        dyn.wake_waits = waits
        if not waits:
            heapq.heappush(self._ready_heap,
                           (sb.earliest_issue(dyn.src_tags), dyn.gseq, dyn))

    def _wake_waiters(self, tag: int) -> None:
        """A producer scheduled its writeback: release *tag*'s waiters."""
        sb = self.scoreboard
        for dyn in sb.take_waiters(tag):
            if dyn.squashed or dyn.issued:
                continue
            dyn.wake_waits -= 1
            if not dyn.wake_waits:
                heapq.heappush(
                    self._ready_heap,
                    (sb.earliest_issue(dyn.src_tags), dyn.gseq, dyn))

    def _pop_due_ready(self, cycle: int) -> None:
        """Migrate heap entries whose ready cycle has arrived into the
        scan set (squashed/issued entries are dropped lazily)."""
        heap = self._ready_heap
        ready = self._ready_iq
        while heap and heap[0][0] <= cycle:
            _, _, dyn = heapq.heappop(heap)
            if not dyn.squashed and not dyn.issued:
                ready.append(dyn)

    def _iq_ready(self, dyn: DynInstr, cycle: int) -> bool:
        if not self.scoreboard.all_ready(dyn.src_tags, cycle):
            return False
        if dyn.is_load:
            if cycle < dyn.retry_after:
                return False  # structural replay backoff (MSHRs were full)
            # Store-set dependence captured at dispatch (program order);
            # the load waits until that store produces address+data.
            w = dyn.waiting_store
            if w is not None and not (w.executed or w.squashed):
                return False
        return True

    def _shelf_eligible(self, thread: ThreadContext, dyn: DynInstr,
                        cycle: int) -> bool:
        # In-order gate: all IQ instructions of the run must have issued.
        # Conservative mode uses the start-of-cycle issue-tracker head (no
        # same-cycle issue across the wakeup-select critical path); the
        # optimistic mode sees intra-cycle updates (paper Section III-A).
        head_val = thread.issue_tracker.head \
            if self.config.shelf_same_cycle_issue else thread.head_snapshot
        if head_val <= dyn.last_iq_rob_idx:
            return False
        # Run boundary: snapshot the IQ SSR into the shelf SSR the first
        # time the run's first shelf instruction becomes eligible.
        if dyn.first_in_run and not dyn.ssr_copied:
            thread.ssr.copy_to_shelf()
            dyn.ssr_copied = True
            if self.sanitizer is not None:
                self.sanitizer.check_ssr_merge(thread, cycle)
        if not self.scoreboard.all_ready(dyn.src_tags, cycle):
            return False
        # WAW: the previous writer of the destination must have delivered.
        if dyn.prev_tag is not None and \
                not self.scoreboard.is_ready(dyn.prev_tag, cycle):
            return False
        if not thread.ssr.shelf_may_issue(dyn.latency):
            return False
        if dyn.is_load:
            if cycle < dyn.retry_after:
                return False
            if thread.lsq.has_unexecuted_elder_store(dyn.gseq):
                return False
        if dyn.is_store and not thread.lsq.store_buffer.can_accept(
                dyn.instr.mem_addr):
            return False
        return True

    def _do_issue(self, dyn: DynInstr, cycle: int) -> bool:
        thread = self.threads[dyn.tid]
        latency = dyn.latency
        if dyn.is_load:
            mem_lat = self._load_latency(thread, dyn, cycle)
            if mem_lat is None:
                # L1D MSHRs full: the scheduler replays the load after a
                # short backoff rather than hammering every cycle.
                dyn.retry_after = cycle + 4
                return False
            latency = max(latency, mem_lat)
        elif dyn.is_store:
            latency = 1  # address+data generation

        self.fu.acquire(dyn.op, cycle, latency)
        self.events.fu_ops += 1
        self.events.prf_reads += len(dyn.src_tags)

        # Classification before the order tracker advances.  Paper Section
        # II: an instruction is *reordered* if it issues before its data
        # (incl. false WAW/WAR), speculation, or structural ordering
        # dependences resolve.  In-sequence therefore requires: (a) it is
        # the oldest unissued instruction of its thread (program-order
        # issue — WAR and structural resolve with it); (b) the previous
        # writer of its destination has delivered (a scoreboarded INO core
        # stalls for WAW; renaming is what lets this instruction go); and
        # (c) its writeback lands after all elder speculation resolves
        # (the result-shift-register condition).
        complete = cycle + latency
        in_order = thread.order_tracker.head == dyn.order_idx
        waw_ok = dyn.prev_tag is None or \
            self.scoreboard.is_ready(dyn.prev_tag, cycle)
        spec_ok = complete >= thread.elder_spec_resolution(dyn.order_idx,
                                                           cycle)
        thread.insequence_flags[dyn.seq] = \
            1 if (in_order and waw_ok and spec_ok) else 0

        dyn.issued = True
        dyn.issue_cycle = cycle
        self._last_activity_cycle = cycle
        dyn.complete_cycle = complete
        thread.icount -= 1
        thread.order_tracker.mark_issued(dyn.order_idx)
        if dyn.to_shelf:
            if self.sanitizer is not None:
                self.sanitizer.note_shelf_issue(thread, dyn, cycle)
            popped = thread.shelf.pop_issued()
            assert popped is dyn, "shelf issued out of FIFO order"
            self.events.shelf_issues += 1
        else:
            thread.issue_tracker.mark_issued(dyn.rob_idx)
            self.iq.remove(dyn)
            if self.fastforward:
                self._ready_iq.remove(dyn)
            self.events.iq_issues += 1

        if dyn.dest_tag is not None:
            self.scoreboard.set_ready(dyn.dest_tag, complete)
            if self.fastforward:
                self._wake_waiters(dyn.dest_tag)

        # Speculation accounting for the SSRs and the classifier.
        resolution = 0
        if dyn.is_branch:
            resolution = latency
        elif dyn.is_load and not dyn.to_shelf and (
                thread.lsq.has_unexecuted_elder_store(dyn.gseq)
                or (self.config.memory_model == "tso"
                    and thread.lsq.has_incomplete_elder_load(dyn.gseq))):
            dyn.speculative_load = True
            self.events.speculative_loads += 1
            resolution = self.config.spec_mem_bound
        if resolution:
            if dyn.to_shelf:
                thread.ssr.record_shelf_speculation(resolution)
            else:
                thread.ssr.record_iq_speculation(resolution)
            thread.spec_inflight.append((dyn.order_idx, cycle + resolution))

        heapq.heappush(self._completions, (complete, dyn.gseq, dyn))
        self.steering.on_issue(dyn, cycle)
        if self.record_schedule:
            self.issue_log.append((cycle, dyn.tid, dyn.seq, dyn.to_shelf))
        return True

    def _load_latency(self, thread: ThreadContext, dyn: DynInstr,
                      cycle: int) -> Optional[int]:
        """Resolve a load's data source: forwarding, store buffer, or cache."""
        addr = dyn.instr.mem_addr
        fwd = thread.lsq.find_forwarding_store(dyn)
        if fwd is not None:
            dyn.forwarded_from = fwd.gseq
            dyn.forwarded_seq = fwd.seq
            self.events.forwards += 1
            return self.config.hierarchy.l1d_latency
        if dyn.to_shelf:
            # Paper III-D: a shelf load takes its value from the youngest
            # matching *younger* load that issued early, avoiding an
            # ordering violation.
            young = thread.lsq.find_forwarding_load(dyn)
            if young is not None:
                self.events.forwards += 1
                return self.config.hierarchy.l1d_latency
        if thread.lsq.store_buffer.contains(addr):
            self.events.forwards += 1
            return self.config.hierarchy.l1d_latency
        lat = self.hierarchy.access_data(addr, False, cycle)
        if lat is None:
            return None
        dyn.mem_latency = lat
        return lat

    # ------------------------------------------------------------------
    # dispatch (decode + steer + rename + allocate)
    # ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        budget = self.config.dispatch_width
        n = self.config.num_threads
        for off in range(n):
            if not budget:
                break
            thread = self.threads[(self._dispatch_rr + off) % n]
            while budget and thread.frontend and \
                    thread.frontend[0].frontend_ready <= cycle:
                dyn = thread.frontend[0]
                if dyn.op is OpClass.BARRIER and thread.in_flight:
                    break  # barriers synchronize the pipeline at dispatch
                if not self._dispatch_one(thread, dyn, cycle):
                    break
                thread.frontend.popleft()
                budget -= 1
        self._dispatch_rr = (self._dispatch_rr + 1) % n

    def _dispatch_one(self, thread: ThreadContext, dyn: DynInstr,
                      cycle: int) -> bool:
        """Steer and allocate one instruction; False on structural stall."""
        cfg = self.config
        if dyn.steer_cached is None:
            to_shelf = cfg.shelf_entries > 0 and \
                self.steering.decide(dyn.tid, dyn.instr, cycle)
            dyn.steer_cached = to_shelf
        to_shelf = dyn.steer_cached

        if to_shelf and not self._shelf_path_free(thread, dyn):
            # A full shelf/extension list falls back to the IQ (steering is
            # a heuristic; any placement is architecturally correct) —
            # except under shelf-only steering, whose in-order semantics
            # the fallback would silently break.
            if self.steering.name == "shelf-only":
                return False
            if not self._iq_path_free(thread, dyn):
                return False
            to_shelf = False
            self.events.steer_forced_iq += 1
        elif not to_shelf and not self._iq_path_free(thread, dyn):
            return False

        instr = dyn.instr
        if to_shelf:
            rec = self.rat.rename_shelf(dyn.tid, instr.dest, instr.srcs)
            self.events.renames_shelf += 1
            dyn.to_shelf = True
            thread.shelf.allocate(dyn)
            dyn.last_iq_rob_idx = thread.issue_tracker.last_allocated
            dyn.first_in_run = not thread.last_dispatch_was_shelf
            dyn.ssr_copied = False
            thread.last_dispatch_was_shelf = True
            self.events.shelf_writes += 1
            if dyn.is_load:
                thread.lsq.dispatch_shelf_load(dyn)
            elif dyn.is_store:
                if self.config.memory_model == "tso":
                    # TSO: shelf stores need real SQ entries (III-D).
                    thread.lsq.dispatch_store(dyn)
                    self.events.sq_writes += 1
                else:
                    thread.lsq.dispatch_shelf_store(dyn)
                self.store_sets.store_dispatched(dyn)
        else:
            rec = self.rat.rename_iq(dyn.tid, instr.dest, instr.srcs)
            self.events.renames_iq += 1
            dyn.to_shelf = False
            dyn.rob_idx = thread.issue_tracker.allocate()
            dyn.shelf_squash_idx = thread.shelf.tail
            thread.rob.append(dyn)
            self.iq.append(dyn)
            thread.last_dispatch_was_shelf = False
            self.events.iq_writes += 1
            self.events.rob_writes += 1
            if dyn.is_load:
                thread.lsq.dispatch_load(dyn)
                dyn.waiting_store = self.store_sets.load_must_wait_for(dyn)
                self.events.lq_writes += 1
            elif dyn.is_store:
                thread.lsq.dispatch_store(dyn)
                self.events.sq_writes += 1
                self.store_sets.store_dispatched(dyn)

        dyn.rename = rec
        dyn.src_tags = rec.src_tags
        dyn.dest_tag = rec.tag
        dyn.dest_pri = rec.pri
        dyn.prev_tag = rec.prev_tag
        if dyn.dest_tag is not None:
            self.scoreboard.clear(dyn.dest_tag)
        if self.fastforward and not dyn.to_shelf:
            self._register_wakeup(dyn)
        dyn.order_idx = thread.order_tracker.allocate()
        dyn.dispatch_cycle = cycle
        self._last_activity_cycle = cycle
        thread.in_flight.append(dyn)
        if dyn.op is OpClass.BARRIER:
            self.events.barriers += 1
        self.steering.note_dispatched(dyn, cycle)
        return True

    def _shelf_path_free(self, thread: ThreadContext, dyn: DynInstr) -> bool:
        if self.config.shelf_entries == 0:
            return False
        if not thread.shelf.can_dispatch(thread.rob_reservation()):
            return False
        if dyn.instr.dest is not None and not self.ext_fl.can_allocate():
            return False
        if dyn.is_store and self.config.memory_model == "tso" and \
                not thread.lsq.can_dispatch_store():
            return False
        return True

    def _iq_path_free(self, thread: ThreadContext, dyn: DynInstr) -> bool:
        if len(thread.rob) >= self.config.rob_per_thread:
            return False
        if len(self.iq) >= self.config.iq_entries:
            return False
        if dyn.instr.dest is not None and not self.phys_fl.can_allocate():
            return False
        if dyn.is_load and not thread.lsq.can_dispatch_load():
            return False
        if dyn.is_store and not thread.lsq.can_dispatch_store():
            return False
        return True

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch(self, cycle: int) -> None:
        fetchable = [t.fetchable(cycle) for t in self.threads]
        if not any(fetchable):
            return
        icounts = [t.icount for t in self.threads]
        slots = getattr(self.fetch_policy, "fetch_threads", 1)
        width = max(1, self.config.fetch_width // slots)
        for _slot in range(slots):
            tid = self.fetch_policy.select(fetchable, icounts)
            if tid is None:
                return
            fetchable[tid] = False  # one fetch slot per thread per cycle
            self._fetch_thread(self.threads[tid], cycle, width)

    def _fetch_thread(self, thread: ThreadContext, cycle: int,
                      width: int) -> None:
        tid = thread.tid
        first = thread.cursor.peek()
        assert first is not None
        if thread.ifetch_pending:
            # The miss that blocked this thread has filled: the block is
            # handed to the fetch unit with the fill.
            thread.ifetch_pending = False
        else:
            lat = self.hierarchy.access_inst(first.pc, cycle)
            if lat > self.config.hierarchy.l1i_latency:
                thread.fetch_blocked_until = cycle + lat
                thread.ifetch_pending = True
                return
        space = self.config.frontend_buffer_per_thread - len(thread.frontend)
        for _ in range(min(width, space)):
            instr = thread.cursor.peek()
            if instr is None:
                break
            thread.cursor.advance()
            dyn = DynInstr(tid, thread.cursor.pos - 1, self._gseq, instr,
                           DEFAULT_LATENCIES[instr.op])
            self._gseq += 1
            dyn.frontend_ready = cycle + self.config.fetch_to_dispatch
            thread.frontend.append(dyn)
            thread.icount += 1
            self.events.fetches += 1
            self._last_activity_cycle = cycle
            if instr.is_branch:
                self.events.bpred_lookups += 1
                correct = self.predictor.predict(tid, instr.pc, instr.taken,
                                                 instr.next_pc)
                self.predictor.update(tid, instr.pc, instr.taken,
                                      instr.next_pc)
                if not correct:
                    dyn.mispredicted = True
                    thread.pending_branch = dyn
                    self.events.branch_mispredicts += 1
                    break
                if instr.taken:
                    break  # the fetch block ends at a taken branch

    # ------------------------------------------------------------------
    # squash and replay (memory-order violations)
    # ------------------------------------------------------------------

    def _squash_thread(self, thread: ThreadContext, from_seq: int,
                       cycle: int) -> None:
        """Squash everything of *thread* from trace position *from_seq*
        and rewind the cursor so fetch replays it."""
        self.events.squashes += 1

        kept = [d for d in thread.frontend if d.seq < from_seq]
        for d in thread.frontend:
            if d.seq >= from_seq:
                d.squashed = True
                thread.icount -= 1
                self.events.squashed_instrs += 1
        thread.frontend.clear()
        thread.frontend.extend(kept)
        if thread.pending_branch is not None and \
                thread.pending_branch.seq >= from_seq:
            thread.pending_branch = None

        min_shelf_idx: Optional[int] = None
        while thread.in_flight and thread.in_flight[-1].seq >= from_seq:
            dyn = thread.in_flight.pop()
            dyn.squashed = True
            self.events.squashed_instrs += 1
            if not dyn.issued:
                thread.icount -= 1
            if dyn.rename is not None:
                self.rat.squash(dyn.tid, dyn.rename)
            if dyn.dest_tag is not None:
                self.scoreboard.clear(dyn.dest_tag)
            thread.order_tracker.discard(dyn.order_idx)
            if dyn.to_shelf:
                if min_shelf_idx is None or dyn.shelf_idx < min_shelf_idx:
                    min_shelf_idx = dyn.shelf_idx
            else:
                thread.issue_tracker.discard(dyn.rob_idx)
                if thread.rob and thread.rob[-1] is dyn:
                    thread.rob.pop()
                if dyn.is_store:
                    self.store_sets.store_squashed(dyn)

        thread.lsq.squash_from(from_seq)
        if min_shelf_idx is not None:
            thread.shelf.squash_from(min_shelf_idx)
            if self.sanitizer is not None:
                self.sanitizer.note_shelf_squash(thread, min_shelf_idx)
        thread.shelf_wb_pending = [d for d in thread.shelf_wb_pending
                                   if not d.squashed]
        # In place: the lane engine's run loop holds run-long aliases.
        self.iq[:] = [d for d in self.iq if not d.squashed]
        self._ready_iq[:] = [d for d in self._ready_iq if not d.squashed]
        if self._lane_engine is not None:
            self._lane_engine.drop_squashed_ready()
        thread.cursor.rewind(from_seq)
        if cycle + 1 > thread.fetch_blocked_until:
            thread.fetch_blocked_until = cycle + 1

    # ------------------------------------------------------------------
    # per-cycle ticks
    # ------------------------------------------------------------------

    def _tick(self, cycle: int) -> None:
        for thread in self.threads:
            thread.ssr.tick()
            addr = thread.lsq.store_buffer.drain_one()
            if addr is not None:
                lat = self.hierarchy.access_data(addr, True, cycle)
                if lat is None:
                    thread.lsq.store_buffer.undrain(addr)
                else:
                    self.events.storebuf_drains += 1
        self.steering.tick(cycle)
        self._occ_iq += len(self.iq)
        for thread in self.threads:
            self._occ_rob += len(thread.rob)
            self._occ_shelf += thread.shelf.occupancy
            self._occ_lq += thread.lsq.lq_occupancy
            self._occ_sq += thread.lsq.sq_occupancy

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _result(self, stop: str) -> SimResult:
        cycles = max(self.cycle, 1)
        threads = []
        for t in self.threads:
            measured = t.retired - t.measure_start_retired
            if stop == "all" and t.finish_cycle is not None:
                span = t.finish_cycle - t.measure_start_cycle
                cpi = span / measured if measured else float("inf")
            elif measured > 0:
                cpi = (cycles - t.measure_start_cycle) / measured
            else:
                cpi = float("inf")
            threads.append(ThreadResult(
                tid=t.tid, benchmark=t.trace.name,
                trace_length=len(t.trace), retired=t.retired, cpi=cpi,
                finish_cycle=t.finish_cycle,
                insequence_flags=t.insequence_flags))
        ev = self.events
        ev.lq_searches = sum(t.lsq.lq_search_events for t in self.threads)
        ev.sq_searches = sum(t.lsq.sq_search_events for t in self.threads)
        ev.storebuf_coalesced = sum(t.lsq.store_buffer.coalesced
                                    for t in self.threads)
        # Key order matches the sorted-dict serialization of earlier
        # revisions so result-store digests stay stable.
        occupancy = {
            "iq": self._occ_iq / cycles,
            "lq": self._occ_lq / cycles,
            "rob": self._occ_rob / cycles,
            "shelf": self._occ_shelf / cycles,
            "sq": self._occ_sq / cycles,
        }
        return SimResult(
            config_label=self.config.label(),
            cycles=cycles,
            threads=threads,
            events=ev,
            cache_stats=self.hierarchy.stats(),
            steering_stats=self.steering.stats(),
            occupancy=occupancy,
            bpred_accuracy=self.predictor.accuracy,
        )

    def check_final_invariants(self) -> None:
        """Verify resource accounting after a run-to-completion.

        Only meaningful after ``run(stop='all')``: every structure must be
        empty and every identifier returned to its free list (the paper's
        recycling rules leave exactly the architectural mappings live).
        Raises AssertionError on any leak — used heavily by tests.
        """
        cfg = self.config
        for t in self.threads:
            assert not t.frontend, f"t{t.tid}: front end not drained"
            assert not t.rob, f"t{t.tid}: ROB not drained"
            assert not t.in_flight, f"t{t.tid}: in-flight list not drained"
            assert t.shelf.occupancy == 0, f"t{t.tid}: shelf not drained"
            assert not t.shelf_wb_pending, f"t{t.tid}: shelf WB pending"
            assert t.lsq.lq_occupancy == 0, f"t{t.tid}: LQ not drained"
            assert t.lsq.sq_occupancy == 0, f"t{t.tid}: SQ not drained"
            assert t.shelf.retire_ptr == t.shelf.tail, \
                f"t{t.tid}: unretired shelf indices"
        assert not self.iq, "shared IQ not drained"
        live = NUM_ARCH_REGS * cfg.num_threads
        phys_free_expected = self.phys_fl.capacity - live
        assert self.phys_fl.free_count == phys_free_expected, (
            f"physical register leak: {self.phys_fl.free_count} free, "
            f"expected {phys_free_expected}")
        # Extension tags may stay live while an architectural register's
        # current mapping was produced by the shelf.
        ext_live = 0
        for tid in range(cfg.num_threads):
            for arch in range(NUM_ARCH_REGS):
                pri, tag = self.rat.lookup(tid, arch)
                if tag != pri:
                    ext_live += 1
        assert self.ext_fl.free_count == self.ext_fl.capacity - ext_live, (
            f"extension tag leak: {self.ext_fl.free_count} free, "
            f"{ext_live} legitimately live of {self.ext_fl.capacity}")

    def _deadlock_report(self) -> str:  # pragma: no cover - debug aid
        lines = [f"no retirement since cycle {self._last_retire_cycle} "
                 f"(now {self.cycle}); state:"]
        lines.append(f"  IQ {len(self.iq)}/{self.config.iq_entries}: "
                     f"{self.iq[:6]}")
        for t in self.threads:
            lines.append(
                f"  t{t.tid}: rob={len(t.rob)} shelf={t.shelf.occupancy} "
                f"fe={len(t.frontend)} retired={t.retired} "
                f"pending_br={t.pending_branch} blocked_until="
                f"{t.fetch_blocked_until} ssr=({t.ssr.iq_ssr},"
                f"{t.ssr.shelf_ssr}) shelf_head={t.shelf.head} "
                f"wb_pending={len(t.shelf_wb_pending)}")
            if t.rob:
                lines.append(f"     rob_head={t.rob[0]} squash_idx="
                             f"{t.rob[0].shelf_squash_idx} "
                             f"shelf_retire_ptr={t.shelf.retire_ptr}")
        return "\n".join(lines)


def simulate(config: CoreConfig, traces: Sequence[Trace],
             stop: str = "first", max_cycles: Optional[int] = None,
             warmup_instructions: int = 0) -> SimResult:
    """Convenience one-shot: build a :class:`Pipeline` and run it."""
    return Pipeline(config, traces).run(
        stop=stop, max_cycles=max_cycles,
        warmup_instructions=warmup_instructions)
