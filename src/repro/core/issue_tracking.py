"""Per-thread issue-tracking bitvector (paper Section III-A, Figure 4).

IQ instructions issue out of program order, so a shelf instruction at the
head of its FIFO must be able to tell whether every IQ instruction from
the immediately preceding series of its *run* has issued.  The paper
allocates one bit per ROB entry: cleared at dispatch, set at issue, with a
head pointer tracking the oldest unissued IQ instruction.

We use a monotonically increasing per-thread index (the ROB allocation
sequence) rather than wrap-around indices, which keeps the "has the head
pointer moved past index i" comparison a plain integer ``>``.

The bitvector itself is a literal ``bytearray`` indexed by allocation
sequence (1 = outstanding): indices are allocated densely in order, so a
flag append/flat store is strictly cheaper than the hash ops of a set on
the two per-instruction touches every dispatched instruction pays.
"""

from __future__ import annotations


class IssueTracker:
    """Oldest-unissued-IQ-instruction tracker for one thread."""

    __slots__ = ("tail", "head", "_unissued")

    def __init__(self) -> None:
        self.tail = 0          #: next index to allocate
        self.head = 0          #: oldest index not yet issued
        self._unissued = bytearray()  #: 1 = outstanding, indexed by idx

    def allocate(self) -> int:
        """Dispatch of an IQ instruction: clear its bit, return its index."""
        idx = self.tail
        self.tail = idx + 1
        self._unissued.append(1)
        return idx

    def mark_issued(self, idx: int) -> None:
        """Issue of the IQ instruction holding *idx*: set its bit and let
        the head pointer advance over the issued prefix."""
        un = self._unissued
        un[idx] = 0
        h = self.head
        t = self.tail
        while h < t and not un[h]:
            h += 1
        self.head = h

    def discard(self, idx: int) -> None:
        """Squash: treat the index as issued so it never blocks the head."""
        self.mark_issued(idx)

    def all_issued_through(self, idx: int) -> bool:
        """True iff every IQ instruction with index <= *idx* has issued.

        This is the shelf-head eligibility test: a shelf instruction that
        recorded ``last_iq_rob_idx = idx`` at dispatch may issue in program
        order once this returns True (paper Section III-A).
        """
        return self.head > idx

    @property
    def last_allocated(self) -> int:
        """Index of the most recently dispatched IQ instruction (-1 if
        none) — what a dispatching shelf instruction records."""
        return self.tail - 1

    @property
    def outstanding(self) -> int:
        return self._unissued.count(1)

    def snapshot_head(self) -> int:
        """Start-of-cycle head value, for the conservative (no same-cycle
        issue) critical-path assumption."""
        return self.head
