"""Per-thread issue-tracking bitvector (paper Section III-A, Figure 4).

IQ instructions issue out of program order, so a shelf instruction at the
head of its FIFO must be able to tell whether every IQ instruction from
the immediately preceding series of its *run* has issued.  The paper
allocates one bit per ROB entry: cleared at dispatch, set at issue, with a
head pointer tracking the oldest unissued IQ instruction.

We use a monotonically increasing per-thread index (the ROB allocation
sequence) rather than wrap-around indices, which keeps the "has the head
pointer moved past index i" comparison a plain integer ``>``.
"""

from __future__ import annotations


class IssueTracker:
    """Oldest-unissued-IQ-instruction tracker for one thread."""

    __slots__ = ("tail", "head", "_unissued")

    def __init__(self) -> None:
        self.tail = 0          #: next index to allocate
        self.head = 0          #: oldest index not yet issued
        self._unissued = set()

    def allocate(self) -> int:
        """Dispatch of an IQ instruction: clear its bit, return its index."""
        idx = self.tail
        self.tail += 1
        self._unissued.add(idx)
        return idx

    def mark_issued(self, idx: int) -> None:
        """Issue of the IQ instruction holding *idx*: set its bit and let
        the head pointer advance over the issued prefix."""
        self._unissued.discard(idx)
        while self.head < self.tail and self.head not in self._unissued:
            self.head += 1

    def discard(self, idx: int) -> None:
        """Squash: treat the index as issued so it never blocks the head."""
        self.mark_issued(idx)

    def all_issued_through(self, idx: int) -> bool:
        """True iff every IQ instruction with index <= *idx* has issued.

        This is the shelf-head eligibility test: a shelf instruction that
        recorded ``last_iq_rob_idx = idx`` at dispatch may issue in program
        order once this returns True (paper Section III-A).
        """
        return self.head > idx

    @property
    def last_allocated(self) -> int:
        """Index of the most recently dispatched IQ instruction (-1 if
        none) — what a dispatching shelf instruction records."""
        return self.tail - 1

    @property
    def outstanding(self) -> int:
        return len(self._unissued)

    def snapshot_head(self) -> int:
        """Start-of-cycle head value, for the conservative (no same-cycle
        issue) critical-path assumption."""
        return self.head
