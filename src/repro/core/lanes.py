"""Flat-lane (structure-of-arrays) hot path for the cycle loop.

PR 3's event-driven fast-forward removed the per-cycle cost of *idle*
cycles; this module removes the Python-object cost of *busy* ones.  On
compute-bound traces (``ilp.int8``) every cycle has work, and the
reference loop spends most of its time chasing :class:`DynInstr`
attributes through method calls: scoreboard lookups per IQ entry per
cycle, steering/FU/tracker dispatch, and per-event counter updates.

:class:`LaneEngine` keeps the hot per-slot state in parallel flat int
*lanes* indexed by the dense global fetch sequence (``gseq``): opcode
kind, FU latency, thread id, the renamed source-tag triple, source
count, destination tag, previous destination tag (WAW), load retry
backoff, outstanding wakeup count, shelf virtual index, and the SSR
resolution segment recorded at issue.  The lanes are plain Python
lists — see the constructor comment for why they beat ``array('q')``
in CPython.  A parallel ``dyn_of`` list maps each slot back to its
:class:`DynInstr`.

The engine owns the whole run loop (:meth:`run_loop`): ``Pipeline.run``
delegates its cycle loop to one fused function whose locals — lane
aliases, structure handles, config scalars, bound collaborator methods
— are hoisted **once per run** instead of once per stage per cycle.
The seven stage bodies are inlined into that loop, the IQ rename path
writes the RAT map and free lists directly, and event counters are
accumulated in locals and flushed once per stage.  Two rules keep it
bit-identical to the object pipeline:

* **write-through** — every architectural field the object pipeline
  writes (``issued``, ``complete_cycle``, ``dest_tag``, ...) is still
  written on the ``DynInstr``, so all cold paths (squash-and-replay,
  LSQ disambiguation walks, the sanitizer, retire, stats) run the
  unmodified object code;
* **eager structure maintenance** — ``pipe.iq``, ``thread.rob``,
  ``thread.in_flight`` and the LSQ lists are mutated exactly as the
  object pipeline mutates them, so the event horizon, the deadlock
  detector, and ``check_final_invariants`` need no lane awareness
  beyond the issue-horizon's ready-set source.

Issue always runs the wakeup-list machinery (scoreboard waiter lists +
a ``(ready_cycle, gseq)`` min-heap of slot ids), which PR 3's oracle
proved bit-identical to whole-IQ polling.  Three scheduling shortcuts
exploit invariants the polling loop re-derives every cycle:

* **frozen readiness** — a slot enters the due set only once *all* its
  source tags carry final ready cycles ``<= cycle`` (producers issued,
  and a tag's entry cannot change while a live consumer references it:
  the overwriter that recycles it is younger and retires later).  Due
  non-loads therefore need *no* per-cycle operand re-check, and the due
  set splits into ``ready`` (unconditional candidates) and ``ready_ld``
  (loads, which still carry replay-backoff and store-set gates);
* **direct-to-ready dispatch** — an instruction whose operands are
  already ready at dispatch time skips the wakeup heap entirely;
* **single-pass issue** — with no shelf configured, issuing never
  creates a same-cycle candidate (every FU latency is >= 1, and load
  gates only change at writeback), so the candidate scan runs once per
  cycle instead of looping until no progress.

``REPRO_LANES=0`` / ``Pipeline(lanes=False)`` selects the per-object
reference pipeline, exactly as ``REPRO_FASTFORWARD=0`` selects the
polling loop; results are bit-identical either way (see
``tests/test_lanes_equivalence.py``) and the mode never enters result
digests.
"""

from __future__ import annotations

from heapq import heappush, heappop
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro import envvars
from repro.core.dynamic import DynInstr
from repro.core.scoreboard import UNWRITTEN
from repro.core.steering import (IQOnlySteering, ShelfOnlySteering,
                                 SteeringPolicy)
from repro.isa.opcodes import DEFAULT_LATENCIES, OpClass
from repro.rename.rat import RenameRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import Pipeline
    from repro.core.thread_context import ThreadContext

def lanes_enabled() -> bool:
    """Is the flat-lane engine requested (default: yes)?

    ``REPRO_LANES=0`` selects the per-object pipeline — the reference
    implementation the lane engine must stay bit-identical to.
    Deliberately *not* a :class:`~repro.core.config.CoreConfig` field:
    the mode must not enter result-store digests, exactly like
    ``REPRO_FASTFORWARD`` and ``REPRO_SANITIZE``.
    """
    return envvars.enabled("REPRO_LANES")


#: Every :class:`DynInstr` field the object engines (``pipeline.py`` /
#: ``steering.py``) read on hot paths, mapped to the flat lanes that
#: mirror it — or to ``()`` for fields the lane engine leaves
#: object-resident and reads/writes through the ``DynInstr`` itself
#: (write-through; see the module docstring).  ``repro check``'s
#: LANE301 demands that every hot field read appears here, LANE302 that
#: every named lane exists in :class:`LaneEngine` — so removing an
#: entry (or a lane) fails CI instead of silently desynchronizing the
#: two implementations.  Properties (``is_load`` ...) map to the opcode
#: lane they are derived from.
LANE_REGISTRY: Dict[str, Tuple[str, ...]] = {
    # lane-mirrored fields
    "op": ("opk",), "is_load": ("opk",), "is_store": ("opk",),
    "is_mem": ("opk",), "is_branch": ("opk",),
    "latency": ("lat",),
    "tid": ("tidl",),
    "src_tags": ("src1", "src2", "src3", "nsrc"),
    "dest_tag": ("dest",),
    "prev_tag": ("prev",),
    "retry_after": ("retry",),
    "wake_waits": ("waits",),
    "shelf_idx": ("shelfv",),
    # object-resident fields (lane mode writes through to the DynInstr)
    "seq": (), "gseq": (), "instr": (), "rename": (),
    "frontend_ready": (), "mispredicted": (), "to_shelf": (),
    "dest_pri": (), "rob_idx": (), "last_iq_rob_idx": (),
    "shelf_squash_idx": (), "first_in_run": (), "ssr_copied": (),
    "order_idx": (), "steer_cached": (),
    "dispatch_cycle": (), "issue_cycle": (), "complete_cycle": (),
    "retire_cycle": (),
    "issued": (), "executed": (), "completed": (), "retired": (),
    "squashed": (),
    "mem_latency": (), "forwarded_from": (), "forwarded_seq": (),
    "speculative_load": (), "lq_slot": (), "sq_slot": (),
    "waiting_store": (),
}

#: Lanes with no DynInstr counterpart: engine-internal scheduling state.
INTERNAL_LANES: Tuple[str, ...] = ("ssrseg", "iqp")

#: Opcode kind -> FU group column (int_alu, int_muldiv, fp, mem), the
#: integer image of :data:`repro.isa.opcodes._FU_GROUP`.  ``repro
#: check``'s LANE303 verifies this agrees with the opcodes module.
_FU_GROUP_OF = (0, 1, 1, 2, 2, 2, 3, 3, 0, 0)
_FU_GROUP_NAMES = ("int_alu", "int_muldiv", "fp", "mem")

#: Latency table indexed by opcode kind.
_LAT_BY_OP = tuple(DEFAULT_LATENCIES[OpClass(k)] for k in range(10))

_INT_DIV = int(OpClass.INT_DIV)
_FP_DIV = int(OpClass.FP_DIV)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_BRANCH = int(OpClass.BRANCH)
_BARRIER = int(OpClass.BARRIER)
_BR_OP = OpClass.BRANCH

_CHUNK = 4096


def decode_trace(trace) -> Tuple[list, list, list]:
    """Pre-decode a trace into read-only fetch arrays.

    Returns ``(ops, lats, nextbr)``: the per-position opcode (the exact
    ``instr.op`` objects the lanes store), the base FU latency, and the
    position of the next branch at or after each index (``len(trace)``
    when none).  One decode is shared by every gang member running the
    same trace (the arrays are never mutated), letting
    :meth:`LaneEngine._fetch_decoded` fill lanes by slice assignment
    and skip per-instruction branch tests on branch-free stretches.
    """
    instrs = trace._instrs
    n = len(instrs)
    ops = [ins.op for ins in instrs]
    lats = [_LAT_BY_OP[op] for op in ops]
    nextbr = [0] * n
    nb = n
    for i in range(n - 1, -1, -1):
        if ops[i] is _BR_OP:
            nb = i
        nextbr[i] = nb
    return ops, lats, nextbr


class LaneEngine:
    """Fused run loop over flat instruction-slot lanes.

    One engine per :class:`Pipeline` (created when ``pipe.lanes``);
    :meth:`run_loop` replaces ``Pipeline.run``'s cycle loop, and
    :meth:`step` runs a single fused cycle for manual steppers.
    """

    def __init__(self, pipe: "Pipeline") -> None:
        self.pipe = pipe
        cfg = pipe.config

        # -- lanes, indexed by gseq ------------------------------------
        # Plain lists of small ints, not array('q'): CPython must box
        # and unbox every array element on access, which microbenchmarks
        # at roughly 2x the cost of a list subscript, and the lanes are
        # subscripted ~25 times per simulated instruction.  Small ints
        # are interned/cached, so the memory argument for array() never
        # materializes at simulation scale.
        self._cap = _CHUNK
        self.opk = [0] * _CHUNK     #: opcode kind (int of OpClass)
        self.lat = [0] * _CHUNK     #: base FU latency
        self.tidl = [0] * _CHUNK    #: owning thread id
        self.src1 = [0] * _CHUNK    #: renamed source tags (-1 = none)
        self.src2 = [0] * _CHUNK
        self.src3 = [0] * _CHUNK
        self.nsrc = [0] * _CHUNK    #: number of source operands
        self.dest = [0] * _CHUNK    #: destination tag (-1 = none)
        self.prev = [0] * _CHUNK    #: dest's previous tag (-1 = none)
        self.retry = [0] * _CHUNK   #: load structural-replay backoff
        self.waits = [0] * _CHUNK   #: outstanding wakeup registrations
        self.shelfv = [0] * _CHUNK  #: shelf virtual index
        self.ssrseg = [0] * _CHUNK  #: SSR resolution recorded at issue
        self.iqp = [0] * _CHUNK     #: current position in pipe.iq (IQ path)
        self._lanes = (self.opk, self.lat, self.tidl, self.src1, self.src2,
                       self.src3, self.nsrc, self.dest, self.prev, self.retry,
                       self.waits, self.shelfv, self.ssrseg, self.iqp)
        #: slot id -> live DynInstr (the object API surface).
        self.dyn_of: List[DynInstr] = []

        #: per-thread shared decoded-trace arrays (see
        #: :func:`decode_trace`), installed by the gang engine when this
        #: pipeline runs as a gang member: ``decode[tid]`` is
        #: ``(ops, lats, nextbr)`` or None.  Purely an acceleration of
        #: fetch — lane contents and DynInstr construction are
        #: bit-identical with or without it.
        self.decode: Optional[List[Optional[tuple]]] = None

        # -- engine-owned issue scheduling -----------------------------
        #: min-heap of (operands-ready cycle, gseq) — the lane image of
        #: Pipeline._ready_heap, which stays empty in lane mode.
        self.heap: List[Tuple[int, int]] = []
        #: due, unissued IQ slot ids (the lane image of _ready_iq),
        #: split by the only kind that needs per-cycle re-checks.
        #: Both lists are only ever mutated in place — run_loop holds
        #: run-long aliases to them.
        self.ready: List[int] = []       #: non-loads: always candidates
        self.ready_ld: List[int] = []    #: loads: replay/store-set gated

        # -- cached collaborators (never reassigned mid-run) -----------
        self.threads = pipe.threads
        self.sb_ready = pipe.scoreboard._ready
        self.sb_waiters = pipe.scoreboard._waiters
        self.hier = pipe.hierarchy
        self.pred = pipe.predictor
        self.store_sets = pipe.store_sets
        fu = pipe.fu
        self.fu_busy = [fu._busy_until[g] for g in _FU_GROUP_NAMES]
        self.fu_caps = [len(b) for b in self.fu_busy]
        self.fu_used = [0, 0, 0, 0]  #: per-cycle issue counters
        # Rename fast path: the RAT map rows and free-list deques are
        # written directly on the hot IQ path (identical mutations to
        # RegisterAliasTable.rename_iq / retire + FreeList).
        self.rat = pipe.rat
        self.rat_map = pipe.rat._map
        self.phys_fl = pipe.phys_fl
        self.phys_free = pipe.phys_fl._free
        self.phys_in_use = pipe.phys_fl._in_use
        self.ext_free = pipe.ext_fl._free
        self.ext_in_use = pipe.ext_fl._in_use

        # -- config scalars (CoreConfig properties recompute per call) --
        self.c_n = cfg.num_threads
        self.c_retire_w = cfg.retire_width
        self.c_issue_w = cfg.issue_width
        self.c_disp_w = cfg.dispatch_width
        self.c_iq_cap = cfg.iq_entries
        self.c_rob_pt = cfg.rob_per_thread
        self.c_febuf = cfg.frontend_buffer_per_thread
        self.c_f2d = cfg.fetch_to_dispatch
        self.c_l1i = cfg.hierarchy.l1i_latency
        self.c_tso = cfg.memory_model == "tso"
        self.c_has_shelf = cfg.shelf_entries > 0
        self.c_spec = cfg.spec_mem_bound
        self.c_same_cycle = cfg.shelf_same_cycle_issue
        self.c_slots = getattr(pipe.fetch_policy, "fetch_threads", 1)
        self.c_fetch_w = max(1, cfg.fetch_width // self.c_slots)
        self.tlen = [len(t.trace) for t in pipe.threads]

        # -- steering hook elision (rebound if pipe.steering changes) --
        self._st: Optional[SteeringPolicy] = None
        self._bind_steering()

    # ------------------------------------------------------------------
    # capacity / steering binding
    # ------------------------------------------------------------------

    def _grow(self, need: int) -> None:
        new_cap = self._cap
        while new_cap <= need:
            new_cap *= 2
        ext = [0] * (new_cap - self._cap)
        for lane in self._lanes:
            lane.extend(ext)
        self._cap = new_cap

    def _bind_steering(self) -> None:
        """Cache steering entry points, eliding no-op base-class hooks.

        Experiments reassign ``pipe.steering`` after construction, so
        :meth:`run_loop` re-binds whenever the identity changes.
        """
        st = self.pipe.steering
        self._st = st
        cls = type(st)
        self._decide = st.decide
        #: constant decision for the stateless policies (exactly their
        #: decide() return value; skips a call per dispatched instr).
        if cls is IQOnlySteering:
            self._decide_const: Optional[bool] = False
        elif cls is ShelfOnlySteering:
            self._decide_const = True
        else:
            self._decide_const = None
        self._shelf_only = st.name == "shelf-only"
        self._on_issue = st.on_issue \
            if cls.on_issue is not SteeringPolicy.on_issue else None
        self._on_complete = st.on_complete \
            if cls.on_complete is not SteeringPolicy.on_complete else None
        self._note_dispatched = st.note_dispatched \
            if cls.note_dispatched is not SteeringPolicy.note_dispatched \
            else None
        self._steer_tick = st.tick \
            if cls.tick is not SteeringPolicy.tick else None

    # ------------------------------------------------------------------
    # single step (manual steppers / tests)
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the pipeline by one cycle (= ``Pipeline.step``).

        Runs :meth:`run_loop` in single-cycle mode: the per-run hoists
        are repaid every call, so driving a whole simulation through
        ``step()`` is slower than ``run()`` — manual steppers only.
        """
        self.run_loop(False, 0, 0, 0, single=True)

    # ------------------------------------------------------------------
    # the fused run loop
    # ------------------------------------------------------------------

    def run_loop(self, stop_first: bool, limit: int, warm: int,
                 total_instrs: int, single: bool = False,
                 until: int = 0) -> bool:
        """``Pipeline.run``'s cycle loop with all seven stages inlined.

        Mirrors the reference loop exactly: stop conditions and the
        ``max_cycles`` guard are evaluated before each cycle, warm-up
        statistic resets and the deadlock detector after it, and idle
        fast-forward jumps go through the unmodified object helpers.
        Raises :class:`~repro.core.pipeline.DeadlockError` exactly as
        ``Pipeline.run`` would; the caller builds the result.

        Returns ``True`` when the run's stop condition is satisfied.
        With ``until > 0`` the loop instead returns ``False`` as soon as
        ``pipe.cycle >= until`` — a bounded slice the caller can resume
        from (the gang engine advances members in such slices; a
        fast-forward jump may overshoot the bound, which only makes the
        slice end later).  All engine and pipeline state is consistent
        at every return, so re-entering continues the identical run.

        With ``single=True``, executes exactly one cycle and skips the
        run-level checks (the contract of ``Pipeline.step``).
        """
        pipe = self.pipe
        if self._st is not pipe.steering:
            self._bind_steering()

        # ---- run-wide hoists (one-time; the whole point) -------------
        threads = self.threads
        n = self.c_n
        tlen = self.tlen
        dyn_of = self.dyn_of
        opk = self.opk
        latl = self.lat
        src1, src2, src3 = self.src1, self.src2, self.src3
        nsrcl = self.nsrc
        destl = self.dest
        prevl = self.prev
        retry = self.retry
        waitsl = self.waits
        shelfvl = self.shelfv
        ssrsegl = self.ssrseg
        iqp = self.iqp
        rdy = self.sb_ready
        wdict = self.sb_waiters
        wheap = self.heap
        ready = self.ready
        ready_ld = self.ready_ld
        completions = pipe._completions
        iq = pipe.iq
        ev = pipe.events
        rat_map = self.rat_map
        rename_shelf = self.rat.rename_shelf
        phys_fl = self.phys_fl
        phys_free = self.phys_free
        phys_in_use = self.phys_in_use
        ext_free = self.ext_free
        ext_in_use = self.ext_in_use
        store_sets = self.store_sets
        fu_busy = self.fu_busy
        fu_caps = self.fu_caps
        fu_used = self.fu_used
        san = pipe.sanitizer
        record = pipe.record_schedule
        issue_log = pipe.issue_log
        log_append = pipe.instr_log.append
        load_latency = pipe._load_latency
        squash_thread = pipe._squash_thread
        try_shelf_retire = pipe._try_shelf_retire
        shelf_retire_scan = pipe._shelf_retire_scan
        shelf_path_free = pipe._shelf_path_free
        shelf_eligible = pipe._shelf_eligible
        use_ff = pipe.fastforward and not single
        try_ff = pipe._try_fast_forward
        window = pipe.DEADLOCK_WINDOW
        progress_scheduled = pipe._progress_scheduled
        fetch_select = pipe.fetch_policy.select
        fetch_thread = self._fetch_thread
        c_retire_w = self.c_retire_w
        c_issue_w = self.c_issue_w
        c_disp_w = self.c_disp_w
        c_iq_cap = self.c_iq_cap
        c_rob_pt = self.c_rob_pt
        c_febuf = self.c_febuf
        c_tso = self.c_tso
        c_spec = self.c_spec
        c_slots = self.c_slots
        c_fetch_w = self.c_fetch_w
        has_shelf = self.c_has_shelf
        st_obj = self._st
        decide = self._decide
        decide_const = self._decide_const
        shelf_only = self._shelf_only
        on_issue = self._on_issue
        on_complete = self._on_complete
        note_disp = self._note_dispatched
        steer_tick = self._steer_tick
        single_fetch = n == 1 and c_slots == 1
        single_thread = n == 1
        t_first = threads[0]
        tlen_first = tlen[0]
        hier_data = self.hier.access_data
        #: (thread, issue_tracker, ssr, lsq, store_buffer, shelf, rob)
        rows = [(t, t.issue_tracker, t.ssr, t.lsq, t.lsq.store_buffer,
                 t.shelf, t.rob) for t in threads]
        # Pre-unpacked first row for the single-thread tick fast path.
        # (No lq/sq aliases: squash rebinds those lists on the LSQ.)
        _, _itk_f, ssr_first, lsq_first, sbuf_first, shelf_first, \
            rob_first = rows[0]
        # Occupancy accumulators stay local; flushed on every exit path.
        # Fast-forward jumps add to the pipe attributes directly — the
        # two streams are additive, so the split is sum-preserving.
        occ_iq = occ_rob = occ_shelf = occ_lq = occ_sq = 0

        cycle = pipe.cycle

        try:
            while True:
                if not single:
                    if cycle >= limit:
                        from repro.core.pipeline import DeadlockError
                        raise DeadlockError(
                            f"max_cycles={limit} exceeded "
                            f"({pipe._total_retired}/{total_instrs} "
                            f"retired)")
                    # Shelf instructions retire through the object-path
                    # scan, so completion is re-derived from the retire
                    # counters rather than tracked incrementally.
                    if single_thread:
                        # stop-first and stop-all coincide for one thread.
                        if t_first.retired >= tlen_first:
                            return True
                    elif stop_first:
                        fin = False
                        for i in range(n):
                            if threads[i].retired >= tlen[i]:
                                fin = True
                                break
                        if fin:
                            return True
                    elif pipe._total_retired >= total_instrs:
                        return True
                    if until and cycle >= until:
                        return False
                    if use_ff and try_ff(limit):
                        cycle = pipe.cycle
                        if warm:
                            for t, *_ in rows:
                                if t.retired < warm:
                                    break
                            else:
                                pipe._reset_statistics()
                                occ_iq = occ_rob = occ_shelf = 0
                                occ_lq = occ_sq = 0
                                ev = pipe.events
                                warm = 0
                        la = pipe._last_activity_cycle
                        lr = pipe._last_retire_cycle
                        prog = la if la > lr else lr
                        if cycle - prog > window \
                                and not progress_scheduled():
                            from repro.core.pipeline import DeadlockError
                            raise DeadlockError(pipe._deadlock_report())
                        continue
                if pipe.steering is not st_obj:
                    self._bind_steering()
                    st_obj = self._st
                    decide = self._decide
                    decide_const = self._decide_const
                    shelf_only = self._shelf_only
                    on_issue = self._on_issue
                    on_complete = self._on_complete
                    note_disp = self._note_dispatched
                    steer_tick = self._steer_tick

                # ====== head snapshots (cycle-start tracker state) ====
                # Consumed only by _shelf_eligible's in-order gate, so
                # shelf-free configs skip the loop entirely.
                if has_shelf:
                    for t, itk, *_ in rows:
                        t.head_snapshot = itk.head

                # ====== writeback / completion ========================
                if completions and completions[0][0] <= cycle:
                    writes = 0
                    while completions and completions[0][0] <= cycle:
                        g = heappop(completions)[1]
                        dyn = dyn_of[g]
                        if dyn.squashed:
                            continue
                        dyn.completed = True
                        if on_complete is not None:
                            on_complete(dyn, cycle)
                        thread = threads[dyn.tid]
                        if destl[g] >= 0:
                            writes += 1
                        k = opk[g]
                        if k == _STORE:
                            dyn.executed = True
                            store_sets.store_executed(dyn)
                            victim = thread.lsq.violation_load(dyn)
                            if victim is not None:
                                store_sets.train_violation(victim, dyn)
                                ev.violations += 1
                                squash_thread(thread, victim.seq, cycle)
                                assert not dyn.squashed, \
                                    "violating store squashed by its " \
                                    "own victim"
                        elif k == _BRANCH and dyn.mispredicted:
                            if thread.pending_branch is dyn:
                                thread.pending_branch = None
                                if cycle + 1 > thread.fetch_blocked_until:
                                    thread.fetch_blocked_until = cycle + 1
                        if dyn.to_shelf:
                            try_shelf_retire(thread, dyn, cycle)
                    if writes:
                        # Every completing producer broadcasts its tag
                        # into the IQ CAM.
                        ev.prf_writes += writes
                        ev.iq_wakeups += writes

                # ====== shelf retire scan =============================
                # shelf_wb_pending is only ever populated by shelf
                # writebacks, so the scan is shelf-config-only too.
                if has_shelf:
                    for t, *_ in rows:
                        if t.shelf_wb_pending:
                            shelf_retire_scan(cycle)
                            break

                # ====== ROB retirement ================================
                budget = c_retire_w
                rr = pipe._retire_rr
                retires = 0
                sb_inserts = 0
                for off in range(n):
                    thread, _itk, _ssr, lsq, sbuf, shelf, rob = \
                        rows[(rr + off) % n]
                    while budget and rob:
                        head = rob[0]
                        if not head.completed:
                            break
                        # ROB instructions may not retire before older
                        # shelf instructions: the stored shelf squash
                        # index is the gate.
                        if shelf.retire_ptr < head.shelf_squash_idx:
                            break
                        k = opk[head.gseq]
                        if k == _STORE and not sbuf.can_accept(
                                head.instr.mem_addr):
                            break
                        rob.popleft()
                        if k == _LOAD:
                            lsq.retire_load(head)
                        elif k == _STORE:
                            lsq.retire_store(head)
                            sb_inserts += 1
                        # Inline RegisterAliasTable.retire (identical
                        # releases).
                        rec = head.rename
                        if rec.arch is not None:
                            pp = rec.prev_pri
                            pt = rec.prev_tag
                            if not rec.to_shelf:
                                phys_in_use.remove(pp)
                                phys_free.append(pp)
                            if pt != pp:
                                ext_in_use.remove(pt)
                                ext_free.append(pt)
                        head.retired = True
                        head.retire_cycle = cycle
                        thread.in_flight.remove(head)
                        retires += 1
                        retired = thread.retired + 1
                        thread.retired = retired
                        if retired >= tlen[thread.tid] and \
                                thread.finish_cycle is None:
                            thread.finish_cycle = cycle
                        if record:
                            log_append({
                                "tid": head.tid, "seq": head.seq,
                                "op": head.op.name,
                                "to_shelf": head.to_shelf,
                                "dispatch": head.dispatch_cycle,
                                "issue": head.issue_cycle,
                                "complete": head.complete_cycle,
                                "retire": cycle,
                                "forwarded_seq": getattr(
                                    head, "forwarded_seq", None),
                            })
                        budget -= 1
                pipe._retire_rr = (rr + 1) % n
                if retires:
                    ev.rob_retires += retires
                    pipe._total_retired += retires
                    pipe._last_retire_cycle = cycle
                    if sb_inserts:
                        ev.storebuf_inserts += sb_inserts

                # ====== issue =========================================
                # Migrate due heap entries into the scan sets (squashed
                # and issued entries are dropped lazily, as in
                # Pipeline._pop_due_ready).
                while wheap and wheap[0][0] <= cycle:
                    g = heappop(wheap)[1]
                    d = dyn_of[g]
                    if not d.squashed and not d.issued:
                        if opk[g] == _LOAD:
                            ready_ld.append(g)
                        else:
                            ready.append(g)
                if ready or ready_ld or has_shelf:
                    width = c_issue_w
                    fu_used[0] = fu_used[1] = fu_used[2] = fu_used[3] = 0
                    n_fu = n_reads = n_iq_iss = n_shelf_iss = n_spec = 0
                    while width:
                        # Frozen readiness: every slot in the due sets
                        # has final source-ready cycles <= cycle, so
                        # non-loads are unconditional candidates and
                        # loads check only their issue gates.
                        if ready_ld:
                            cands = []
                            for g in ready_ld:
                                if cycle < retry[g]:
                                    continue  # structural replay backoff
                                w = dyn_of[g].waiting_store
                                if w is not None and not (w.executed or
                                                          w.squashed):
                                    continue  # store-set dependence
                                cands.append(g)
                            cands.extend(ready)
                        else:
                            cands = list(ready)
                        if has_shelf:
                            for t, *_ in rows:
                                fifo = t.shelf.fifo
                                if fifo:
                                    head = fifo[0]
                                    if shelf_eligible(t, head, cycle):
                                        cands.append(head.gseq)
                        if not cands:
                            break
                        cands.sort()
                        progressed = False
                        for g in cands:
                            if not width:
                                break
                            # FU availability: groups 0/3 hold no
                            # unpipelined ops, so their busy lists are
                            # permanently zero and availability is the
                            # per-cycle issue counter alone.
                            k = opk[g]
                            gi = _FU_GROUP_OF[k]
                            used = fu_used[gi]
                            if gi == 1 or gi == 2:
                                free = 0
                                for b in fu_busy[gi]:
                                    if b <= cycle:
                                        free += 1
                                if used >= free:
                                    continue
                            elif used >= fu_caps[gi]:
                                continue

                            # ---- fused Pipeline._do_issue ------------
                            dyn = dyn_of[g]
                            thread = threads[dyn.tid]
                            latency = latl[g]
                            if k == _LOAD:
                                mem_lat = load_latency(thread, dyn, cycle)
                                if mem_lat is None:
                                    # L1D MSHRs full: replay after a
                                    # short backoff.
                                    dyn.retry_after = cycle + 4
                                    retry[g] = cycle + 4
                                    continue
                                if mem_lat > latency:
                                    latency = mem_lat
                            elif k == _STORE:
                                latency = 1  # address+data generation

                            fu_used[gi] = used + 1
                            if k == _INT_DIV or k == _FP_DIV:
                                slots = fu_busy[gi]
                                for i, b in enumerate(slots):
                                    if b <= cycle:
                                        slots[i] = cycle + latency
                                        break
                            n_fu += 1
                            n_reads += nsrcl[g]

                            complete = cycle + latency
                            ot = thread.order_tracker
                            oidx = dyn.order_idx
                            in_order = ot.head == oidx
                            pv = prevl[g]
                            waw_ok = pv < 0 or rdy[pv] <= cycle
                            if thread.spec_inflight:
                                spec_ok = complete >= \
                                    thread.elder_spec_resolution(oidx,
                                                                 cycle)
                            else:
                                spec_ok = True
                            thread.insequence_flags[dyn.seq] = \
                                1 if (in_order and waw_ok and spec_ok) \
                                else 0

                            dyn.issued = True
                            dyn.issue_cycle = cycle
                            dyn.complete_cycle = complete
                            thread.icount -= 1
                            un = ot._unissued
                            un[oidx] = 0
                            h = ot.head
                            t_ = ot.tail
                            while h < t_ and not un[h]:
                                h += 1
                            ot.head = h
                            to_shelf = dyn.to_shelf
                            if to_shelf:
                                if san is not None:
                                    san.note_shelf_issue(thread, dyn,
                                                         cycle)
                                popped = thread.shelf.pop_issued()
                                assert popped is dyn, \
                                    "shelf issued out of FIFO order"
                                n_shelf_iss += 1
                            else:
                                it = thread.issue_tracker
                                ridx = dyn.rob_idx
                                un = it._unissued
                                un[ridx] = 0
                                h = it.head
                                t_ = it.tail
                                while h < t_ and not un[h]:
                                    h += 1
                                it.head = h
                                # O(1) swap-remove from the shared IQ
                                # list via the position lane (lane mode
                                # never depends on pipe.iq order).
                                i = iqp[g]
                                last = iq[-1]
                                iq[i] = last
                                iqp[last.gseq] = i
                                iq.pop()
                                if k == _LOAD:
                                    ready_ld.remove(g)
                                else:
                                    ready.remove(g)
                                n_iq_iss += 1

                            dt = destl[g]
                            if dt >= 0:
                                rdy[dt] = complete
                                waiters = wdict.pop(dt, None)
                                if waiters:
                                    for wg in waiters:
                                        wd = dyn_of[wg]
                                        if wd.squashed or wd.issued:
                                            continue
                                        w = waitsl[wg] - 1
                                        waitsl[wg] = w
                                        if not w:
                                            worst = 0
                                            s = src1[wg]
                                            if s >= 0 and rdy[s] > worst:
                                                worst = rdy[s]
                                            s = src2[wg]
                                            if s >= 0 and rdy[s] > worst:
                                                worst = rdy[s]
                                            s = src3[wg]
                                            if s >= 0 and rdy[s] > worst:
                                                worst = rdy[s]
                                            heappush(wheap, (worst, wg))

                            # Speculation accounting for the SSRs and
                            # the classifier.
                            resolution = 0
                            if k == _BRANCH:
                                resolution = latency
                            elif k == _LOAD and not to_shelf:
                                lsq = thread.lsq
                                if lsq.has_unexecuted_elder_store(g) or (
                                        c_tso and
                                        lsq.has_incomplete_elder_load(g)):
                                    dyn.speculative_load = True
                                    n_spec += 1
                                    resolution = c_spec
                            if resolution:
                                ssr = thread.ssr
                                if to_shelf:
                                    if resolution > ssr.shelf_ssr:
                                        ssr.shelf_ssr = resolution
                                    if not ssr.dual and \
                                            resolution > ssr.iq_ssr:
                                        ssr.iq_ssr = resolution
                                else:
                                    if resolution > ssr.iq_ssr:
                                        ssr.iq_ssr = resolution
                                    if not ssr.dual and \
                                            resolution > ssr.shelf_ssr:
                                        ssr.shelf_ssr = resolution
                                thread.spec_inflight.append(
                                    (oidx, cycle + resolution))
                                ssrsegl[g] = resolution

                            heappush(completions, (complete, g))
                            if on_issue is not None:
                                on_issue(dyn, cycle)
                            if record:
                                issue_log.append((cycle, dyn.tid,
                                                  dyn.seq, to_shelf))
                            width -= 1
                            progressed = True
                        # Single-pass issue: without a shelf, no new
                        # candidate can appear within the cycle (all FU
                        # latencies >= 1; load gates change only at
                        # writeback).  A shelf pop exposes the next
                        # FIFO head, so shelf configs re-scan.
                        if not progressed or not has_shelf:
                            break
                    if n_fu:
                        ev.fu_ops += n_fu
                        ev.prf_reads += n_reads
                        if n_iq_iss:
                            ev.iq_issues += n_iq_iss
                        if n_shelf_iss:
                            ev.shelf_issues += n_shelf_iss
                        if n_spec:
                            ev.speculative_loads += n_spec
                        pipe._last_activity_cycle = cycle

                # ====== dispatch ======================================
                budget = c_disp_w
                rr = pipe._dispatch_rr
                n_iq = n_sh = n_forced = n_lq = n_sq = n_barrier = 0
                dispatched = False
                for off in range(n):
                    if not budget:
                        break
                    thread = threads[(rr + off) % n]
                    fe = thread.frontend
                    if not fe:
                        continue
                    # Per-thread hoists for the dispatch burst (these
                    # collaborators are identity-stable per thread).
                    tid = thread.tid
                    lsq = thread.lsq
                    rob = thread.rob
                    itk = thread.issue_tracker
                    otk = thread.order_tracker
                    shelf = thread.shelf
                    in_flight = thread.in_flight
                    row = rat_map[tid]
                    while budget and fe:
                        dyn = fe[0]
                        if dyn.frontend_ready > cycle:
                            break
                        g = dyn.gseq
                        k = opk[g]
                        if k == _BARRIER and in_flight:
                            break  # barriers synchronize at dispatch

                        # ---- fused Pipeline._dispatch_one ------------
                        to_shelf = dyn.steer_cached
                        if to_shelf is None:
                            if decide_const is None:
                                to_shelf = has_shelf and \
                                    decide(dyn.tid, dyn.instr, cycle)
                            else:
                                to_shelf = has_shelf and decide_const
                            dyn.steer_cached = to_shelf
                        instr = dyn.instr
                        dest_arch = instr.dest
                        if to_shelf:
                            if not shelf_path_free(thread, dyn):
                                if shelf_only:
                                    break
                                if len(rob) >= c_rob_pt \
                                        or len(iq) >= c_iq_cap \
                                        or (dest_arch is not None
                                            and not phys_free) \
                                        or (k == _LOAD and not
                                            lsq.can_dispatch_load()) \
                                        or (k == _STORE and not
                                            lsq.can_dispatch_store()):
                                    break
                                to_shelf = False
                                n_forced += 1
                        elif len(rob) >= c_rob_pt \
                                or len(iq) >= c_iq_cap \
                                or (dest_arch is not None
                                    and not phys_free) \
                                or (k == _LOAD and
                                    not lsq.can_dispatch_load()) \
                                or (k == _STORE and
                                    not lsq.can_dispatch_store()):
                            break

                        if to_shelf:
                            rec = rename_shelf(tid, dest_arch, instr.srcs)
                            n_sh += 1
                            dyn.to_shelf = True
                            shelf.allocate(dyn)
                            shelfvl[g] = dyn.shelf_idx
                            dyn.last_iq_rob_idx = itk.tail - 1
                            dyn.first_in_run = \
                                not thread.last_dispatch_was_shelf
                            dyn.ssr_copied = False
                            thread.last_dispatch_was_shelf = True
                            if k == _LOAD:
                                lsq.dispatch_shelf_load(dyn)
                            elif k == _STORE:
                                if c_tso:
                                    lsq.dispatch_store(dyn)
                                    n_sq += 1
                                else:
                                    lsq.dispatch_shelf_store(dyn)
                                store_sets.store_dispatched(dyn)
                        else:
                            # Inline RegisterAliasTable.rename_iq +
                            # FreeList allocate (identical mutations,
                            # no method calls).
                            srcs = instr.srcs
                            ns = len(srcs)
                            if ns == 1:
                                p0, t0 = row[srcs[0]]
                                src_pris = (p0,)
                                src_tags = (t0,)
                            elif ns == 2:
                                p0, t0 = row[srcs[0]]
                                p1, t1 = row[srcs[1]]
                                src_pris = (p0, p1)
                                src_tags = (t0, t1)
                            elif ns == 0:
                                src_pris = src_tags = ()
                            else:
                                pris = []
                                tags = []
                                for s in srcs:
                                    p, t = row[s]
                                    pris.append(p)
                                    tags.append(t)
                                src_pris = tuple(pris)
                                src_tags = tuple(tags)
                            if dest_arch is None:
                                rec = RenameRecord(None, None, None, None,
                                                   None, False, src_tags,
                                                   src_pris)
                            else:
                                prev_pri, prev_tag = row[dest_arch]
                                pri = phys_free.popleft()
                                phys_in_use.add(pri)
                                nf = len(phys_free)
                                if nf < phys_fl.min_free:
                                    phys_fl.min_free = nf
                                row[dest_arch] = (pri, pri)
                                rec = RenameRecord(dest_arch, pri, pri,
                                                   prev_pri, prev_tag,
                                                   False, src_tags,
                                                   src_pris)
                            n_iq += 1
                            dyn.to_shelf = False
                            ridx = itk.tail
                            itk.tail = ridx + 1
                            itk._unissued.append(1)
                            dyn.rob_idx = ridx
                            dyn.shelf_squash_idx = shelf.tail
                            rob.append(dyn)
                            iqp[g] = len(iq)
                            iq.append(dyn)
                            thread.last_dispatch_was_shelf = False
                            if k == _LOAD:
                                lsq.dispatch_load(dyn)
                                dyn.waiting_store = \
                                    store_sets.load_must_wait_for(dyn)
                                n_lq += 1
                            elif k == _STORE:
                                lsq.dispatch_store(dyn)
                                n_sq += 1
                                store_sets.store_dispatched(dyn)

                        dyn.rename = rec
                        st = rec.src_tags
                        dyn.src_tags = st
                        dt = rec.tag
                        dyn.dest_tag = dt
                        dyn.dest_pri = rec.pri
                        pv = rec.prev_tag
                        dyn.prev_tag = pv
                        ns = len(st)
                        nsrcl[g] = ns
                        src1[g] = st[0] if ns > 0 else -1
                        src2[g] = st[1] if ns > 1 else -1
                        src3[g] = st[2] if ns > 2 else -1
                        if dt is not None:
                            destl[g] = dt
                            rdy[dt] = UNWRITTEN
                        else:
                            destl[g] = -1
                        prevl[g] = pv if pv is not None else -1
                        if not dyn.to_shelf:
                            # Wakeup registration (always on in lane
                            # mode — issue scans only the wakeup-driven
                            # ready sets).
                            w = 0
                            for tag in st:
                                if rdy[tag] == UNWRITTEN:
                                    lst = wdict.get(tag)
                                    if lst is None:
                                        wdict[tag] = [g]
                                    else:
                                        lst.append(g)
                                    w += 1
                            waitsl[g] = w
                            if not w:
                                worst = 0
                                for tag in st:
                                    r = rdy[tag]
                                    if r > worst:
                                        worst = r
                                # Direct-to-ready: operands already
                                # final — skip the wakeup heap (the
                                # next issue scan is cycle+1 either
                                # way; candidate order is re-sorted
                                # per cycle).
                                if worst <= cycle:
                                    if k == _LOAD:
                                        ready_ld.append(g)
                                    else:
                                        ready.append(g)
                                else:
                                    heappush(wheap, (worst, g))
                        oidx = otk.tail
                        otk.tail = oidx + 1
                        otk._unissued.append(1)
                        dyn.order_idx = oidx
                        dyn.dispatch_cycle = cycle
                        in_flight.append(dyn)
                        if k == _BARRIER:
                            n_barrier += 1
                        if note_disp is not None:
                            note_disp(dyn, cycle)
                        fe.popleft()
                        budget -= 1
                        dispatched = True
                pipe._dispatch_rr = (rr + 1) % n
                if dispatched:
                    pipe._last_activity_cycle = cycle
                    if n_iq:
                        ev.renames_iq += n_iq
                        ev.iq_writes += n_iq
                        ev.rob_writes += n_iq
                    if n_sh:
                        ev.renames_shelf += n_sh
                        ev.shelf_writes += n_sh
                    if n_forced:
                        ev.steer_forced_iq += n_forced
                    if n_lq:
                        ev.lq_writes += n_lq
                    if n_sq:
                        ev.sq_writes += n_sq
                    if n_barrier:
                        ev.barriers += n_barrier

                # ====== fetch =========================================
                if single_fetch:
                    # Single-thread fast path: select() is stateless
                    # here (the ICOUNT tiebreak pointer stays 0).
                    if (t_first.cursor.pos < tlen_first
                            and cycle >= t_first.fetch_blocked_until
                            and t_first.pending_branch is None
                            and len(t_first.frontend) < c_febuf):
                        fetch_thread(t_first, cycle, c_fetch_w)
                else:
                    # ThreadContext.fetchable, inlined (same predicate
                    # the single-thread fast path uses above).
                    fetchable = [t.cursor.pos < tlen[i]
                                 and cycle >= t.fetch_blocked_until
                                 and t.pending_branch is None
                                 and len(t.frontend) < c_febuf
                                 for i, t in enumerate(threads)]
                    if True in fetchable:
                        icounts = [t.icount for t in threads]
                        for _slot in range(c_slots):
                            tid = fetch_select(fetchable, icounts)
                            if tid is None:
                                break
                            # one fetch slot per thread per cycle
                            fetchable[tid] = False
                            fetch_thread(threads[tid], cycle, c_fetch_w)

                # ====== per-cycle ticks ===============================
                # Single-thread runs use pre-unpacked row components;
                # the loop below is the general SMT form of the same
                # ticks (identical mutations, identical order).
                if single_thread:
                    if ssr_first.iq_ssr:
                        ssr_first.iq_ssr -= 1
                    if ssr_first.shelf_ssr:
                        ssr_first.shelf_ssr -= 1
                    if sbuf_first._entries:
                        addr = sbuf_first.drain_one()
                        lat = hier_data(addr, True, cycle)
                        if lat is None:
                            sbuf_first.undrain(addr)
                        else:
                            ev.storebuf_drains += 1
                    occ_rob += len(rob_first)
                    if has_shelf:
                        occ_shelf += len(shelf_first.fifo)
                    occ_lq += len(lsq_first.lq)
                    occ_sq += len(lsq_first.sq)
                else:
                    for t, _itk, ssr, lsq, sbuf, shelf, rob in rows:
                        if ssr.iq_ssr:
                            ssr.iq_ssr -= 1
                        if ssr.shelf_ssr:
                            ssr.shelf_ssr -= 1
                        if sbuf._entries:
                            addr = sbuf.drain_one()
                            lat = hier_data(addr, True, cycle)
                            if lat is None:
                                sbuf.undrain(addr)
                            else:
                                ev.storebuf_drains += 1
                        occ_rob += len(rob)
                        if has_shelf:
                            occ_shelf += len(shelf.fifo)
                        occ_lq += len(lsq.lq)
                        occ_sq += len(lsq.sq)
                if steer_tick is not None:
                    steer_tick(cycle)
                occ_iq += len(iq)

                if san is not None:
                    san.check_cycle(cycle)
                cycle += 1
                pipe.cycle = cycle
                if single:
                    return False

                # ====== post-step run checks ==========================
                if warm:
                    for t, *_ in rows:
                        if t.retired < warm:
                            break
                    else:
                        pipe._reset_statistics()
                        occ_iq = occ_rob = occ_shelf = occ_lq = occ_sq = 0
                        ev = pipe.events
                        warm = 0
                la = pipe._last_activity_cycle
                lr = pipe._last_retire_cycle
                prog = la if la > lr else lr
                if cycle - prog > window and not progress_scheduled():
                    from repro.core.pipeline import DeadlockError
                    raise DeadlockError(pipe._deadlock_report())
        finally:
            pipe._occ_iq += occ_iq
            pipe._occ_rob += occ_rob
            pipe._occ_shelf += occ_shelf
            pipe._occ_lq += occ_lq
            pipe._occ_sq += occ_sq

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch_thread(self, thread: "ThreadContext", cycle: int,
                      width: int) -> None:
        cursor = thread.cursor
        instrs = cursor.trace._instrs
        pos = cursor.pos
        first = instrs[pos]
        if thread.ifetch_pending:
            # The blocking I-miss has filled; the block arrives with it.
            thread.ifetch_pending = False
        else:
            lat = self.hier.access_inst(first.pc, cycle)
            if lat > self.c_l1i:
                thread.fetch_blocked_until = cycle + lat
                thread.ifetch_pending = True
                return
        dec = self.decode
        if dec is not None:
            d = dec[thread.tid]
            if d is not None:
                self._fetch_decoded(thread, cycle, width, d)
                return
        pipe = self.pipe
        space = self.c_febuf - len(thread.frontend)
        if space > width:
            space = width
        tid = thread.tid
        tlen = self.tlen[tid]
        gseq = pipe._gseq
        ready = cycle + self.c_f2d
        fe_append = thread.frontend.append
        dyn_append = self.dyn_of.append
        # Grow once for the whole burst instead of re-checking per instr.
        if gseq + space >= self._cap:
            self._grow(gseq + space)
        opk, latl, tidl = self.opk, self.lat, self.tidl
        pred = self.pred
        ev = pipe.events
        fetched = 0
        for _ in range(space):
            if pos >= tlen:
                break
            instr = instrs[pos]
            pos += 1
            op = instr.op
            lat_v = _LAT_BY_OP[op]
            dyn = DynInstr(tid, pos - 1, gseq, instr, lat_v)
            opk[gseq] = op
            latl[gseq] = lat_v
            tidl[gseq] = tid
            dyn_append(dyn)
            gseq += 1
            dyn.frontend_ready = ready
            fe_append(dyn)
            fetched += 1
            if op is _BR_OP:
                ev.bpred_lookups += 1
                correct = pred.predict(tid, instr.pc, instr.taken,
                                       instr.next_pc)
                pred.update(tid, instr.pc, instr.taken, instr.next_pc)
                if not correct:
                    dyn.mispredicted = True
                    thread.pending_branch = dyn
                    ev.branch_mispredicts += 1
                    break
                if instr.taken:
                    break  # the fetch block ends at a taken branch
        cursor.pos = pos
        pipe._gseq = gseq
        if fetched:
            thread.icount += fetched
            ev.fetches += fetched
            pipe._last_activity_cycle = cycle

    def _fetch_decoded(self, thread: "ThreadContext", cycle: int,
                       width: int, dec: tuple) -> None:
        """Fetch burst over shared pre-decoded trace arrays.

        Gang members running the same trace share one
        :func:`decode_trace` result; branch-free stretches fill the
        opcode/latency lanes by slice assignment and build each
        :class:`DynInstr` with the exact eager-slot stores
        ``DynInstr.__init__`` performs (same fields, same values, same
        order — the write-before-read contract is unchanged).  Branches
        go through the identical per-instruction predictor path as
        :meth:`_fetch_thread`, so fetch behaviour — block boundaries,
        mispredict gating, event counts — is bit-identical.
        """
        ops, lats, nextbr = dec
        cursor = thread.cursor
        instrs = cursor.trace._instrs
        pos = cursor.pos
        pipe = self.pipe
        space = self.c_febuf - len(thread.frontend)
        if space > width:
            space = width
        tid = thread.tid
        lim = pos + space
        tlen = self.tlen[tid]
        if lim > tlen:
            lim = tlen
        gseq = pipe._gseq
        ready = cycle + self.c_f2d
        fe_append = thread.frontend.append
        dyn_append = self.dyn_of.append
        if gseq + (lim - pos) >= self._cap:
            self._grow(gseq + (lim - pos))
        opk, latl, tidl = self.opk, self.lat, self.tidl
        pred = self.pred
        ev = pipe.events
        new = DynInstr.__new__
        start = pos
        while pos < lim:
            stop = nextbr[pos]
            end = lim if stop > lim else stop
            if end > pos:
                # Branch-free stretch: bulk lane fill + tight DynInstr
                # construction (no per-instr branch test, no latency
                # table lookup — both pre-decoded).
                cnt = end - pos
                g2 = gseq + cnt
                opk[gseq:g2] = ops[pos:end]
                latl[gseq:g2] = lats[pos:end]
                if tid:
                    tidl[gseq:g2] = [tid] * cnt
                # (tid 0 needs no tidl writes: slots are fresh, zeroed.)
                for i in range(pos, end):
                    dyn = new(DynInstr)
                    dyn.tid = tid
                    dyn.seq = i
                    dyn.gseq = gseq
                    dyn.instr = instrs[i]
                    dyn.op = ops[i]
                    dyn.latency = lats[i]
                    dyn.mispredicted = False
                    dyn.to_shelf = False
                    dyn.rename = None
                    dyn.steer_cached = None
                    dyn.issued = False
                    dyn.executed = False
                    dyn.completed = False
                    dyn.retired = False
                    dyn.squashed = False
                    dyn.frontend_ready = ready
                    dyn_append(dyn)
                    fe_append(dyn)
                    gseq += 1
                pos = end
                if pos >= lim:
                    break
            # A branch: the one per-instruction path that must consult
            # (and train) the live predictor.
            instr = instrs[pos]
            op = ops[pos]
            dyn = new(DynInstr)
            dyn.tid = tid
            dyn.seq = pos
            dyn.gseq = gseq
            dyn.instr = instr
            dyn.op = op
            dyn.latency = lats[pos]
            dyn.mispredicted = False
            dyn.to_shelf = False
            dyn.rename = None
            dyn.steer_cached = None
            dyn.issued = False
            dyn.executed = False
            dyn.completed = False
            dyn.retired = False
            dyn.squashed = False
            dyn.frontend_ready = ready
            opk[gseq] = op
            latl[gseq] = lats[pos]
            if tid:
                tidl[gseq] = tid
            dyn_append(dyn)
            fe_append(dyn)
            gseq += 1
            pos += 1
            ev.bpred_lookups += 1
            correct = pred.predict(tid, instr.pc, instr.taken,
                                   instr.next_pc)
            pred.update(tid, instr.pc, instr.taken, instr.next_pc)
            if not correct:
                dyn.mispredicted = True
                thread.pending_branch = dyn
                ev.branch_mispredicts += 1
                break
            if instr.taken:
                break  # the fetch block ends at a taken branch
        fetched = pos - start
        cursor.pos = pos
        pipe._gseq = gseq
        if fetched:
            thread.icount += fetched
            ev.fetches += fetched
            pipe._last_activity_cycle = cycle

    # ------------------------------------------------------------------
    # squash hook / sanitizer audit
    # ------------------------------------------------------------------

    def drop_squashed_ready(self) -> None:
        """Called by ``Pipeline._squash_thread``: filter the ready scan
        sets exactly as the object pipeline filters ``_ready_iq`` (heap
        and waiter-list entries are dropped lazily).  In-place — the
        run loop holds run-long aliases to both lists."""
        dyn_of = self.dyn_of
        self.ready[:] = [g for g in self.ready if not dyn_of[g].squashed]
        self.ready_ld[:] = [g for g in self.ready_ld
                            if not dyn_of[g].squashed]
        # The squash filter compacted pipe.iq, invalidating the swap-
        # remove position lane — rebuild it for the survivors.
        iqp = self.iqp
        for i, d in enumerate(self.pipe.iq):
            iqp[d.gseq] = i

    def audit(self) -> List[str]:
        """Sanitizer hook: lanes must agree with the object mirror for
        every live, renamed instruction.  Returns problem strings."""
        problems: List[str] = []
        dyn_of = self.dyn_of
        for thread in self.threads:
            for dyn in thread.in_flight:
                g = dyn.gseq
                if g >= len(dyn_of) or dyn_of[g] is not dyn:
                    problems.append(f"slot {g}: dyn_of mirror broken "
                                    f"for {dyn!r}")
                    continue
                if self.opk[g] != int(dyn.op) or self.tidl[g] != dyn.tid:
                    problems.append(f"slot {g}: opcode/thread lanes "
                                    f"disagree with {dyn!r}")
                if dyn.rename is None:
                    continue
                st = dyn.src_tags
                ns = len(st)
                lanes = (self.src1[g], self.src2[g], self.src3[g])
                for i in range(3):
                    want = st[i] if i < ns else -1
                    if lanes[i] != want:
                        problems.append(
                            f"slot {g}: src lane {i} = {lanes[i]}, "
                            f"object says {want}")
                if self.nsrc[g] != ns:
                    problems.append(f"slot {g}: nsrc lane {self.nsrc[g]}, "
                                    f"object has {ns} sources")
                want = dyn.dest_tag if dyn.dest_tag is not None else -1
                if self.dest[g] != want:
                    problems.append(f"slot {g}: dest lane {self.dest[g]}, "
                                    f"object says {want}")
                want = dyn.prev_tag if dyn.prev_tag is not None else -1
                if self.prev[g] != want:
                    problems.append(f"slot {g}: prev lane {self.prev[g]}, "
                                    f"object says {want}")
                if dyn.to_shelf and dyn.shelf_idx is not None and \
                        self.shelfv[g] != dyn.shelf_idx:
                    problems.append(
                        f"slot {g}: shelf index lane {self.shelfv[g]}, "
                        f"object says {dyn.shelf_idx}")
        return problems
