"""Per-thread load/store queues, store buffer, and disambiguation.

IQ loads and stores allocate LQ/SQ entries at dispatch (partitioned per
thread, paper Table I).  Shelf memory operations allocate **no** entries —
they only record the queue tails at dispatch and, because they issue in
program order after all elder instructions, can scan the queues without
ever being scanned themselves (paper Section III-D).

The memory model is the paper's relaxed/weak one (ARM v7): a per-thread
coalescing store buffer absorbs retired stores and drains to the L1D; no
ordering is enforced between stores to different addresses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.core.dynamic import DynInstr, slot_or_none


def _overlap(a: DynInstr, b: DynInstr) -> bool:
    """Byte-range overlap of two memory operations."""
    a0, a1 = a.instr.mem_addr, a.instr.mem_addr + a.instr.mem_size
    b0, b1 = b.instr.mem_addr, b.instr.mem_addr + b.instr.mem_size
    return a0 < b1 and b0 < a1


class StoreBuffer:
    """Post-retirement store buffer (line granularity).

    Under the relaxed/weak model (the paper's evaluation) same-line stores
    coalesce into one entry.  Under TSO coalescing is disabled — "strong
    consistency models often do not permit coalescing in the store buffer"
    (paper Section III-D) — so every retired store occupies its own slot
    and drains to the cache strictly in order.
    """

    __slots__ = ("capacity", "line_shift", "coalesce", "_entries",
                 "_lines_present", "_token", "coalesced", "inserted")

    def __init__(self, capacity_lines: int, line_shift: int = 6,
                 coalesce: bool = True) -> None:
        self.capacity = capacity_lines
        self.line_shift = line_shift
        self.coalesce = coalesce
        # key -> line; with coalescing the key IS the line, without it the
        # key is a unique per-insert token so same-line stores stack up.
        self._entries: "OrderedDict[object, int]" = OrderedDict()
        self._lines_present: dict = {}  # line -> refcount
        self._token = 0
        self.coalesced = 0
        self.inserted = 0

    def line_of(self, addr: int) -> int:
        return addr >> self.line_shift

    def contains(self, addr: int) -> bool:
        return self._lines_present.get(self.line_of(addr), 0) > 0

    def can_accept(self, addr: int) -> bool:
        if self.coalesce and self.contains(addr):
            return True
        return len(self._entries) < self.capacity

    def insert(self, addr: int) -> None:
        line = self.line_of(addr)
        if self.coalesce and line in self._entries:
            self.coalesced += 1
            self._entries.move_to_end(line)
            return
        assert len(self._entries) < self.capacity, "store buffer overflow"
        key = line if self.coalesce else ("t", self._token)
        self._token += 1
        self._entries[key] = line
        self._lines_present[line] = self._lines_present.get(line, 0) + 1
        self.inserted += 1

    def drain_one(self) -> Optional[int]:
        """Pop the oldest entry for write-back to the cache (None if
        empty)."""
        if not self._entries:
            return None
        _, line = self._entries.popitem(last=False)
        self._lines_present[line] -= 1
        if not self._lines_present[line]:
            del self._lines_present[line]
        return line << self.line_shift

    def undrain(self, addr: int) -> None:
        """Re-insert a line whose cache write-back was rejected (MSHR
        full); it keeps its place at the head of the drain order."""
        line = self.line_of(addr)
        key = line if self.coalesce else ("t", self._token)
        self._token += 1
        self._entries[key] = line
        self._entries.move_to_end(key, last=False)
        self._lines_present[line] = self._lines_present.get(line, 0) + 1

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def audit(self) -> List[str]:
        """Sanitizer check: capacity and refcount bookkeeping agree."""
        problems: List[str] = []
        if len(self._entries) > self.capacity:
            problems.append(f"store buffer overflow: {len(self._entries)} "
                            f"entries, capacity {self.capacity}")
        refs = sum(self._lines_present.values())
        if refs != len(self._entries):
            problems.append(f"store buffer refcounts ({refs}) disagree "
                            f"with entries ({len(self._entries)})")
        if any(c <= 0 for c in self._lines_present.values()):
            problems.append("store buffer holds a non-positive line "
                            "refcount")
        return problems


class LoadStoreQueues:
    """One thread's LQ + SQ + store buffer."""

    __slots__ = ("lq_capacity", "sq_capacity", "lq", "sq", "store_buffer",
                 "all_stores", "all_loads", "lq_search_events",
                 "sq_search_events")

    def __init__(self, lq_capacity: int, sq_capacity: int,
                 store_buffer_lines: int, line_shift: int = 6,
                 coalesce: bool = True) -> None:
        self.lq_capacity = lq_capacity
        self.sq_capacity = sq_capacity
        self.lq: List[DynInstr] = []  #: IQ loads, program order
        self.sq: List[DynInstr] = []  #: IQ stores, program order
        self.store_buffer = StoreBuffer(store_buffer_lines, line_shift,
                                        coalesce=coalesce)
        #: all in-flight stores of the thread (IQ *and* shelf), program
        #: order — shelf loads gate on elder stores having executed.
        self.all_stores: List[DynInstr] = []
        #: all in-flight loads (TSO: loads are speculative until every
        #: elder load has completed, paper Section III-D).
        self.all_loads: List[DynInstr] = []
        self.lq_search_events = 0
        self.sq_search_events = 0

    # -- dispatch capacity -------------------------------------------------

    def can_dispatch_load(self) -> bool:
        return len(self.lq) < self.lq_capacity

    def can_dispatch_store(self) -> bool:
        return len(self.sq) < self.sq_capacity

    def _prune_loads(self) -> None:
        while self.all_loads and (self.all_loads[0].completed
                                  or self.all_loads[0].squashed
                                  or self.all_loads[0].retired):
            self.all_loads.pop(0)

    def dispatch_load(self, dyn: DynInstr) -> None:
        dyn.lq_slot = True
        dyn.retry_after = 0  # issue-path replay backoff starts clear
        self.lq.append(dyn)
        self._prune_loads()
        self.all_loads.append(dyn)

    def dispatch_shelf_load(self, dyn: DynInstr) -> None:
        """Shelf loads take no LQ entry but are tracked for TSO ordering."""
        dyn.retry_after = 0  # issue-path replay backoff starts clear
        self._prune_loads()
        self.all_loads.append(dyn)

    def dispatch_store(self, dyn: DynInstr) -> None:
        dyn.sq_slot = True
        self.sq.append(dyn)
        self.all_stores.append(dyn)

    def dispatch_shelf_store(self, dyn: DynInstr) -> None:
        """Shelf stores take no SQ entry but are tracked for ordering
        (relaxed model only; under TSO they allocate real SQ entries)."""
        dyn.sq_slot = False  # completion checks it to release TSO entries
        self.all_stores.append(dyn)

    # -- ordering queries --------------------------------------------------

    def has_incomplete_elder_load(self, gseq: int) -> bool:
        """Any load older than *gseq* that has not obtained its value?

        TSO's in-window speculation window (paper Section III-D): until
        every elder load completes, younger instructions — including all
        shelf instructions — remain speculative and may not write back.
        Completed/squashed list heads are pruned lazily.
        """
        self._prune_loads()
        for ld in self.all_loads:
            if ld.gseq >= gseq:
                break
            if not ld.completed and not ld.squashed:
                return True
        return False

    def has_unexecuted_elder_store(self, gseq: int) -> bool:
        """Any store older than *gseq* that has not produced addr+data?

        Gates shelf loads (they scan "older IQ stores ... all of which have
        calculated their addresses and values") and shelf-instruction
        writeback safety (no elder store can still trigger a violation).
        """
        for st in self.all_stores:
            if st.gseq >= gseq:
                break
            if not st.executed and not st.squashed:
                return True
        return False

    # -- forwarding / violations ---------------------------------------------

    def find_forwarding_store(self, load: DynInstr) -> Optional[DynInstr]:
        """Youngest elder executed store whose bytes overlap *load*.

        Returns None if no executed elder store matches; the caller must
        separately decide whether an un-executed elder store makes the
        load's issue speculative.
        """
        self.sq_search_events += 1
        best: Optional[DynInstr] = None
        for st in self.all_stores:
            if st.gseq >= load.gseq:
                break
            if st.executed and not st.squashed and _overlap(st, load):
                best = st
        return best

    def find_forwarding_load(self, load: DynInstr) -> Optional[DynInstr]:
        """Youngest *younger* already-executed IQ load overlapping a shelf
        load — the paper forwards from it to dodge an ordering violation."""
        best: Optional[DynInstr] = None
        for ld in self.lq:
            if ld.gseq <= load.gseq or not ld.issued or ld.squashed:
                continue
            if _overlap(ld, load):
                best = ld
        return best

    def violation_load(self, store: DynInstr) -> Optional[DynInstr]:
        """Eldest younger load that issued without seeing *store*'s data.

        Called when *store* executes (IQ or shelf).  A load violates when
        it overlaps, already issued, and obtained its value from memory or
        from a store older than *store* (paper Section III-D; the squash
        restarts at the violating load).
        """
        self.lq_search_events += 1
        worst: Optional[DynInstr] = None
        for ld in self.lq:
            if ld.gseq <= store.gseq or not ld.issued or ld.squashed:
                continue
            if not _overlap(ld, store):
                continue
            # Loads that issued without forwarding never wrote the field.
            fwd = slot_or_none(ld, "forwarded_from")
            if fwd is None or fwd < store.gseq:
                if worst is None or ld.seq < worst.seq:
                    worst = ld
        return worst

    # -- retirement / squash ---------------------------------------------------

    def retire_load(self, dyn: DynInstr) -> None:
        self.lq.remove(dyn)
        dyn.lq_slot = False

    def retire_store(self, dyn: DynInstr) -> None:
        """IQ store retires: its SQ entry moves into the store buffer."""
        self.sq.remove(dyn)
        self.all_stores.remove(dyn)
        dyn.sq_slot = False
        self.store_buffer.insert(dyn.instr.mem_addr)

    def complete_shelf_store(self, dyn: DynInstr) -> None:
        """Shelf store writes back into the buffer (releasing its SQ entry
        if the memory model made it allocate one)."""
        self.all_stores.remove(dyn)
        if dyn.sq_slot:
            self.sq.remove(dyn)
            dyn.sq_slot = False
        self.store_buffer.insert(dyn.instr.mem_addr)

    def squash_from(self, seq: int) -> None:
        """Drop all queue occupants with per-thread sequence >= *seq*."""
        self.lq = [d for d in self.lq if d.seq < seq]
        self.sq = [d for d in self.sq if d.seq < seq]
        self.all_stores = [d for d in self.all_stores if d.seq < seq]
        self.all_loads = [d for d in self.all_loads if d.seq < seq]

    # -- sanitizer hooks ---------------------------------------------------

    def audit(self) -> List[str]:
        """Sanitizer check: queue capacity, age ordering, and slot flags.

        Every queue must hold live instructions in strictly increasing
        global age — a mis-ordered LQ/SQ breaks the "scan elder entries
        only" disambiguation walks (paper Section III-D).
        """
        problems: List[str] = []
        if len(self.lq) > self.lq_capacity:
            problems.append(f"LQ overflow: {len(self.lq)} entries, "
                            f"capacity {self.lq_capacity}")
        if len(self.sq) > self.sq_capacity:
            problems.append(f"SQ overflow: {len(self.sq)} entries, "
                            f"capacity {self.sq_capacity}")
        for name, queue in (("LQ", self.lq), ("SQ", self.sq),
                            ("all-store list", self.all_stores)):
            prev = None
            for dyn in queue:
                if dyn.squashed:
                    problems.append(f"{name}: squashed occupant {dyn!r}")
                if prev is not None and dyn.gseq <= prev.gseq:
                    problems.append(
                        f"{name}: age order broken — gseq {dyn.gseq} "
                        f"follows {prev.gseq} (elder-entry scans would "
                        f"miss it)")
                prev = dyn
        for dyn in self.lq:
            if not dyn.lq_slot:
                problems.append(f"LQ occupant without an LQ slot: {dyn!r}")
        for dyn in self.sq:
            if not dyn.sq_slot:
                problems.append(f"SQ occupant without an SQ slot: {dyn!r}")
        problems.extend(self.store_buffer.audit())
        return problems

    @property
    def lq_occupancy(self) -> int:
        return len(self.lq)

    @property
    def sq_occupancy(self) -> int:
        return len(self.sq)
