"""Core configuration, mirroring the paper's Table I.

The three evaluated designs are factory-built in
:mod:`repro.harness.configs`:

* ``Base64``  — 64-entry ROB, 32-entry IQ/LQ/SQ, no shelf (baseline);
* ``Base64+Shelf64`` — baseline plus a 64-entry shelf (conservative or
  optimistic same-cycle-issue assumptions);
* ``Base128`` — every OOO structure doubled (the paper's upper bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.isa.instruction import NUM_ARCH_REGS
from repro.memory.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class CoreConfig:
    """All microarchitectural parameters of one simulated core."""

    # SMT and widths (Table I: 4-thread, 4-wide OOO with 8-wide fetch).
    num_threads: int = 4
    fetch_width: int = 8
    dispatch_width: int = 4
    issue_width: int = 4
    retire_width: int = 4
    fetch_to_dispatch: int = 6
    frontend_buffer_per_thread: int = 24

    # OOO structures.  ROB/LQ/SQ are partitioned per thread (paper, after
    # [20]); the IQ is shared.  ``prf_extra`` physical registers beyond the
    # architectural mappings bound the rename window.
    rob_entries: int = 64
    iq_entries: int = 32
    lq_entries: int = 32
    sq_entries: int = 32
    prf_extra: Optional[int] = None  #: default: == rob_entries

    # The shelf (0 disables it).  Partitioned per thread.  The extension
    # tag space is sized to the shelf's doubled virtual index space.
    shelf_entries: int = 0
    shelf_same_cycle_issue: bool = False  #: optimistic (True) vs conservative
    dual_ssr: bool = True  #: paper's IQ+shelf SSR pair; False = single SSR

    # Steering policy: 'iq-only', 'shelf-only', 'practical', 'oracle'.
    steering: str = "iq-only"
    rct_bits: int = 5        #: Ready Cycle Table counter width (paper: 5)
    plt_loads: int = 4       #: tracked loads per thread (paper: 4)

    # Speculation bound for memory-order speculation (paper III-B assumes
    # speculation is "bounded by a known maximum latency that is a function
    # of the pipeline").
    spec_mem_bound: int = 8

    # Memory structures.
    store_buffer_lines: int = 8  #: per-thread coalescing store buffer
    store_set_bits: int = 10     #: log2 SSIT entries

    # Consistency model: 'relaxed' is the paper's evaluated ARM v7 model.
    # 'tso' implements the Section III-D sketch the paper defers: no store
    # coalescing, shelf stores allocate SQ entries, loads stay speculative
    # until all elder loads complete (shelf writeback holds accordingly).
    memory_model: str = "relaxed"

    # Fetch policy: 'icount' (paper), 'icount2', or 'round-robin'.
    fetch_policy: str = "icount"
    # Branch direction predictor: 'gshare' (default), 'bimodal', 'local',
    # or 'tournament'.
    branch_predictor: str = "gshare"

    # Opt-in microarchitectural sanitizer (see repro.core.sanitizer):
    # re-checks structural invariants every cycle and at drain.  Purely
    # observational — results are bit-identical either way.  The
    # REPRO_SANITIZE environment variable enables it regardless of this
    # flag.
    sanitize: bool = False

    clock_ghz: float = 2.0
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    # ------------------------------------------------------------------

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError("need at least one thread")
        for name in ("rob_entries", "lq_entries", "sq_entries"):
            if getattr(self, name) % self.num_threads:
                raise ValueError(f"{name}={getattr(self, name)} not divisible "
                                 f"by {self.num_threads} threads")
        if self.shelf_entries:
            per = self.shelf_entries // self.num_threads
            if per * self.num_threads != self.shelf_entries:
                raise ValueError("shelf_entries must split evenly per thread")
            if per & (per - 1):
                raise ValueError("per-thread shelf size must be a power of "
                                 "two (doubled virtual index space)")
        if self.steering not in ("iq-only", "shelf-only", "practical",
                                 "oracle"):
            raise ValueError(f"unknown steering policy {self.steering!r}")
        if self.memory_model not in ("relaxed", "tso"):
            raise ValueError(f"unknown memory model {self.memory_model!r}")
        if self.branch_predictor not in ("gshare", "bimodal", "local",
                                         "tournament"):
            raise ValueError(
                f"unknown branch predictor {self.branch_predictor!r}")
        if self.steering != "iq-only" and self.shelf_entries == 0:
            raise ValueError(f"steering {self.steering!r} needs a shelf")

    # -- derived sizes ----------------------------------------------------

    @property
    def rob_per_thread(self) -> int:
        return self.rob_entries // self.num_threads

    @property
    def lq_per_thread(self) -> int:
        return self.lq_entries // self.num_threads

    @property
    def sq_per_thread(self) -> int:
        return self.sq_entries // self.num_threads

    @property
    def shelf_per_thread(self) -> int:
        return self.shelf_entries // self.num_threads

    @property
    def prf_entries(self) -> int:
        """Physical register file size: architectural state + window."""
        extra = self.prf_extra if self.prf_extra is not None \
            else self.rob_entries
        return NUM_ARCH_REGS * self.num_threads + extra

    @property
    def ext_tags(self) -> int:
        """Extension tag space size.

        One extension tag can be live per virtual shelf index (2x shelf
        entries), plus one per architectural register whose *current*
        mapping was produced by a shelf instruction — those tags stay live
        after the producing instruction retires, until the next writer of
        the register retires (paper Figure 6's life cycle).
        """
        if not self.shelf_entries:
            return 0
        return 2 * self.shelf_entries + NUM_ARCH_REGS * self.num_threads

    def with_threads(self, num_threads: int) -> "CoreConfig":
        """This configuration resized to *num_threads* (partitions follow)."""
        return replace(self, num_threads=num_threads)

    def label(self) -> str:
        """Short label for reports, e.g. ``Base64+Shelf64``."""
        base = f"Base{self.rob_entries}"
        if self.shelf_entries:
            mode = "opt" if self.shelf_same_cycle_issue else "cons"
            return f"{base}+Shelf{self.shelf_entries}({self.steering},{mode})"
        return base
