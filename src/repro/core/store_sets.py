"""Store-sets memory dependence predictor (Chrysos & Emer, paper [9]).

Prevents frequent memory-order-violation squashes by making loads wait for
the specific stores they have conflicted with in the past.  The classic
two-table organization:

* SSIT — store-set ID table, indexed by instruction PC;
* LFST — last fetched store table, mapping a store-set ID to the most
  recent in-flight store of that set.

On a violation, the load and store PCs are assigned to a common set.  A
load whose set has an in-flight, not-yet-executed store must wait for it;
a store entering the window replaces its set's LFST entry (and, per the
paper's shelf handling, shelf stores "use their store set identifier to
release dependent younger loads, just as IQ stores do").
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.dynamic import DynInstr


class StoreSets:
    """PC-indexed store-set predictor shared by all threads (PCs are
    per-thread address spaces in our traces, so aliasing across threads is
    rare and harmless, matching a tagged physical implementation)."""

    def __init__(self, table_bits: int = 10) -> None:
        self._mask = (1 << table_bits) - 1
        self._ssit: Dict[int, int] = {}   #: pc-index -> ssid
        self._lfst: Dict[int, DynInstr] = {}  #: ssid -> last in-flight store
        self._next_ssid = 0
        self.violations_trained = 0

    def _index(self, tid: int, pc: int) -> int:
        return ((pc >> 2) ^ (tid << 8)) & self._mask

    # -- prediction -----------------------------------------------------------

    def store_dispatched(self, store: DynInstr) -> None:
        """A store entered the window: it becomes its set's last store."""
        ssid = self._ssit.get(self._index(store.tid, store.instr.pc))
        if ssid is not None:
            self._lfst[ssid] = store

    def store_executed(self, store: DynInstr) -> None:
        """The store produced address+data: dependent loads are released."""
        ssid = self._ssit.get(self._index(store.tid, store.instr.pc))
        if ssid is not None and self._lfst.get(ssid) is store:
            del self._lfst[ssid]

    def store_squashed(self, store: DynInstr) -> None:
        """Squash cleanup — identical effect to execution for the LFST."""
        self.store_executed(store)

    def load_must_wait_for(self, load: DynInstr) -> Optional[DynInstr]:
        """The store this load is predicted to depend on, if it is still
        in flight and has not executed; else None (load may issue)."""
        ssid = self._ssit.get(self._index(load.tid, load.instr.pc))
        if ssid is None:
            return None
        store = self._lfst.get(ssid)
        if store is None or store.executed or store.squashed:
            return None
        if store.tid != load.tid or store.gseq >= load.gseq:
            return None  # not an elder store of this thread
        return store

    # -- training -----------------------------------------------------------

    def train_violation(self, load: DynInstr, store: DynInstr) -> None:
        """A store executed and found a younger, already-issued load with a
        matching address: merge both PCs into one store set."""
        self.violations_trained += 1
        li = self._index(load.tid, load.instr.pc)
        si = self._index(store.tid, store.instr.pc)
        ssid = self._ssit.get(li)
        if ssid is None:
            ssid = self._ssit.get(si)
        if ssid is None:
            ssid = self._next_ssid
            self._next_ssid += 1
        self._ssit[li] = ssid
        self._ssit[si] = ssid

    def reset(self) -> None:
        self._ssit.clear()
        self._lfst.clear()
        self._next_ssid = 0
        self.violations_trained = 0
