"""Speculation shift registers (paper Section III-B, Figure 5).

Shelf instructions skip ROB allocation and overwrite live physical
registers, so they must not write back while any elder instruction can
still squash them.  The paper adapts Smith & Pleszkun's result shift
register: a per-thread counter of the maximum remaining speculation
resolution time.  A shelf instruction may issue only when its own
execution delay is at least the counter value (its writeback then lands
after all tracked speculation has resolved).

A single SSR suffers a starvation pathology — younger reordered IQ
instructions keep merging fresh resolution delays, indefinitely delaying
an elder shelf head.  The paper's fix is a *pair*: IQ instructions update
only the IQ SSR; the IQ SSR is copied into the shelf SSR exactly when the
first shelf instruction of a run becomes eligible for in-order issue;
shelf instructions consult (and update) only the shelf SSR.  Both designs
are implemented so the ablation bench can quantify the difference.
"""

from __future__ import annotations


class SpeculationShiftRegisters:
    """The per-thread IQ/shelf SSR pair (or a fused single SSR)."""

    __slots__ = ("dual", "iq_ssr", "shelf_ssr")

    def __init__(self, dual: bool = True) -> None:
        self.dual = dual
        self.iq_ssr = 0
        self.shelf_ssr = 0

    def tick(self) -> None:
        """One cycle elapses: both registers shift (decrement toward 0)."""
        if self.iq_ssr:
            self.iq_ssr -= 1
        if self.shelf_ssr:
            self.shelf_ssr -= 1

    def tick_many(self, count: int) -> None:
        """*count* cycles elapse with no intervening updates — equivalent
        to *count* calls of :meth:`tick` (each register saturates at 0)."""
        if self.iq_ssr:
            self.iq_ssr = max(0, self.iq_ssr - count)
        if self.shelf_ssr:
            self.shelf_ssr = max(0, self.shelf_ssr - count)

    def cycles_until_shelf_issue(self, min_exec_delay: int) -> int:
        """How many un-updated cycles until :meth:`shelf_may_issue`
        becomes true for an instruction with *min_exec_delay* — the
        shelf SSR drains one per cycle, so the gap closes linearly."""
        return max(0, self.shelf_ssr - min_exec_delay)

    def record_iq_speculation(self, resolution_delay: int) -> None:
        """A speculative IQ instruction issued; merge its resolution time."""
        if resolution_delay > self.iq_ssr:
            self.iq_ssr = resolution_delay
        if not self.dual and resolution_delay > self.shelf_ssr:
            # Single-SSR ablation: every update lands on the shelf too.
            self.shelf_ssr = resolution_delay

    def record_shelf_speculation(self, resolution_delay: int) -> None:
        """A speculative shelf instruction issued; younger shelf
        instructions must outlast it."""
        if resolution_delay > self.shelf_ssr:
            self.shelf_ssr = resolution_delay
        if not self.dual and resolution_delay > self.iq_ssr:
            self.iq_ssr = resolution_delay

    def copy_to_shelf(self) -> None:
        """Run boundary: first shelf instruction of a run became eligible,
        so all elder IQ instructions have issued and contributed — snapshot
        the IQ SSR into the shelf SSR (dual design only)."""
        if self.dual and self.iq_ssr > self.shelf_ssr:
            self.shelf_ssr = self.iq_ssr

    def shelf_may_issue(self, min_exec_delay: int) -> bool:
        """Paper: a shelf instruction issues only once its minimum
        execution delay compares >= the (shelf) SSR value."""
        return min_exec_delay >= self.shelf_ssr

    def reset(self) -> None:
        self.iq_ssr = 0
        self.shelf_ssr = 0

    # -- sanitizer hooks ---------------------------------------------------

    def merge_deficit(self) -> int:
        """How far the shelf SSR lags the IQ SSR *after* a run-boundary
        merge — a correct merge leaves this at 0 (dual design).  A
        positive value right after :meth:`copy_to_shelf` means the merge
        was skipped or lost, letting a shelf instruction write back under
        still-unresolved elder speculation."""
        if not self.dual:
            return 0
        return max(0, self.iq_ssr - self.shelf_ssr)

    def audit(self) -> list:
        """Sanitizer check: SSR values never go negative (the shift
        register drains to zero and stops)."""
        problems = []
        if self.iq_ssr < 0:
            problems.append(f"IQ SSR negative: {self.iq_ssr}")
        if self.shelf_ssr < 0:
            problems.append(f"shelf SSR negative: {self.shelf_ssr}")
        return problems
