"""Tag readiness scoreboard.

Maps every tag in the combined tag space (physical registers + extension
tags) to the cycle at which its value becomes available to consumers.
This realizes both the IQ's tag-broadcast wakeup and the shelf's "ready
bitvector" (paper Section III-C) in one timing structure: an operand with
tag *t* is ready for an instruction issuing at cycle *c* iff
``ready_cycle[t] <= c``.
"""

from __future__ import annotations

from typing import Dict, List

#: "Not yet written" marker — larger than any reachable cycle count.
UNWRITTEN = 1 << 60


class Scoreboard:
    """Ready-cycle table over the full tag space."""

    __slots__ = ("num_tags", "_ready", "_waiters")

    def __init__(self, num_tags: int) -> None:
        self.num_tags = num_tags
        self._ready: List[int] = [UNWRITTEN] * num_tags
        # Per-tag wakeup lists (fast-forward mode): IQ entries blocked on
        # an unwritten source register themselves here; the producer's
        # issue drains the list instead of issue re-scanning the IQ.
        self._waiters: Dict[int, list] = {}

    def mark_initial(self, tag: int) -> None:
        """Architectural reset state: tag is ready from cycle 0."""
        self._ready[tag] = 0

    def set_ready(self, tag: int, cycle: int) -> None:
        """The producer of *tag* will deliver its value at *cycle*."""
        self._ready[tag] = cycle

    def clear(self, tag: int) -> None:
        """Tag re-allocated to a new producer: not ready until it issues."""
        self._ready[tag] = UNWRITTEN

    def ready_at(self, tag: int) -> int:
        return self._ready[tag]

    def is_ready(self, tag: int, cycle: int) -> bool:
        return self._ready[tag] <= cycle

    def is_unwritten(self, tag: int) -> bool:
        """Sanitizer hook: has *tag* no scheduled writeback at all?

        An in-flight, un-issued writer's destination must stay in this
        state — a premature ``set_ready`` would wake consumers on a value
        that does not exist yet.
        """
        return self._ready[tag] == UNWRITTEN

    def all_ready(self, tags, cycle: int) -> bool:
        """True if every tag in *tags* is ready at *cycle*."""
        r = self._ready
        for t in tags:
            if r[t] > cycle:
                return False
        return True

    # -- wakeup lists (fast-forward mode) ---------------------------------

    def add_waiter(self, tag: int, dyn) -> None:
        """Register *dyn* to be woken when *tag* becomes ready.

        One registration per unready source occurrence — a duplicated tag
        registers (and later decrements) twice, keeping the waiter count
        in lock-step with :meth:`DynInstr.wake_waits` initialization.
        """
        waiters = self._waiters.get(tag)
        if waiters is None:
            self._waiters[tag] = [dyn]
        else:
            waiters.append(dyn)

    def take_waiters(self, tag: int):
        """Remove and return the waiter list for *tag* (possibly empty)."""
        return self._waiters.pop(tag, ())

    def earliest_issue(self, tags) -> int:
        """First cycle at which all *tags* are ready (UNWRITTEN if any
        producer has not scheduled its writeback yet)."""
        worst = 0
        r = self._ready
        for t in tags:
            if r[t] > worst:
                worst = r[t]
        return worst
