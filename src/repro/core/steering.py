"""Instruction steering: decide shelf vs. IQ at decode (paper Section IV).

Policies:

* ``iq-only``    — everything to the IQ: the conventional OOO baseline.
* ``shelf-only`` — everything to the shelf: degenerates to an in-order
  core (a correctness anchor; also the Hily & Seznec motivation point).
* ``practical``  — the paper's hardware mechanism: a Ready Cycle Table of
  5-bit countdown counters per architectural register predicts operand
  ready times (all loads assumed L1 hits); per-thread earliest-allowable
  issue and writeback cycles model the shelf's in-order constraints; a
  Parent Loads Table of 4 tracked loads per thread freezes countdowns of
  dependents when a load outruns its prediction (Figure 9).
* ``oracle``     — the greedy oracle: same comparison, but with exact
  latencies (functionally probing the cache for loads) and corrections
  from the observed schedule (Section IV-A).

Every policy steers by predicting the instruction's completion cycle via
the IQ and via the shelf, choosing the earlier and breaking ties in favor
of the shelf.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import CoreConfig
from repro.core.dynamic import DynInstr
from repro.isa.instruction import NUM_ARCH_REGS, Instruction
from repro.isa.opcodes import DEFAULT_LATENCIES, OpClass, is_speculative_source
from repro.memory.hierarchy import MemoryHierarchy


class SteeringPolicy:
    """Interface; concrete policies override :meth:`decide` and hooks."""

    name = "abstract"

    def decide(self, tid: int, instr: Instruction, cycle: int) -> bool:
        """Return True to steer to the shelf, False to the IQ."""
        raise NotImplementedError

    # Hooks driven by the pipeline (default: ignore).
    def tick(self, cycle: int) -> None: ...

    def tick_many(self, cycle: int, count: int) -> None:
        """*count* ticks starting at *cycle*, with no pipeline activity in
        between (a fast-forward jump).  Policies with per-cycle state
        override this with a batched equivalent; a subclass that only
        overrides :meth:`tick` falls back to an exact cycle-by-cycle
        replay so fast-forward stays bit-identical by construction.
        """
        if type(self).tick is not SteeringPolicy.tick:
            for i in range(count):
                self.tick(cycle + i)

    def note_dispatched(self, dyn: DynInstr, cycle: int) -> None: ...
    def on_issue(self, dyn: DynInstr, cycle: int) -> None: ...
    def on_complete(self, dyn: DynInstr, cycle: int) -> None: ...
    def stats(self) -> dict:
        return {}


class IQOnlySteering(SteeringPolicy):
    """Baseline: the shelf (if present) is never used."""

    name = "iq-only"

    def decide(self, tid: int, instr: Instruction, cycle: int) -> bool:
        return False


class ShelfOnlySteering(SteeringPolicy):
    """Everything in order: the core behaves like an INO machine."""

    name = "shelf-only"

    def decide(self, tid: int, instr: Instruction, cycle: int) -> bool:
        return True


class PracticalSteering(SteeringPolicy):
    """The paper's implementable steering hardware (Section IV-B)."""

    name = "practical"

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.cap = (1 << config.rct_bits) - 1
        self.num_cols = config.plt_loads
        n = config.num_threads
        # Ready Cycle Table: countdown (cycles until ready), clamped.
        self._rct = [np.zeros(NUM_ARCH_REGS, dtype=np.int64)
                     for _ in range(n)]
        # Parent Loads Table: per-register bitmask of tracked-load columns.
        self._plt = [np.zeros(NUM_ARCH_REGS, dtype=np.uint8)
                     for _ in range(n)]
        #: per thread, per column: (load DynInstr, predicted absolute
        #: completion cycle) or None.
        self._cols: List[List[Optional[Tuple[DynInstr, int]]]] = \
            [[None] * self.num_cols for _ in range(n)]
        self._earliest_issue = [0] * n   # countdown
        self._earliest_wb = [0] * n      # countdown
        self._late_mask = [0] * n        # PLT columns of currently-late loads
        self.steered_shelf = 0
        self.steered_iq = 0

    def decide(self, tid: int, instr: Instruction, cycle: int) -> bool:
        rct = self._rct[tid]
        plt = self._plt[tid]
        late = self._late_mask[tid]
        # An operand fed (directly or transitively) by a late load is known
        # to arrive far in the future — its countdown froze at a stale
        # small value (paper Figure 9's stalled rows).  Saturate it: such
        # dependents are in-sequence and belong on the shelf, while
        # independent work keeps a small src_wait and stays in the IQ to
        # reorder past the miss.  Loads are exempt: a late-fed load is a
        # dependent chase from *some* chain, and chains stalled on
        # different parent loads must not serialize through one FIFO —
        # keeping them in the IQ preserves memory-level parallelism.
        saturate = late and instr.op is not OpClass.LOAD
        src_wait = 0
        for s in instr.srcs:
            w = self.cap if (saturate and plt[s] & late) else rct[s]
            if w > src_wait:
                src_wait = w
        # All loads are predicted L1 hits; latency comes from decode.
        lat = DEFAULT_LATENCIES[instr.op]

        iq_issue = src_wait
        iq_complete = iq_issue + lat

        shelf_issue = max(src_wait, self._earliest_issue[tid])
        if instr.dest is not None:
            waw = self.cap if (late and plt[instr.dest] & late) \
                else rct[instr.dest]  # previous writer must complete first
            if waw > shelf_issue:
                shelf_issue = waw
        shelf_complete = max(shelf_issue + lat, self._earliest_wb[tid])

        # numpy scalars leak in through the RCT; normalize to plain bool.
        to_shelf = bool(shelf_complete <= iq_complete)
        if to_shelf:
            self.steered_shelf += 1
            chosen_issue, chosen_complete = shelf_issue, shelf_complete
        else:
            self.steered_iq += 1
            chosen_issue, chosen_complete = iq_issue, iq_complete

        # Every dispatched instruction raises the shelf's in-order floor.
        if chosen_issue > self._earliest_issue[tid]:
            self._earliest_issue[tid] = min(chosen_issue, self.cap)
        if is_speculative_source(instr.op):
            res = chosen_complete
            if res > self._earliest_wb[tid]:
                self._earliest_wb[tid] = min(res, self.cap)

        # RCT / PLT destination updates.
        if instr.dest is not None:
            rct[instr.dest] = min(chosen_complete, self.cap)
            plt = self._plt[tid]
            row = np.uint8(0)
            for s in instr.srcs:
                row |= plt[s]
            plt[instr.dest] = row
        return to_shelf

    def note_dispatched(self, dyn: DynInstr, cycle: int) -> None:
        """Called after the DynInstr exists: assign a PLT column to loads."""
        if not dyn.is_load or dyn.instr.dest is None:
            return
        cols = self._cols[dyn.tid]
        for i, slot in enumerate(cols):
            if slot is None:
                predicted = cycle + int(self._rct[dyn.tid][dyn.instr.dest])
                cols[i] = (dyn, predicted)
                self._plt[dyn.tid][dyn.instr.dest] |= np.uint8(1 << i)
                return

    def tick(self, cycle: int) -> None:
        """Per-cycle countdown with parent-load stall correction."""
        for tid in range(self.config.num_threads):
            cols = self._cols[tid]
            late_mask = 0
            for i, slot in enumerate(cols):
                if slot is None:
                    continue
                dyn, predicted = slot
                if dyn.completed or dyn.squashed:
                    # Load done: free the column, reset its bits everywhere.
                    cols[i] = None
                    self._plt[tid] &= np.uint8(~(1 << i) & 0xFF)
                elif cycle >= predicted:
                    late_mask |= 1 << i
            self._late_mask[tid] = late_mask
            rct = self._rct[tid]
            if late_mask:
                stalled = (self._plt[tid] & np.uint8(late_mask)) != 0
                np.subtract(rct, 1, out=rct, where=~stalled)
                np.maximum(rct, 0, out=rct)
                # The in-order floors freeze with the rows: pending shelf
                # occupants fed by the late load will not issue while it
                # is outstanding, so the 5-bit floor must not decay below
                # the (unknown, far-future) in-order issue point.  Without
                # this, short independent recurrences start tying onto the
                # shelf mid-miss and serialize behind it.
            else:
                np.subtract(rct, 1, out=rct)
                np.maximum(rct, 0, out=rct)
                if self._earliest_issue[tid]:
                    self._earliest_issue[tid] -= 1
                if self._earliest_wb[tid]:
                    self._earliest_wb[tid] -= 1

    def tick_many(self, cycle: int, count: int) -> None:
        """Batched :meth:`tick` over an idle window of *count* cycles.

        No dispatch, writeback, or squash happens inside a fast-forward
        window, so tracked-load statuses and PLT rows are frozen: columns
        whose load already completed/squashed free on the window's first
        tick (as the reference would), and afterwards the only per-cycle
        variation is loads *becoming* late as cycles cross their predicted
        completion.  The window therefore splits into segments of constant
        late-mask, each applied as one vectorized countdown.
        """
        end = cycle + count
        for tid in range(self.config.num_threads):
            cols = self._cols[tid]
            preds = []
            for i, slot in enumerate(cols):
                if slot is None:
                    continue
                dyn, predicted = slot
                if dyn.completed or dyn.squashed:
                    cols[i] = None
                    self._plt[tid] &= np.uint8(~(1 << i) & 0xFF)
                else:
                    preds.append((predicted, i))
            rct = self._rct[tid]
            t = cycle
            while t < end:
                late_mask = 0
                nxt = end
                for predicted, i in preds:
                    if t >= predicted:
                        late_mask |= 1 << i
                    elif predicted < nxt:
                        nxt = predicted  # next segment boundary
                seg = nxt - t
                if late_mask:
                    stalled = (self._plt[tid] & np.uint8(late_mask)) != 0
                    np.subtract(rct, seg, out=rct, where=~stalled)
                    np.maximum(rct, 0, out=rct)
                else:
                    np.subtract(rct, seg, out=rct)
                    np.maximum(rct, 0, out=rct)
                    if self._earliest_issue[tid]:
                        self._earliest_issue[tid] = \
                            max(0, self._earliest_issue[tid] - seg)
                    if self._earliest_wb[tid]:
                        self._earliest_wb[tid] = \
                            max(0, self._earliest_wb[tid] - seg)
                self._late_mask[tid] = late_mask
                t = nxt

    def stats(self) -> dict:
        total = self.steered_shelf + self.steered_iq
        return {
            "steered_shelf": self.steered_shelf,
            "steered_iq": self.steered_iq,
            "shelf_fraction": self.steered_shelf / total if total else 0.0,
        }


class LanePracticalSteering(PracticalSteering):
    """Plain-list twin of :class:`PracticalSteering` for lane mode.

    The numpy implementation pays array-creation and ufunc-dispatch
    overhead per :meth:`tick` that dwarfs the 32-element workload once
    the rest of the cycle runs on flat lanes.  This subclass keeps the
    RCT/PLT as plain Python lists and replays the exact arithmetic —
    saturating countdowns, stalled-row freezes, column bitmask clears —
    so decisions are numerically identical (the lanes-vs-object oracle
    covers ``practical`` configurations in both modes).  It is selected
    by :func:`make_steering` only when the pipeline runs the lane
    engine; explicitly constructed policies keep the numpy arrays.
    """

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.cap = (1 << config.rct_bits) - 1
        self.num_cols = config.plt_loads
        n = config.num_threads
        self._rct = [[0] * NUM_ARCH_REGS for _ in range(n)]
        self._plt = [[0] * NUM_ARCH_REGS for _ in range(n)]
        self._cols = [[None] * self.num_cols for _ in range(n)]
        self._earliest_issue = [0] * n
        self._earliest_wb = [0] * n
        self._late_mask = [0] * n
        self.steered_shelf = 0
        self.steered_iq = 0

    def decide(self, tid: int, instr: Instruction, cycle: int) -> bool:
        rct = self._rct[tid]
        plt = self._plt[tid]
        late = self._late_mask[tid]
        cap = self.cap
        saturate = late and instr.op is not OpClass.LOAD
        src_wait = 0
        for s in instr.srcs:
            w = cap if (saturate and plt[s] & late) else rct[s]
            if w > src_wait:
                src_wait = w
        lat = DEFAULT_LATENCIES[instr.op]

        iq_complete = src_wait + lat

        shelf_issue = src_wait
        if self._earliest_issue[tid] > shelf_issue:
            shelf_issue = self._earliest_issue[tid]
        dest = instr.dest
        if dest is not None:
            waw = cap if (late and plt[dest] & late) else rct[dest]
            if waw > shelf_issue:
                shelf_issue = waw
        shelf_complete = shelf_issue + lat
        if self._earliest_wb[tid] > shelf_complete:
            shelf_complete = self._earliest_wb[tid]

        to_shelf = shelf_complete <= iq_complete
        if to_shelf:
            self.steered_shelf += 1
            chosen_issue, chosen_complete = shelf_issue, shelf_complete
        else:
            self.steered_iq += 1
            chosen_issue, chosen_complete = src_wait, iq_complete

        if chosen_issue > self._earliest_issue[tid]:
            self._earliest_issue[tid] = min(chosen_issue, cap)
        if is_speculative_source(instr.op):
            if chosen_complete > self._earliest_wb[tid]:
                self._earliest_wb[tid] = min(chosen_complete, cap)

        if dest is not None:
            rct[dest] = min(chosen_complete, cap)
            row = 0
            for s in instr.srcs:
                row |= plt[s]
            plt[dest] = row
        return to_shelf

    def note_dispatched(self, dyn: DynInstr, cycle: int) -> None:
        if not dyn.is_load or dyn.instr.dest is None:
            return
        cols = self._cols[dyn.tid]
        for i, slot in enumerate(cols):
            if slot is None:
                predicted = cycle + self._rct[dyn.tid][dyn.instr.dest]
                cols[i] = (dyn, predicted)
                self._plt[dyn.tid][dyn.instr.dest] |= 1 << i
                return

    def tick(self, cycle: int) -> None:
        # Hot: called once per live cycle by the lane engine.  The loops
        # below are iteration-shape rewrites of the reference arithmetic
        # (enumerate instead of index reads, zero-skip guards) — every
        # state write is identical in value and order.
        for tid in range(self.config.num_threads):
            cols = self._cols[tid]
            plt = self._plt[tid]
            late_mask = 0
            for i, slot in enumerate(cols):
                if slot is None:
                    continue
                dyn, predicted = slot
                if dyn.completed or dyn.squashed:
                    cols[i] = None
                    keep = ~(1 << i) & 0xFF
                    for r, row in enumerate(plt):
                        if row:
                            plt[r] = row & keep
                elif cycle >= predicted:
                    late_mask |= 1 << i
            self._late_mask[tid] = late_mask
            rct = self._rct[tid]
            if late_mask:
                for r, v in enumerate(rct):
                    if v > 0 and not plt[r] & late_mask:
                        rct[r] = v - 1
            else:
                if any(rct):
                    for r, v in enumerate(rct):
                        if v:
                            rct[r] = v - 1
                if self._earliest_issue[tid]:
                    self._earliest_issue[tid] -= 1
                if self._earliest_wb[tid]:
                    self._earliest_wb[tid] -= 1

    def tick_many(self, cycle: int, count: int) -> None:
        end = cycle + count
        for tid in range(self.config.num_threads):
            cols = self._cols[tid]
            plt = self._plt[tid]
            preds = []
            for i, slot in enumerate(cols):
                if slot is None:
                    continue
                dyn, predicted = slot
                if dyn.completed or dyn.squashed:
                    cols[i] = None
                    keep = ~(1 << i) & 0xFF
                    for r in range(NUM_ARCH_REGS):
                        plt[r] &= keep
                else:
                    preds.append((predicted, i))
            rct = self._rct[tid]
            t = cycle
            while t < end:
                late_mask = 0
                nxt = end
                for predicted, i in preds:
                    if t >= predicted:
                        late_mask |= 1 << i
                    elif predicted < nxt:
                        nxt = predicted  # next segment boundary
                seg = nxt - t
                if late_mask:
                    for r in range(NUM_ARCH_REGS):
                        if not plt[r] & late_mask:
                            v = rct[r] - seg
                            rct[r] = v if v > 0 else 0
                else:
                    for r in range(NUM_ARCH_REGS):
                        v = rct[r] - seg
                        rct[r] = v if v > 0 else 0
                    if self._earliest_issue[tid]:
                        self._earliest_issue[tid] = \
                            max(0, self._earliest_issue[tid] - seg)
                    if self._earliest_wb[tid]:
                        self._earliest_wb[tid] = \
                            max(0, self._earliest_wb[tid] - seg)
                self._late_mask[tid] = late_mask
                t = nxt


class OracleSteering(SteeringPolicy):
    """Greedy oracle: exact latencies, functional cache query, corrected by
    the observed schedule (paper Section IV-A)."""

    name = "oracle"

    def __init__(self, config: CoreConfig,
                 hierarchy: MemoryHierarchy) -> None:
        self.config = config
        self.hierarchy = hierarchy
        n = config.num_threads
        self._ready = [[0] * NUM_ARCH_REGS for _ in range(n)]  # absolute
        self._earliest_issue = [0] * n
        self._earliest_wb = [0] * n
        self.steered_shelf = 0
        self.steered_iq = 0

    def _latency(self, instr: Instruction) -> int:
        if instr.op is OpClass.LOAD:
            # Functional, non-mutating cache probe — exact latency "oracle".
            return self.hierarchy.probe_data(instr.mem_addr)
        return DEFAULT_LATENCIES[instr.op]

    def decide(self, tid: int, instr: Instruction, cycle: int) -> bool:
        ready = self._ready[tid]
        floor = cycle + 1  # can issue no earlier than the cycle after dispatch
        src_ready = floor
        for s in instr.srcs:
            r = ready[s]
            if r > src_ready:
                src_ready = r
        lat = self._latency(instr)

        iq_issue = src_ready

        # Shelf issue: in-order floor, WAW on the destination's previous
        # writer, and the SSR delay (a shelf instruction may not issue
        # until its execution delay covers outstanding speculation).
        shelf_issue = max(src_ready, self._earliest_issue[tid], floor,
                          self._earliest_wb[tid] - lat)
        if instr.dest is not None and ready[instr.dest] > shelf_issue:
            shelf_issue = ready[instr.dest]

        # Paper Section IV-A: the greedy oracle "steers each instruction
        # according to whether it would issue earlier from the IQ or the
        # shelf (breaking ties in favor of the shelf)".
        to_shelf = shelf_issue <= iq_issue
        if to_shelf:
            self.steered_shelf += 1
            chosen_issue = shelf_issue
        else:
            self.steered_iq += 1
            chosen_issue = iq_issue
        chosen_complete = chosen_issue + lat

        if chosen_issue > self._earliest_issue[tid]:
            self._earliest_issue[tid] = chosen_issue
        if is_speculative_source(instr.op) and \
                chosen_complete > self._earliest_wb[tid]:
            self._earliest_wb[tid] = chosen_complete
        if instr.dest is not None:
            ready[instr.dest] = chosen_complete
        return to_shelf

    # -- schedule corrections from the live simulation -----------------------

    def on_issue(self, dyn: DynInstr, cycle: int) -> None:
        if cycle > self._earliest_issue[dyn.tid]:
            self._earliest_issue[dyn.tid] = cycle

    def on_complete(self, dyn: DynInstr, cycle: int) -> None:
        rec = dyn.rename
        if rec is not None and rec.arch is not None:
            if self._ready[dyn.tid][rec.arch] < cycle:
                self._ready[dyn.tid][rec.arch] = cycle
        if is_speculative_source(dyn.op) and cycle > self._earliest_wb[dyn.tid]:
            self._earliest_wb[dyn.tid] = cycle

    def stats(self) -> dict:
        total = self.steered_shelf + self.steered_iq
        return {
            "steered_shelf": self.steered_shelf,
            "steered_iq": self.steered_iq,
            "shelf_fraction": self.steered_shelf / total if total else 0.0,
        }


class ComparisonSteering(SteeringPolicy):
    """Follow *primary*, also query *shadow*, count disagreements.

    Used to reproduce the paper's "approximately 16% of instructions are
    steered incorrectly by the practical mechanism relative to the oracle"
    measurement (Section V-A) within a single simulation.
    """

    def __init__(self, primary: SteeringPolicy,
                 shadow: SteeringPolicy) -> None:
        self.primary = primary
        self.shadow = shadow
        self.name = f"{primary.name}-vs-{shadow.name}"
        self.agreements = 0
        self.disagreements = 0

    def decide(self, tid: int, instr: Instruction, cycle: int) -> bool:
        p = self.primary.decide(tid, instr, cycle)
        s = self.shadow.decide(tid, instr, cycle)
        if p == s:
            self.agreements += 1
        else:
            self.disagreements += 1
        return p

    def tick(self, cycle: int) -> None:
        self.primary.tick(cycle)
        self.shadow.tick(cycle)

    def tick_many(self, cycle: int, count: int) -> None:
        self.primary.tick_many(cycle, count)
        self.shadow.tick_many(cycle, count)

    def note_dispatched(self, dyn: DynInstr, cycle: int) -> None:
        self.primary.note_dispatched(dyn, cycle)
        self.shadow.note_dispatched(dyn, cycle)

    def on_issue(self, dyn: DynInstr, cycle: int) -> None:
        self.primary.on_issue(dyn, cycle)
        self.shadow.on_issue(dyn, cycle)

    def on_complete(self, dyn: DynInstr, cycle: int) -> None:
        self.primary.on_complete(dyn, cycle)
        self.shadow.on_complete(dyn, cycle)

    def stats(self) -> dict:
        total = self.agreements + self.disagreements
        out = {f"primary_{k}": v
               for k, v in sorted(self.primary.stats().items())}
        out["missteer_fraction"] = (self.disagreements / total) if total else 0.0
        return out


def make_steering(config: CoreConfig, hierarchy: MemoryHierarchy,
                  lanes: bool = False) -> SteeringPolicy:
    """Build the steering policy named by ``config.steering``.

    ``lanes=True`` (the pipeline's lane engine is active) selects the
    plain-list :class:`LanePracticalSteering` twin for ``"practical"`` —
    decision-identical, but without per-cycle numpy dispatch overhead.
    """
    if config.steering == "iq-only":
        return IQOnlySteering()
    if config.steering == "shelf-only":
        return ShelfOnlySteering()
    if config.steering == "practical":
        return LanePracticalSteering(config) if lanes \
            else PracticalSteering(config)
    if config.steering == "oracle":
        return OracleSteering(config, hierarchy)
    raise ValueError(f"unknown steering {config.steering!r}")
