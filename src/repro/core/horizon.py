"""Next-event horizon for the event-driven cycle loop.

The pipeline's reference loop polls every structure every cycle.  During a
long-latency stall (a DRAM miss under a pointer chase, an I-fetch miss,
an SSR drain) nothing can fetch, dispatch, issue, or retire for hundreds
of cycles, yet the poll still burns wall-clock time re-scanning the IQ
and the shelf heads.  :class:`EventHorizon` answers the question the
fast-forward loop needs: *what is the first future cycle at which any
stage could possibly act?*

The contract is asymmetric by design:

* the horizon may be **early** — landing on a cycle where nothing
  happens just simulates that cycle normally (the reference would have
  stepped it anyway), costing speed but never correctness;
* the horizon must never be **late** — every cycle it skips must be one
  the reference implementation would have stepped through without any
  state change beyond the per-cycle ticks (SSR/RCT countdowns, occupancy
  sums, round-robin rotation), which :meth:`Pipeline._fast_forward`
  applies in one exact batch.

Whenever a stage could act *this* cycle — or would perform a side effect
while merely checking (the run-boundary IQ→shelf SSR copy, a first-time
steering decision) — :meth:`next_event` returns the current cycle and
the pipeline takes an ordinary :meth:`~repro.core.pipeline.Pipeline.step`.

``REPRO_FASTFORWARD=0`` disables the whole mechanism, keeping the
polling loop as the executable reference; results are bit-identical
either way (see ``docs/performance.md`` and
``tests/test_fastforward_equivalence.py``).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro import envvars
from repro.core.scoreboard import UNWRITTEN
from repro.isa.opcodes import OpClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dynamic import DynInstr
    from repro.core.pipeline import Pipeline
    from repro.core.thread_context import ThreadContext

#: "No scheduled event" sentinel — beyond any reachable cycle count.
INFINITY = 1 << 62


def fastforward_enabled() -> bool:
    """Is event-driven fast-forward requested (default: yes)?

    ``REPRO_FASTFORWARD=0`` selects the per-cycle polling loop — the
    reference implementation fast-forward must stay bit-identical to.
    Deliberately *not* a :class:`~repro.core.config.CoreConfig` field:
    the mode must not enter result-store digests, exactly like
    ``REPRO_SANITIZE``.
    """
    return envvars.enabled("REPRO_FASTFORWARD")


class EventHorizon:
    """Aggregates per-structure next-event queries for one pipeline."""

    __slots__ = ("pipe",)

    def __init__(self, pipeline: "Pipeline") -> None:
        self.pipe = pipeline

    # ------------------------------------------------------------------

    def next_event(self, cycle: int) -> int:
        """First cycle >= *cycle* at which any stage could act.

        Returns *cycle* itself when the pipeline is active right now (the
        caller must take a normal step); :data:`INFINITY` when nothing is
        scheduled at all (a true deadlock — the caller's deadlock guard
        bounds the jump).
        """
        pipe = self.pipe
        horizon = INFINITY

        # Writeback: the completion heap is the master event queue.
        heap = pipe._completions
        if heap:
            due = heap[0][0]
            if due <= cycle:
                return cycle
            horizon = due

        for thread in pipe.threads:
            # Held shelf writebacks and store-buffer drains re-run every
            # cycle and touch the cache hierarchy: never skip past them.
            if thread.shelf_wb_pending:
                return cycle
            if thread.lsq.store_buffer.occupancy:
                return cycle
            # A completed ROB head retires (or re-polls its retire gates).
            if thread.rob and thread.rob[0].completed:
                return cycle

        nxt = self._dispatch_horizon(cycle)
        if nxt <= cycle:
            return cycle
        if nxt < horizon:
            horizon = nxt

        nxt = self._fetch_horizon(cycle)
        if nxt <= cycle:
            return cycle
        if nxt < horizon:
            horizon = nxt

        nxt = self._issue_horizon(cycle)
        if nxt <= cycle:
            return cycle
        if nxt < horizon:
            horizon = nxt

        # Outstanding cache fills (conservative: fills surface through the
        # completion heap anyway, but an early landing is always safe).
        nxt = pipe.hierarchy.next_fill_event(cycle)
        if nxt < horizon:
            horizon = nxt
        return horizon

    # ------------------------------------------------------------------
    # per-stage components
    # ------------------------------------------------------------------

    def _dispatch_horizon(self, cycle: int) -> int:
        pipe = self.pipe
        horizon = INFINITY
        for thread in pipe.threads:
            if not thread.frontend:
                continue
            head = thread.frontend[0]
            ready = head.frontend_ready
            if ready > cycle:
                if ready < horizon:
                    horizon = ready
                continue
            if head.op is OpClass.BARRIER and thread.in_flight:
                continue  # drains via retire events
            if head.steer_cached is None:
                # First dispatch attempt runs the steering policy, which
                # mutates predictor state — that cycle must be simulated.
                return cycle
            if not self._dispatch_blocked(thread, head):
                return cycle
            # Structurally blocked: ROB/IQ/shelf/free-list/LSQ space frees
            # only on retire or issue events (always active cycles).
        return horizon

    def _dispatch_blocked(self, thread: "ThreadContext",
                          dyn: "DynInstr") -> bool:
        """Side-effect-free replica of :meth:`Pipeline._dispatch_one`'s
        structural gating for a steer-cached instruction."""
        pipe = self.pipe
        if dyn.steer_cached:
            if pipe._shelf_path_free(thread, dyn):
                return False
            if pipe.steering.name == "shelf-only":
                return True  # no IQ fallback under shelf-only steering
            return not pipe._iq_path_free(thread, dyn)
        return not pipe._iq_path_free(thread, dyn)

    def _fetch_horizon(self, cycle: int) -> int:
        """Mirror of :meth:`ThreadContext.fetchable`, split into now /
        at-gate-expiry / event-gated."""
        horizon = INFINITY
        for thread in self.pipe.threads:
            if thread.trace_done or thread.pending_branch is not None:
                continue  # resolves via branch completion (an event)
            if len(thread.frontend) >= \
                    thread.config.frontend_buffer_per_thread:
                continue  # space frees at dispatch (an active cycle)
            blocked = thread.fetch_blocked_until
            if blocked <= cycle:
                return cycle
            if blocked < horizon:
                horizon = blocked
        return horizon

    def _issue_horizon(self, cycle: int) -> int:
        pipe = self.pipe
        horizon = INFINITY

        # Wakeup-scheduled IQ entries not yet data-ready.  The lane
        # engine keeps its own (cycle, slot) heap and slot-id ready list;
        # the object loop keeps (cycle, gseq, dyn) / dyn lists.  Both
        # schedules are identical by construction.
        eng = pipe._lane_engine
        if eng is not None:
            heap = eng.heap
            dyn_of = eng.dyn_of
            while heap:
                d = dyn_of[heap[0][1]]
                if d.squashed or d.issued:
                    heapq.heappop(heap)
                else:
                    break
            ready_iq = [dyn_of[g] for g in eng.ready]
            if eng.ready_ld:
                ready_iq.extend(dyn_of[g] for g in eng.ready_ld)
        else:
            heap = pipe._ready_heap
            while heap and (heap[0][2].squashed or heap[0][2].issued):
                heapq.heappop(heap)
            ready_iq = pipe._ready_iq
        if heap:
            sched = heap[0][0]
            if sched <= cycle:
                return cycle
            if sched < horizon:
                horizon = sched

        # Data-ready IQ entries held by per-entry gates.
        fu = pipe.fu
        for dyn in ready_iq:
            if dyn.squashed or dyn.issued:
                continue
            at = cycle
            if dyn.is_load:
                waiting = dyn.waiting_store
                if waiting is not None and not (waiting.executed
                                                or waiting.squashed):
                    continue  # store-set gate: resolves at store writeback
                if dyn.retry_after > at:
                    at = dyn.retry_after
            free = fu.next_free(dyn.op)
            if free > at:
                at = free
            if at <= cycle:
                return cycle
            if at < horizon:
                horizon = at

        for thread in pipe.threads:
            at = self._shelf_head_horizon(thread, cycle)
            if at <= cycle:
                return cycle
            if at < horizon:
                horizon = at
        return horizon

    def _shelf_head_horizon(self, thread: "ThreadContext",
                            cycle: int) -> int:
        """Earliest cycle the shelf head could pass
        :meth:`Pipeline._shelf_eligible` (INFINITY when event-gated).

        ``issue_tracker.head`` stands in for the start-of-cycle snapshot:
        no issues happen during an idle stretch, so the two agree at the
        landing cycle under either same-cycle-issue assumption.
        """
        pipe = self.pipe
        head = thread.shelf.head
        if head is None:
            return INFINITY
        if thread.issue_tracker.head <= head.last_iq_rob_idx:
            return INFINITY  # in-order gate: opens on IQ issues (events)
        if head.first_in_run and not head.ssr_copied:
            # The reference performs the run-boundary IQ→shelf SSR copy
            # the first cycle the gate passes — a side effect of checking
            # eligibility.  Never skip that cycle.
            return cycle
        scoreboard = pipe.scoreboard
        at = scoreboard.earliest_issue(head.src_tags)
        if head.prev_tag is not None:
            waw = scoreboard.ready_at(head.prev_tag)
            if waw > at:
                at = waw
        if at >= UNWRITTEN:
            return INFINITY  # producer unissued: wakes via issue events
        ssr_wait = cycle + thread.ssr.cycles_until_shelf_issue(head.latency)
        if ssr_wait > at:
            at = ssr_wait
        if head.is_load:
            if head.retry_after > at:
                at = head.retry_after
            if thread.lsq.has_unexecuted_elder_store(head.gseq):
                return INFINITY  # elder store executes at writeback
        if head.is_store and not thread.lsq.store_buffer.can_accept(
                head.instr.mem_addr):
            return INFINITY  # buffer space frees on drains (active cycles)
        free = pipe.fu.next_free(head.op)
        if free > at:
            at = free
        return at if at > cycle else cycle
