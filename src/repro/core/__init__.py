"""The hybrid shelf/IQ out-of-order SMT core — the paper's contribution.

Public surface:

* :class:`CoreConfig` — all microarchitectural parameters (Table I);
* :class:`Pipeline` / :func:`simulate` — the cycle-level simulator;
* :class:`SimResult` — timing, per-thread CPI, event counts;
* steering policies via :func:`make_steering` or ``CoreConfig.steering``.
"""

from repro.core.config import CoreConfig
from repro.core.dynamic import DynInstr
from repro.core.pipeline import DeadlockError, Pipeline, simulate
from repro.core.sanitizer import Sanitizer, SanitizerError, sanitize_enabled
from repro.core.stats import EventCounts, SimResult, ThreadResult
from repro.core.steering import (
    ComparisonSteering,
    IQOnlySteering,
    OracleSteering,
    PracticalSteering,
    ShelfOnlySteering,
    SteeringPolicy,
    make_steering,
)
from repro.core.steering_ext import AdaptiveSteering, CoarseGrainSteering

__all__ = [
    "CoreConfig",
    "DynInstr",
    "DeadlockError",
    "Pipeline",
    "Sanitizer",
    "SanitizerError",
    "sanitize_enabled",
    "simulate",
    "EventCounts",
    "SimResult",
    "ThreadResult",
    "ComparisonSteering",
    "IQOnlySteering",
    "OracleSteering",
    "PracticalSteering",
    "ShelfOnlySteering",
    "SteeringPolicy",
    "make_steering",
    "AdaptiveSteering",
    "CoarseGrainSteering",
]
