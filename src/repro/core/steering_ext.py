"""Steering extensions beyond the paper's four policies.

* :class:`CoarseGrainSteering` — applies a base policy's recommendations
  in fixed-size *blocks* per thread, emulating the coarse-grained hybrid
  INO/OOO designs the paper argues against ([3], [4], MorphCore [23]):
  those switch modes at hundred- to thousand-instruction granularity and
  therefore "cannot exploit the in-sequence phenomenon without
  sacrificing performance on reordered instructions" (Section I).  At
  granularity 1 it degenerates to the base policy; sweeping granularity
  quantifies the paper's central fine-interleaving claim (series lengths
  average 5-20 instructions, Figure 2).

* :class:`AdaptiveSteering` — the paper's escape hatch made concrete:
  "the shelf can easily be disabled by steering all instructions to the
  IQ if it causes pathological behavior in a particular workload"
  (Section V-C).  Duty-cycles each thread between shelf-enabled and
  shelf-disabled probe epochs, locks into whichever completed more
  instructions, and re-probes periodically.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.dynamic import DynInstr
from repro.core.steering import SteeringPolicy
from repro.isa.instruction import Instruction


class CoarseGrainSteering(SteeringPolicy):
    """Blockwise application of a base policy's decisions."""

    def __init__(self, base: SteeringPolicy, num_threads: int,
                 granularity: int = 1000) -> None:
        if granularity < 1:
            raise ValueError("granularity must be >= 1")
        self.base = base
        self.granularity = granularity
        self.name = f"coarse({base.name},{granularity})"
        self._votes = [0] * num_threads      # shelf votes in current block
        self._count = [0] * num_threads      # instructions in current block
        self._mode = [False] * num_threads   # block decision being applied
        self.steered_shelf = 0
        self.steered_iq = 0

    def decide(self, tid: int, instr: Instruction, cycle: int) -> bool:
        # The base policy still observes every instruction (its tables
        # must track the schedule), but its answer only takes effect at
        # block boundaries.
        vote = self.base.decide(tid, instr, cycle)
        decision = self._mode[tid] if self.granularity > 1 else vote
        self._votes[tid] += int(vote)
        self._count[tid] += 1
        if self._count[tid] >= self.granularity:
            # Majority of the finished block decides the next block's mode.
            self._mode[tid] = self._votes[tid] * 2 >= self._count[tid]
            self._votes[tid] = 0
            self._count[tid] = 0
        if decision:
            self.steered_shelf += 1
        else:
            self.steered_iq += 1
        return decision

    def tick(self, cycle: int) -> None:
        self.base.tick(cycle)

    def note_dispatched(self, dyn: DynInstr, cycle: int) -> None:
        self.base.note_dispatched(dyn, cycle)

    def on_issue(self, dyn: DynInstr, cycle: int) -> None:
        self.base.on_issue(dyn, cycle)

    def on_complete(self, dyn: DynInstr, cycle: int) -> None:
        self.base.on_complete(dyn, cycle)

    def stats(self) -> dict:
        total = self.steered_shelf + self.steered_iq
        return {
            "steered_shelf": self.steered_shelf,
            "steered_iq": self.steered_iq,
            "shelf_fraction": self.steered_shelf / total if total else 0.0,
            "granularity": float(self.granularity),
        }


class AdaptiveSteering(SteeringPolicy):
    """Per-thread shelf enable/disable driven by measured progress."""

    #: epoch phases
    _PROBE_ON, _PROBE_OFF, _LOCKED = range(3)

    def __init__(self, base: SteeringPolicy, num_threads: int,
                 epoch_cycles: int = 2000, locked_epochs: int = 8) -> None:
        self.base = base
        self.name = f"adaptive({base.name})"
        self.epoch_cycles = epoch_cycles
        self.locked_epochs = locked_epochs
        n = num_threads
        self._phase = [self._PROBE_ON] * n
        self._enabled = [True] * n
        self._completions = [0] * n
        self._probe_on_score = [0] * n
        self._locked_left = [0] * n
        self._epoch_start = 0
        self.disable_decisions = 0

    def decide(self, tid: int, instr: Instruction, cycle: int) -> bool:
        vote = self.base.decide(tid, instr, cycle)
        return vote and self._enabled[tid]

    def on_complete(self, dyn: DynInstr, cycle: int) -> None:
        self.base.on_complete(dyn, cycle)
        self._completions[dyn.tid] += 1

    def tick(self, cycle: int) -> None:
        self.base.tick(cycle)
        if cycle - self._epoch_start < self.epoch_cycles:
            return
        self._epoch_start = cycle
        for tid in range(len(self._phase)):
            phase = self._phase[tid]
            done = self._completions[tid]
            self._completions[tid] = 0
            if phase == self._PROBE_ON:
                self._probe_on_score[tid] = done
                self._enabled[tid] = False
                self._phase[tid] = self._PROBE_OFF
            elif phase == self._PROBE_OFF:
                use_shelf = self._probe_on_score[tid] >= done
                self._enabled[tid] = use_shelf
                if not use_shelf:
                    self.disable_decisions += 1
                self._phase[tid] = self._LOCKED
                self._locked_left[tid] = self.locked_epochs
            else:
                self._locked_left[tid] -= 1
                if self._locked_left[tid] <= 0:
                    self._enabled[tid] = True
                    self._phase[tid] = self._PROBE_ON

    def note_dispatched(self, dyn: DynInstr, cycle: int) -> None:
        self.base.note_dispatched(dyn, cycle)

    def on_issue(self, dyn: DynInstr, cycle: int) -> None:
        self.base.on_issue(dyn, cycle)

    def stats(self) -> dict:
        out = dict(self.base.stats())
        out["adaptive_disables"] = float(self.disable_decisions)
        out["threads_shelf_enabled"] = float(sum(self._enabled))
        return out
