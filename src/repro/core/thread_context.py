"""Per-SMT-thread pipeline state."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.core.config import CoreConfig
from repro.core.dynamic import DynInstr
from repro.core.issue_tracking import IssueTracker
from repro.core.lsq import LoadStoreQueues
from repro.core.shelf import ShelfPartition
from repro.core.ssr import SpeculationShiftRegisters
from repro.trace.trace import Trace, TraceCursor


class ThreadContext:
    """Everything one hardware thread owns: its trace cursor, front-end
    buffer, ROB partition, LQ/SQ partition, shelf partition, trackers and
    speculation registers."""

    __slots__ = (
        "tid", "trace", "cursor", "config",
        "frontend", "fetch_blocked_until", "ifetch_pending", "pending_branch",
        "rob", "issue_tracker", "order_tracker", "lsq", "shelf", "ssr",
        "in_flight", "shelf_wb_pending", "spec_inflight",
        "icount", "retired", "finish_cycle",
        "measure_start_cycle", "measure_start_retired",
        "last_dispatch_was_shelf", "head_snapshot", "insequence_flags",
    )

    def __init__(self, tid: int, trace: Trace, config: CoreConfig) -> None:
        self.tid = tid
        self.trace = trace
        self.cursor = TraceCursor(trace)
        self.config = config

        #: fetched instructions waiting out the fetch-to-dispatch pipe.
        self.frontend: Deque[DynInstr] = deque()
        self.fetch_blocked_until = 0          #: I-cache miss stall
        #: an I-miss fill is en route: when the stall expires the block is
        #: delivered to the fetch unit directly (no re-lookup — avoids
        #: livelock when threads thrash an I-cache set).
        self.ifetch_pending = False
        self.pending_branch: Optional[DynInstr] = None  #: mispredict gate

        #: IQ instructions in program order (the thread's ROB partition).
        self.rob: Deque[DynInstr] = deque()
        self.issue_tracker = IssueTracker()   #: IQ issue bitvector (III-A)
        self.order_tracker = IssueTracker()   #: all instrs (classification)
        self.lsq = LoadStoreQueues(
            config.lq_per_thread, config.sq_per_thread,
            config.store_buffer_lines,
            config.hierarchy.line_size.bit_length() - 1,
            coalesce=config.memory_model == "relaxed")
        self.shelf = ShelfPartition(max(config.shelf_per_thread, 1)) \
            if config.shelf_entries else ShelfPartition(0)
        self.ssr = SpeculationShiftRegisters(dual=config.dual_ssr)

        #: all dispatched, unretired instructions in program order.
        self.in_flight: List[DynInstr] = []
        #: shelf instructions whose execution finished but whose writeback
        #: is held until no elder instruction can still squash them.
        self.shelf_wb_pending: List[DynInstr] = []

        #: elder speculation horizon for classification:
        #: (order_idx, resolve_cycle) of speculative instrs in flight.
        self.spec_inflight: List[Tuple[int, int]] = []

        self.icount = 0            #: ICOUNT statistic (front end + unissued)
        self.retired = 0
        self.finish_cycle: Optional[int] = None
        #: measurement-region origin (moved forward by warm-up resets).
        self.measure_start_cycle = 0
        self.measure_start_retired = 0
        self.last_dispatch_was_shelf = False
        self.head_snapshot = 0     #: issue-tracker head at cycle start

        #: classification output: 1 in-sequence, 0 reordered, 2 unknown.
        self.insequence_flags = bytearray(b"\x02" * len(trace))

    @property
    def trace_done(self) -> bool:
        return self.cursor.exhausted

    @property
    def finished(self) -> bool:
        return self.retired >= len(self.trace)

    def fetchable(self, cycle: int) -> bool:
        return (not self.trace_done
                and cycle >= self.fetch_blocked_until
                and self.pending_branch is None
                and len(self.frontend) < self.config.frontend_buffer_per_thread)

    def rob_reservation(self) -> Optional[int]:
        """Shelf squash index at the head of the ROB — the shelf
        reservation pointer (paper Section III-B)."""
        if not self.rob:
            return None
        return self.rob[0].shelf_squash_idx

    def elder_spec_resolution(self, order_idx: int, cycle: int) -> int:
        """Latest unresolved resolution cycle among elder speculative
        instructions (classification's speculation-dependence check)."""
        worst = 0
        alive = []
        for idx, resolve in self.spec_inflight:
            if resolve <= cycle:
                continue  # resolved; prune
            alive.append((idx, resolve))
            if idx < order_idx and resolve > worst:
                worst = resolve
        self.spec_inflight = alive
        return worst
