"""The shelf: a per-thread FIFO issue buffer (paper Sections II-III).

The shelf holds instructions between dispatch and issue, like the IQ, but
instructions may only issue from its head, in program order.  Shelf
instructions allocate no ROB entry, no new physical register, and no LQ/SQ
entry.

Two resource spaces are deliberately decoupled (paper Section III-B):

* the **entry** — the expensive storage slot, recycled as soon as the
  instruction *issues*;
* the **virtual index** — a name used by the ROB (shelf squash index /
  reservation pointer) and the retire bitvector, recycled only once no
  elder ROB entry references it.  The index space is double the entry
  count; the MSB is ignored when addressing entries.

We model virtual indices as unbounded monotone integers and enforce the
paper's capacity constraints on differences, which keeps every comparison
a plain integer compare (no wrap-around arithmetic to get subtly wrong).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.dynamic import DynInstr


class ShelfPartition:
    """One thread's shelf FIFO plus its virtual index space."""

    __slots__ = ("entries", "index_space", "fifo", "tail", "retire_ptr",
                 "_retired", "peak_occupancy")

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self.index_space = 2 * entries
        self.fifo: Deque[DynInstr] = deque()  #: dispatched, not yet issued
        self.tail = 0          #: next virtual index to allocate
        self.retire_ptr = 0    #: eldest unretired virtual index
        self._retired = set()  #: retired indices above the pointer
        self.peak_occupancy = 0

    # -- capacity ---------------------------------------------------------

    def can_dispatch(self, rob_reservation: Optional[int]) -> bool:
        """True if both an entry and a virtual index are available.

        *rob_reservation* is the shelf squash index stored at the head of
        the thread's ROB (the shelf reservation pointer); ``None`` when the
        ROB partition is empty.
        """
        if len(self.fifo) >= self.entries:
            return False
        floor = self.retire_ptr
        if rob_reservation is not None and rob_reservation < floor:
            floor = rob_reservation
        return self.tail - floor < self.index_space

    # -- dispatch / issue -----------------------------------------------------

    def allocate(self, dyn: DynInstr) -> int:
        """Append *dyn* at the tail; returns its virtual index."""
        idx = self.tail
        self.tail += 1
        dyn.shelf_idx = idx
        self.fifo.append(dyn)
        if len(self.fifo) > self.peak_occupancy:
            self.peak_occupancy = len(self.fifo)
        return idx

    @property
    def head(self) -> Optional[DynInstr]:
        return self.fifo[0] if self.fifo else None

    def pop_issued(self) -> DynInstr:
        """Head issued: free its entry immediately (index stays live)."""
        return self.fifo.popleft()

    # -- retirement --------------------------------------------------------

    def mark_retired(self, idx: int) -> None:
        """Shelf instruction with virtual index *idx* wrote back (retired);
        advance the retire pointer over the contiguous retired prefix."""
        self._retired.add(idx)
        while self.retire_ptr in self._retired:
            self._retired.remove(self.retire_ptr)
            self.retire_ptr += 1

    def all_retired_through(self, idx: int) -> bool:
        """ROB retire gate: every shelf index < *idx* has retired (paper:
        "once the shelf retire pointer matches or exceeds the stored shelf
        index, the ROB can retire the next IQ instruction")."""
        return self.retire_ptr >= idx

    # -- squash -----------------------------------------------------------

    def squash_from(self, min_idx: int) -> None:
        """Roll the tail back to *min_idx*; drop younger FIFO occupants.

        Callers squash a program-order suffix, so every index >= min_idx
        is dead.  The SSR/writeback-hold machinery guarantees none of them
        retired (asserted), so the retire pointer never moves backwards.
        """
        while self.fifo and self.fifo[-1].shelf_idx >= min_idx:
            self.fifo.pop()
        assert not any(i >= min_idx for i in self._retired), \
            "squashed shelf index already retired: writeback hold violated"
        assert self.retire_ptr <= min_idx, \
            "retire pointer passed a squashed shelf index"
        self.tail = min_idx

    # -- introspection -----------------------------------------------------

    def audit(self) -> list:
        """Sanitizer check: FIFO program order, retire-bitvector and
        virtual-index wraparound consistency.

        Returns human-readable problem strings (empty = healthy).
        """
        problems = []
        if self.entries and len(self.fifo) > self.entries:
            problems.append(f"occupancy {len(self.fifo)} exceeds "
                            f"{self.entries} entries")
        prev = None
        for dyn in self.fifo:
            idx = dyn.shelf_idx
            if idx is None:
                problems.append(f"FIFO occupant {dyn!r} has no virtual index")
                continue
            if prev is not None and idx <= prev:
                problems.append(f"FIFO order broken: index {idx} follows "
                                f"{prev} (issue would leave program order)")
            prev = idx
            if idx < self.retire_ptr or idx >= self.tail:
                problems.append(f"FIFO index {idx} outside the live window "
                                f"[{self.retire_ptr}, {self.tail})")
            if idx in self._retired:
                problems.append(f"unissued index {idx} already marked "
                                f"retired")
        if self.retire_ptr > self.tail:
            problems.append(f"retire pointer {self.retire_ptr} passed the "
                            f"tail {self.tail}")
        if self.entries and self.tail - self.retire_ptr > self.index_space:
            problems.append(
                f"virtual index overflow: {self.tail - self.retire_ptr} "
                f"live indices in a {self.index_space}-wide space "
                f"(wraparound would alias)")
        stray = sorted(i for i in self._retired
                       if not self.retire_ptr <= i < self.tail)
        if stray:
            problems.append(f"retire bitvector indices outside "
                            f"[{self.retire_ptr}, {self.tail}): {stray[:8]}")
        return problems

    @property
    def occupancy(self) -> int:
        return len(self.fifo)

    @property
    def live_indices(self) -> int:
        return self.tail - self.retire_ptr

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ShelfPartition({len(self.fifo)}/{self.entries} entries, "
                f"idx[{self.retire_ptr},{self.tail}))")
