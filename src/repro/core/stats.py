"""Event counters and simulation results.

Event counts are the interface between the timing model and the energy
model: every access to a modelled structure increments a counter here, and
:mod:`repro.energy` prices them (McPAT-style accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(slots=True)
class EventCounts:
    """Per-structure dynamic event counts for one simulation.

    ``slots=True``: the counters are incremented on every pipeline
    event, and slot access is measurably cheaper than dict access on
    that path (both loop modes benefit equally).
    """

    fetches: int = 0
    bpred_lookups: int = 0
    branch_mispredicts: int = 0
    renames_iq: int = 0
    renames_shelf: int = 0
    steer_forced_iq: int = 0  #: shelf decision overridden by resource shortage

    iq_writes: int = 0
    iq_wakeups: int = 0       #: tag broadcasts into the IQ CAM
    iq_issues: int = 0
    shelf_writes: int = 0
    shelf_issues: int = 0

    rob_writes: int = 0
    rob_retires: int = 0
    prf_reads: int = 0
    prf_writes: int = 0

    lq_writes: int = 0
    sq_writes: int = 0
    lq_searches: int = 0      #: associative scans (violation checks)
    sq_searches: int = 0      #: associative scans (forwarding)
    forwards: int = 0
    speculative_loads: int = 0
    violations: int = 0
    squashes: int = 0
    squashed_instrs: int = 0

    storebuf_inserts: int = 0
    storebuf_coalesced: int = 0
    storebuf_drains: int = 0

    fu_ops: int = 0
    barriers: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


@dataclass
class ThreadResult:
    """Per-thread outcome of one simulation."""

    tid: int
    benchmark: str
    trace_length: int
    retired: int
    cpi: float
    finish_cycle: Optional[int]  #: cycle the thread retired its last instr
    #: per trace position: 1 in-sequence, 0 reordered, 2 never issued/valid.
    insequence_flags: bytearray = field(repr=False, default_factory=bytearray)

    @property
    def ipc(self) -> float:
        return 1.0 / self.cpi if self.cpi else float("inf")


@dataclass
class SimResult:
    """Complete outcome of one :meth:`Pipeline.run`."""

    config_label: str
    cycles: int
    threads: List[ThreadResult]
    events: EventCounts
    cache_stats: Dict[str, object]
    steering_stats: Dict[str, float]
    occupancy: Dict[str, float]  #: average structure occupancies
    bpred_accuracy: float

    @property
    def total_retired(self) -> int:
        return sum(t.retired for t in self.threads)

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle."""
        return self.total_retired / self.cycles if self.cycles else 0.0

    def cpi_of(self, tid: int) -> float:
        return self.threads[tid].cpi

    def as_record(self) -> Dict[str, object]:
        """Canonical JSON-safe record of this result.

        The single serialization used by campaign checkpoints and the
        simulation service's result API, so a point simulated through
        either path produces a byte-identical record.
        """
        return {
            "cycles": self.cycles,
            "ipc": self.ipc,
            "threads": [{"benchmark": t.benchmark, "retired": t.retired,
                         "cpi": t.cpi} for t in self.threads],
            "events": self.events.as_dict(),
            "steering": self.steering_stats,
            "bpred_accuracy": self.bpred_accuracy,
            "occupancy": self.occupancy,
        }

    def summary(self) -> str:
        """Multi-line human-readable digest (used by examples)."""
        lines = [f"{self.config_label}: {self.cycles} cycles, "
                 f"IPC {self.ipc:.3f}"]
        for t in self.threads:
            lines.append(f"  t{t.tid} {t.benchmark:<14} retired {t.retired:>7} "
                         f"CPI {t.cpi:.3f}")
        ev = self.events
        lines.append(f"  mispredicts {ev.branch_mispredicts}, "
                     f"violations {ev.violations}, "
                     f"shelf issues {ev.shelf_issues}, "
                     f"iq issues {ev.iq_issues}")
        return "\n".join(lines)
