"""Mutable per-in-flight-instruction state.

One :class:`DynInstr` is created each time an instruction enters the
pipeline (a squashed-and-replayed instruction gets a fresh record with the
same per-thread sequence number but a younger global age).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.rename.rat import RenameRecord

#: Sentinel for "not yet" cycle fields (kept for external consumers;
#: the cycle fields themselves are now lazily written — see below).
NEVER = -1

#: Pipeline stages in instruction-flow order — the clock of the
#: write-before-read contract.  A slot owned by stage *s* may be read
#: by any stage at or after *s* in this tuple; an earlier-stage read is
#: a contract violation (``repro check``'s SLOT202).
STAGE_ORDER: Tuple[str, ...] = ("fetch", "dispatch", "issue",
                                "writeback", "retire")

#: Lazy slot -> owning stage: the stage that writes the value before
#: any later stage can observe the instruction.  This is the
#: machine-readable image of the :class:`DynInstr` docstring contract;
#: ``repro check``'s SLOT201 verifies it stays equal to
#: ``__slots__`` minus the fields ``__init__`` assigns.
SLOT_OWNERS: Dict[str, str] = {
    "frontend_ready": "fetch",
    # dispatch (IQ dispatch, shelf dispatch, and the LSQ hooks)
    "src_tags": "dispatch", "dest_tag": "dispatch", "dest_pri": "dispatch",
    "prev_tag": "dispatch", "order_idx": "dispatch",
    "dispatch_cycle": "dispatch",
    "rob_idx": "dispatch", "shelf_squash_idx": "dispatch",
    "waiting_store": "dispatch", "wake_waits": "dispatch",
    "shelf_idx": "dispatch", "last_iq_rob_idx": "dispatch",
    "first_in_run": "dispatch", "ssr_copied": "dispatch",
    "lq_slot": "dispatch", "sq_slot": "dispatch",
    "retry_after": "dispatch",
    # issue
    "issue_cycle": "issue", "complete_cycle": "issue",
    "mem_latency": "issue", "forwarded_from": "issue",
    "forwarded_seq": "issue", "speculative_load": "issue",
    # retire
    "retire_cycle": "retire",
}

#: The declared lazy set: slots deliberately left unset by ``__init__``.
LAZY_SLOTS = frozenset(SLOT_OWNERS)

#: Lazy slots the owning stage only writes on *some* paths (IQ-only,
#: shelf-only, loads-only, mode-gated...).  Even a correctly-staged
#: reader may observe them unset, so diagnostic modules (the sanitizer,
#: analysis tools) must probe every lazy slot through
#: :func:`slot_or_none` — ``repro check``'s SLOT203.
CONDITIONAL_SLOTS = frozenset({
    "rob_idx", "shelf_squash_idx", "waiting_store", "wake_waits",  # IQ
    "shelf_idx", "last_iq_rob_idx", "first_in_run", "ssr_copied",  # shelf
    "lq_slot", "sq_slot", "retry_after",                           # LSQ
    "mem_latency", "forwarded_from", "forwarded_seq",              # loads
    "speculative_load",
})


def slot_or_none(dyn: "DynInstr", name: str, default=None):
    """Diagnostic read of a lazily-written slot, defaulting when the
    owning stage never ran.

    The one sanctioned way for diagnostic readers (the sanitizer's
    shelf audit, the retire log's ``forwarded_seq``, LQ violation
    scans) to probe a slot on an instruction whose owning stage may
    have been skipped.  Asserts the slot really is in the declared lazy
    set, so a typo'd or newly-eager field fails loudly instead of
    silently defaulting forever.
    """
    assert name in LAZY_SLOTS, \
        f"{name!r} is not a declared lazy DynInstr slot"
    return getattr(dyn, name, default)


class DynInstr:
    """In-flight instruction state threaded through every pipeline stage.

    **Write-before-read contract.**  Only the fields every stage may read
    on a freshly fetched instruction are initialized in ``__init__``; one
    :class:`DynInstr` is built per fetched instruction, so the constructor
    is on the hottest shared path of both loop modes and every avoidable
    slot store costs real time.  All other slots are written by the stage
    that creates the value, before any consumer can observe the
    instruction:

    * ``frontend_ready`` — fetch, immediately after construction;
    * ``src_tags``/``dest_tag``/``dest_pri``/``prev_tag``/``order_idx``/
      ``dispatch_cycle`` — dispatch (readers only see dispatched instrs);
    * ``rob_idx``/``shelf_squash_idx``/``waiting_store``/``wake_waits``
      — IQ dispatch;
      ``shelf_idx``/``last_iq_rob_idx``/``first_in_run``/``ssr_copied`` —
      shelf dispatch; ``lq_slot``/``sq_slot``/``retry_after`` — the LSQ
      dispatch hooks;
    * ``issue_cycle``/``complete_cycle``/``speculative_load``/
      ``mem_latency``/``forwarded_from``/``forwarded_seq`` — issue;
    * ``retire_cycle`` — retire.

    The machine-readable image of this contract lives in
    :data:`SLOT_OWNERS` / :data:`CONDITIONAL_SLOTS` above, and ``repro
    check`` (SLOT201–204) keeps the two in sync with the actual reads
    and writes.  Diagnostic readers that may legitimately probe a field
    on an instruction whose owning stage never ran (the sanitizer's
    shelf audit, the retire log's ``forwarded_seq``, LQ violation
    scans) use :func:`slot_or_none`.
    """

    __slots__ = (
        "tid", "seq", "gseq", "instr", "op", "latency",
        "frontend_ready", "mispredicted",
        "to_shelf", "rename", "src_tags", "dest_tag", "dest_pri", "prev_tag",
        "rob_idx", "shelf_idx", "last_iq_rob_idx", "shelf_squash_idx",
        "first_in_run", "ssr_copied", "order_idx", "steer_cached",
        "dispatch_cycle", "issue_cycle", "complete_cycle", "retire_cycle",
        "issued", "executed", "completed", "retired", "squashed",
        "mem_latency", "forwarded_from", "forwarded_seq",
        "speculative_load", "retry_after",
        "lq_slot", "sq_slot", "waiting_store", "wake_waits",
    )

    def __init__(self, tid: int, seq: int, gseq: int,
                 instr: Instruction, latency: int) -> None:
        self.tid = tid
        self.seq = seq          #: per-thread trace position (stable)
        self.gseq = gseq        #: global fetch order (age for select)
        self.instr = instr
        self.op: OpClass = instr.op
        self.latency = latency  #: base execution latency

        # Fields any stage may read before their owning stage ran; all
        # other slots follow the write-before-read contract (class
        # docstring) and are deliberately left unset here.
        self.mispredicted = False    #: branch predicted wrong at fetch
        self.to_shelf = False
        self.rename: Optional[RenameRecord] = None
        self.steer_cached: Optional[bool] = None  #: steering decision memo
        self.issued = False
        self.executed = False    #: memory ops: address/data produced
        self.completed = False
        self.retired = False
        self.squashed = False

    # -- convenience --------------------------------------------------------

    @property
    def is_load(self) -> bool:
        return self.op is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.op is OpClass.LOAD or self.op is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.op is OpClass.BRANCH

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = "shelf" if self.to_shelf else "iq"
        state = ("retired" if self.retired else
                 "completed" if self.completed else
                 "issued" if self.issued else "waiting")
        return (f"DynInstr(t{self.tid}#{self.seq} {self.op.name} "
                f"{where} {state})")
