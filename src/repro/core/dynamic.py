"""Mutable per-in-flight-instruction state.

One :class:`DynInstr` is created each time an instruction enters the
pipeline (a squashed-and-replayed instruction gets a fresh record with the
same per-thread sequence number but a younger global age).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.rename.rat import RenameRecord

#: Sentinel for "not yet" cycle fields.
NEVER = -1


class DynInstr:
    """In-flight instruction state threaded through every pipeline stage."""

    __slots__ = (
        "tid", "seq", "gseq", "instr", "op", "latency",
        "frontend_ready", "mispredicted",
        "to_shelf", "rename", "src_tags", "dest_tag", "dest_pri", "prev_tag",
        "rob_idx", "shelf_idx", "last_iq_rob_idx", "shelf_squash_idx",
        "first_in_run", "ssr_copied", "order_idx", "steer_cached",
        "dispatch_cycle", "issue_cycle", "complete_cycle", "retire_cycle",
        "issued", "executed", "completed", "retired", "squashed",
        "mem_latency", "forwarded_from", "forwarded_seq",
        "speculative_load", "retry_after",
        "lq_slot", "sq_slot", "waiting_store",
        "classified_in_sequence", "wake_waits",
    )

    def __init__(self, tid: int, seq: int, gseq: int,
                 instr: Instruction, latency: int) -> None:
        self.tid = tid
        self.seq = seq          #: per-thread trace position (stable)
        self.gseq = gseq        #: global fetch order (age for select)
        self.instr = instr
        self.op: OpClass = instr.op
        self.latency = latency  #: base execution latency

        self.frontend_ready = NEVER  #: cycle it may dispatch
        self.mispredicted = False    #: branch predicted wrong at fetch

        # Rename / steering results.
        self.to_shelf = False
        self.rename: Optional[RenameRecord] = None
        self.src_tags: Tuple[int, ...] = ()
        self.dest_tag: Optional[int] = None
        self.dest_pri: Optional[int] = None
        self.prev_tag: Optional[int] = None  #: dest's previous tag (WAW check)

        # Window bookkeeping.
        self.rob_idx: Optional[int] = None          #: issue-tracker index (IQ)
        self.shelf_idx: Optional[int] = None        #: virtual index (shelf)
        self.last_iq_rob_idx = -1                   #: run boundary (shelf)
        self.shelf_squash_idx: Optional[int] = None  #: next shelf idx (IQ)
        self.first_in_run = False
        self.ssr_copied = False
        self.order_idx: Optional[int] = None  #: program-order tracker index
        self.steer_cached: Optional[bool] = None  #: steering decision memo

        # Timing.
        self.dispatch_cycle = NEVER
        self.issue_cycle = NEVER
        self.complete_cycle = NEVER
        self.retire_cycle = NEVER
        self.issued = False
        self.executed = False    #: memory ops: address/data produced
        self.completed = False
        self.retired = False
        self.squashed = False

        # Memory behaviour.
        self.mem_latency = 0
        self.retry_after = 0  #: structural replay backoff (MSHRs full)
        self.forwarded_from: Optional[int] = None  #: gseq of forwarding store
        self.forwarded_seq: Optional[int] = None   #: its per-thread seq
        self.speculative_load = False  #: issued past an un-executed elder store
        self.lq_slot = False
        self.sq_slot = False
        self.waiting_store: Optional["DynInstr"] = None  #: store-set dependence

        # Filled by the classifier (None until classified).
        self.classified_in_sequence: Optional[bool] = None

        # Fast-forward wakeup: unready source occurrences still pending
        # at IQ dispatch (scoreboard waiter-list registrations).
        self.wake_waits = 0

    # -- convenience --------------------------------------------------------

    @property
    def is_load(self) -> bool:
        return self.op is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.op is OpClass.LOAD or self.op is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.op is OpClass.BRANCH

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = "shelf" if self.to_shelf else "iq"
        state = ("retired" if self.retired else
                 "completed" if self.completed else
                 "issued" if self.issued else "waiting")
        return (f"DynInstr(t{self.tid}#{self.seq} {self.op.name} "
                f"{where} {state})")
