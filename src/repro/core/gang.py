"""Gang simulation: lockstep multi-point execution over shared traces.

A campaign grid runs dozens of configs over the same trace mix, and
every one of those points pays the same per-run costs: decoding the
trace in fetch and re-hoisting the lane engine's run-long locals.  A
:class:`GangEngine` advances K *compatible* points — same
``(benchmark, length, seed)`` traces, any mix of configs — through one
driver loop:

* **Isolation.**  Every member is an ordinary :class:`Pipeline` with
  its own lane-engine slot set, caches, predictor, and RNG-free state;
  nothing architectural is shared, so each member's result is
  bit-identical to the same point run solo (the randomized oracle in
  ``tests/test_gang_equivalence.py`` enforces this).
* **Shared decode.**  Members whose threads run the *same trace
  object* share one read-only :func:`~repro.core.lanes.decode_trace`
  result — per-position opcodes, latencies, and next-branch indices —
  which the lane engine's bulk fetch path consumes by slice
  assignment.  Sharing is keyed on object identity; the harness's
  per-process trace memo (:mod:`repro.harness.executor`) is what makes
  distinct points hand the gang identical trace objects.
* **Interleaving.**  Members advance in bounded slices
  (``Pipeline.advance(until=cycle + stride)``), round-robin, so the
  interpreter stays inside one hot loop per slice instead of paying
  ``Pipeline.run``'s setup once per point.  Finished members retire
  from the rotation early without stalling the rest.

Errors propagate exactly as they would solo: a member raising
:class:`~repro.core.pipeline.DeadlockError` aborts the gang (the
harness's ``simulate_gang`` falls back to solo runs to attribute the
failure to the right point).

Mode control: ``REPRO_GANG`` (default on) and ``REPRO_GANG_SIZE``
(default 16) are execution-mode flags like ``REPRO_LANES`` — they
never influence results and never enter result digests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import envvars
from repro.core.lanes import decode_trace
from repro.core.pipeline import Pipeline
from repro.core.stats import SimResult

#: cycles each member advances per rotation slot.  Large enough that
#: the per-slice re-hoist cost is amortized over thousands of cycles,
#: small enough that K members' working sets interleave in cache.
DEFAULT_STRIDE = 4096


def gang_enabled() -> bool:
    """Is gang formation on (``REPRO_GANG``, default on)?"""
    return envvars.enabled("REPRO_GANG")


def gang_size() -> int:
    """Maximum members per gang (``REPRO_GANG_SIZE``, default 16,
    floored at 1 — a size-1 gang is just a solo run)."""
    value = (envvars.raw("REPRO_GANG_SIZE") or "").strip()
    if not value:
        return 16
    try:
        size = int(value)
    except ValueError:
        raise ValueError(
            f"bad REPRO_GANG_SIZE value {value!r}") from None
    return max(1, size)


class GangEngine:
    """Drive K independent pipelines to completion in one loop.

    Args:
        members: the pipelines to advance.  Any configs; results are
            per-member and bit-identical to solo runs.
        stop: the stop condition shared by every member (gang grouping
            upstream only gangs points with identical ``stop``).
        stride: cycles per member per rotation (see
            :data:`DEFAULT_STRIDE`).
    """

    def __init__(self, members: Sequence[Pipeline], stop: str = "first",
                 stride: int = DEFAULT_STRIDE):
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.members: List[Pipeline] = list(members)
        self.stop = stop
        self.stride = stride

    def _install_decodes(self) -> List[object]:
        """Share one decoded-trace array set per distinct trace object
        across every lane-engine member; returns the engines to clean
        up.  Object-path members (``lanes=False``) simply run without
        the fetch fast path — still bit-identical."""
        decoded: dict = {}
        installed: List[object] = []
        for pipe in self.members:
            engine = pipe._lane_engine
            if engine is None or engine.decode is not None:
                continue
            per_tid = []
            for thread in pipe.threads:
                key = id(thread.trace)
                dec = decoded.get(key)
                if dec is None:
                    dec = decoded[key] = decode_trace(thread.trace)
                per_tid.append(dec)
            engine.decode = per_tid
            installed.append(engine)
        return installed

    def run(self, max_cycles: Optional[int] = None,
            warmup_instructions: int = 0) -> List[SimResult]:
        """Advance every member to its stop condition; results in
        member order."""
        members = self.members
        installed = self._install_decodes()
        try:
            for pipe in members:
                pipe.start_run(self.stop, max_cycles,
                               warmup_instructions)
            results: List[Optional[SimResult]] = [None] * len(members)
            active = list(range(len(members)))
            stride = self.stride
            while active:
                still_running = []
                for i in active:
                    pipe = members[i]
                    if pipe.advance(until=pipe.cycle + stride):
                        results[i] = pipe.finish_run()
                    else:
                        still_running.append(i)
                active = still_running
            return results  # type: ignore[return-value]
        finally:
            # Leave members reusable as ordinary solo pipelines.
            for engine in installed:
                engine.decode = None
