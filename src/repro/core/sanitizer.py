"""Opt-in microarchitectural invariant sanitizer.

The shelf's whole point is doing *without* the usual bookkeeping — no
ROB entry, no new physical register, no LQ/SQ slot — which means a
silent leak or an ordering slip in exactly those paths corrupts results
without failing a single test.  The sanitizer re-derives the structural
invariants from first principles every cycle and at drain, and raises a
structured :class:`SanitizerError` naming the structure, thread, and
cycle the moment one breaks.

Enable it with ``REPRO_SANITIZE=1`` in the environment (inherited by
pool workers) or ``CoreConfig(sanitize=True)``.  Checked invariants:

* **register conservation** — physical/extension free lists conserve
  ids (no leak, no double-free), every in-use id is reachable from a
  RAT mapping or an in-flight rename record, and vice versa;
* **shelf FIFO discipline** — shelf issue leaves the FIFO in program
  order; virtual indices stay inside the doubled index space and agree
  with the retire bitvector;
* **SSR merge monotonicity** — a run-boundary IQ→shelf SSR copy never
  leaves the shelf SSR below the IQ SSR;
* **LQ/SQ age ordering** — disambiguation queues hold live entries in
  strictly increasing global age;
* **extended-tag uniqueness** — no two in-flight writers share a
  destination tag, and scoreboard entries match issue state;
* **zero shelf-side allocations** — no shelf instruction ever holds a
  ROB index, a fresh physical register, or an LQ/SQ slot it must not
  have (TSO legitimately gives shelf stores SQ entries).

The sanitizer reads pipeline state but never mutates it, so a sanitized
run produces bit-identical result records — CI re-runs the smoke
experiments under ``REPRO_SANITIZE=1`` against a separate result store
to prove exactly that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro import envvars
from repro.core.dynamic import slot_or_none

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.config import CoreConfig
    from repro.core.dynamic import DynInstr
    from repro.core.pipeline import Pipeline
    from repro.core.thread_context import ThreadContext


def sanitize_enabled(config: Optional["CoreConfig"] = None) -> bool:
    """Is the sanitizer requested, by config flag or environment?"""
    if config is not None and getattr(config, "sanitize", False):
        return True
    return envvars.enabled("REPRO_SANITIZE")


class SanitizerError(RuntimeError):
    """One violated microarchitectural invariant.

    Attributes:
        structure: which structure broke (``"freelist:phys"``,
            ``"shelf"``, ``"ssr"``, ``"lsq"``, ``"scoreboard"``,
            ``"rat"``, ``"tags"``, ``"drain"``);
        thread: hardware thread id, or None for shared structures;
        cycle: simulation cycle at which the check fired.
    """

    def __init__(self, structure: str, thread: Optional[int], cycle: int,
                 message: str) -> None:
        self.structure = structure
        self.thread = thread
        self.cycle = cycle
        where = f"t{thread}" if thread is not None else "shared"
        super().__init__(
            f"sanitizer: {structure} [{where}] cycle {cycle}: {message}")


class Sanitizer:
    """Per-pipeline invariant checker (see the module docstring).

    One instance is attached to a :class:`~repro.core.pipeline.Pipeline`
    when sanitizing is enabled; :meth:`check_cycle` runs at the end of
    every :meth:`Pipeline.step`, :meth:`check_drain` after a
    run-to-completion, and the targeted hooks
    (:meth:`check_ssr_merge`, :meth:`note_shelf_issue`) fire at the
    events they guard.
    """

    def __init__(self, pipeline: "Pipeline") -> None:
        self.pipe = pipeline
        self.checks = 0  #: completed whole-cycle sweeps (introspection)
        self._last_shelf_issue: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # targeted event hooks
    # ------------------------------------------------------------------

    def check_ssr_merge(self, thread: "ThreadContext", cycle: int) -> None:
        """Called right after a run-boundary IQ→shelf SSR copy: the merge
        must leave the shelf SSR covering all tracked IQ speculation."""
        deficit = thread.ssr.merge_deficit()
        if deficit:
            raise SanitizerError(
                "ssr", thread.tid, cycle,
                f"run-boundary merge lost {deficit} cycle(s) of IQ "
                f"speculation (iq_ssr={thread.ssr.iq_ssr}, "
                f"shelf_ssr={thread.ssr.shelf_ssr}); a shelf writeback "
                f"could land under unresolved elder speculation")

    def note_shelf_issue(self, thread: "ThreadContext", dyn: "DynInstr",
                         cycle: int) -> None:
        """Called as a shelf instruction issues: it must be the FIFO head
        and its virtual index must advance monotonically."""
        if thread.shelf.head is not dyn:
            raise SanitizerError(
                "shelf", thread.tid, cycle,
                f"issued {dyn!r} is not the FIFO head "
                f"{thread.shelf.head!r} — shelf issue left program order")
        last = self._last_shelf_issue.get(thread.tid)
        shelf_idx = slot_or_none(dyn, "shelf_idx")
        if last is not None and shelf_idx is not None and shelf_idx <= last:
            raise SanitizerError(
                "shelf", thread.tid, cycle,
                f"shelf issue order regressed: index {shelf_idx} "
                f"after {last}")
        if shelf_idx is not None:
            self._last_shelf_issue[thread.tid] = shelf_idx

    def note_shelf_squash(self, thread: "ThreadContext",
                          min_idx: int) -> None:
        """Called when a squash rolls the shelf tail back to *min_idx*:
        replayed instructions legitimately re-issue those indices, so the
        monotone-issue floor drops with the tail."""
        last = self._last_shelf_issue.get(thread.tid)
        if last is not None and last >= min_idx:
            self._last_shelf_issue[thread.tid] = min_idx - 1

    # ------------------------------------------------------------------
    # whole-cycle sweep
    # ------------------------------------------------------------------

    def check_cycle(self, cycle: int) -> None:
        """Assert every per-cycle invariant; called at the end of
        :meth:`Pipeline.step`."""
        pipe = self.pipe
        self._check_freelist("freelist:phys", pipe.phys_fl, cycle)
        self._check_freelist("freelist:ext", pipe.ext_fl, cycle)
        for problem in pipe.rat.audit():
            raise SanitizerError("rat", None, cycle, problem)
        for thread in pipe.threads:
            for problem in thread.shelf.audit():
                raise SanitizerError("shelf", thread.tid, cycle, problem)
            for problem in thread.ssr.audit():
                raise SanitizerError("ssr", thread.tid, cycle, problem)
            for problem in thread.lsq.audit():
                raise SanitizerError("lsq", thread.tid, cycle, problem)
            self._check_inflight(thread, cycle)
        self._check_tag_space(cycle)
        if pipe._lane_engine is not None:
            # Lane/object agreement: the flat arrays write through to the
            # DynInstr mirrors, so every in-flight slot must match.
            for problem in pipe._lane_engine.audit():
                raise SanitizerError("lanes", None, cycle, problem)
        self.checks += 1

    def _check_freelist(self, label: str, freelist, cycle: int) -> None:
        for problem in freelist.audit():
            raise SanitizerError(label, None, cycle, problem)

    def _check_inflight(self, thread: "ThreadContext", cycle: int) -> None:
        """Shelf no-allocation discipline and scoreboard consistency."""
        tso = self.pipe.config.memory_model == "tso"
        sb = self.pipe.scoreboard
        for dyn in thread.rob:
            if dyn.to_shelf:
                raise SanitizerError(
                    "shelf", thread.tid, cycle,
                    f"shelf instruction {dyn!r} occupies a ROB entry")
        for dyn in thread.in_flight:
            if dyn.squashed or dyn.rename is None:
                continue
            if dyn.to_shelf:
                rec = dyn.rename
                # Shelf instructions never pass through the stages that
                # write rob_idx / lq_slot / sq_slot, so probe with
                # defaults (DynInstr's write-before-read contract).
                rob_idx = slot_or_none(dyn, "rob_idx")
                if rob_idx is not None:
                    raise SanitizerError(
                        "shelf", thread.tid, cycle,
                        f"{dyn!r} allocated issue-tracker index "
                        f"{rob_idx} despite steering to the shelf")
                if rec.arch is not None and rec.pri != rec.prev_pri:
                    raise SanitizerError(
                        "shelf", thread.tid, cycle,
                        f"{dyn!r} allocated a fresh physical register "
                        f"({rec.prev_pri} -> {rec.pri}); shelf renames "
                        f"must reuse the current PRI")
                if slot_or_none(dyn, "lq_slot", False):
                    raise SanitizerError(
                        "shelf", thread.tid, cycle,
                        f"shelf load {dyn!r} holds an LQ slot")
                if slot_or_none(dyn, "sq_slot", False) and \
                        not (tso and dyn.is_store):
                    raise SanitizerError(
                        "shelf", thread.tid, cycle,
                        f"shelf instruction {dyn!r} holds an SQ slot "
                        f"outside the TSO model")
            dest_tag = slot_or_none(dyn, "dest_tag")
            if dest_tag is None:
                continue
            if not dyn.issued and not sb.is_unwritten(dest_tag):
                raise SanitizerError(
                    "scoreboard", thread.tid, cycle,
                    f"un-issued {dyn!r} has tag {dest_tag} marked "
                    f"ready at {sb.ready_at(dest_tag)}")
            if dyn.issued and \
                    sb.ready_at(dest_tag) != slot_or_none(dyn,
                                                          "complete_cycle"):
                raise SanitizerError(
                    "scoreboard", thread.tid, cycle,
                    f"issued {dyn!r} tag {dest_tag} ready at "
                    f"{sb.ready_at(dest_tag)}, expected its completion "
                    f"cycle {slot_or_none(dyn, 'complete_cycle')}")

    def _check_tag_space(self, cycle: int) -> None:
        """Tag uniqueness among in-flight writers and id conservation
        between the free lists, the RAT, and in-flight rename records."""
        pipe = self.pipe
        prf = pipe.config.prf_entries
        refs_phys, refs_ext = pipe.rat.mapped_ids()
        owner: Dict[int, "DynInstr"] = {}
        for thread in pipe.threads:
            for dyn in thread.in_flight:
                if dyn.squashed or dyn.rename is None:
                    continue
                dest_tag = slot_or_none(dyn, "dest_tag")
                if dest_tag is not None:
                    clash = owner.get(dest_tag)
                    if clash is not None:
                        raise SanitizerError(
                            "tags", thread.tid, cycle,
                            f"destination tag {dest_tag} shared by "
                            f"in-flight writers {clash!r} and {dyn!r}")
                    owner[dest_tag] = dyn
                rec = dyn.rename
                for ident in (rec.pri, rec.prev_pri, rec.tag, rec.prev_tag):
                    if ident is None:
                        continue
                    if ident >= prf:
                        refs_ext.add(ident)
                    else:
                        refs_phys.add(ident)
        self._check_conservation("freelist:phys", pipe.phys_fl, refs_phys,
                                 "physical register", cycle)
        self._check_conservation("freelist:ext", pipe.ext_fl, refs_ext,
                                 "extension tag", cycle)

    def _check_conservation(self, label: str, freelist, refs: Set[int],
                            what: str, cycle: int) -> None:
        in_use = freelist.in_use_ids()
        leaked = in_use - refs
        if leaked:
            raise SanitizerError(
                label, None, cycle,
                f"{what} leak: ids {sorted(leaked)[:8]} are allocated but "
                f"referenced by no RAT mapping or in-flight instruction")
        premature = refs - in_use
        if premature:
            raise SanitizerError(
                label, None, cycle,
                f"{what} double-free: ids {sorted(premature)[:8]} are "
                f"still referenced but already back on the free list")

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------

    def check_drain(self, cycle: int) -> None:
        """After a run-to-completion every structure must be empty and
        every identifier home (wraps
        :meth:`Pipeline.check_final_invariants`)."""
        self.check_cycle(cycle)
        try:
            self.pipe.check_final_invariants()
        except AssertionError as exc:
            raise SanitizerError("drain", None, cycle, str(exc)) from exc
