"""Job model and queue for the simulation service.

A :class:`JobSpec` is one simulation point in wire form — the same
(config, benchmarks, length, seed, stop) tuple the harness executor
runs, (de)serializable to JSON so it can cross the HTTP boundary and be
pickled into spawn workers.  A :class:`Job` wraps a spec with service
state: identity, priority, retry/timeout bookkeeping, and the final
result or structured error.

The :class:`JobQueue` orders jobs by priority (lower number first) and
FIFO within a priority, and deduplicates aggressively *before any worker
is touched*:

* **store dedup** — a point already in the persistent result store
  (:mod:`repro.harness.cache`) completes instantly as a cache hit;
* **in-flight dedup** — a point identical (same content digest) to a
  queued or running job becomes a *follower* of that primary job and is
  resolved, success or failure, the moment the primary is.

Digests are :func:`repro.harness.cache.point_digest` — the same digests
the store itself is keyed by, so service dedup, worker-side store
lookups, and direct ``runner`` invocations all agree on point identity.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import CoreConfig
from repro.core.stats import SimResult
from repro.harness.cache import ResultStore, point_digest
from repro.harness.configs import (base64_config, base128_config,
                                   shelf_config)
from repro.memory.hierarchy import HierarchyConfig
from repro.trace import BENCHMARK_NAMES

#: wire names accepted for the ``config`` field of a job payload.
NAMED_CONFIGS = ("base64", "shelf64", "base128")

_STOP_MODES = ("first", "all")


def config_from_wire(payload: dict) -> CoreConfig:
    """Build a :class:`CoreConfig` from a job payload.

    The ``config`` field is either a name from :data:`NAMED_CONFIGS`
    (modified by the optional ``threads``, ``steering``, ``optimistic``
    and ``memory_model`` fields, mirroring the ``run`` CLI) or a full
    ``dataclasses.asdict(CoreConfig)`` mapping as produced by
    :func:`config_to_wire`.  Raises :class:`ValueError` on anything
    malformed — the server maps that to HTTP 400.
    """
    value = payload.get("config", "shelf64")
    if isinstance(value, str):
        threads = int(payload.get("threads", 4))
        if value == "base64":
            cfg = base64_config(threads)
        elif value == "base128":
            cfg = base128_config(threads)
        elif value == "shelf64":
            cfg = shelf_config(
                threads, steering=payload.get("steering", "practical"),
                optimistic=bool(payload.get("optimistic", False)))
        else:
            raise ValueError(f"unknown config name {value!r} "
                             f"(expected one of {', '.join(NAMED_CONFIGS)})")
        memory_model = payload.get("memory_model", "relaxed")
        if memory_model != cfg.memory_model:
            cfg = replace(cfg, memory_model=memory_model)
        return cfg
    if isinstance(value, dict):
        fields = dict(value)
        hier = fields.pop("hierarchy", None)
        try:
            hierarchy = HierarchyConfig(**hier) if hier is not None \
                else HierarchyConfig()
            return CoreConfig(**fields, hierarchy=hierarchy)
        except TypeError as exc:
            raise ValueError(f"bad config fields: {exc}") from None
    raise ValueError("config must be a name or a config mapping")


def config_to_wire(config: CoreConfig) -> dict:
    """Full-fidelity wire form of a config (``asdict`` round trip)."""
    return asdict(config)


@dataclass(frozen=True)
class JobSpec:
    """One simulation point, in the exact shape the executor runs."""

    config: CoreConfig
    benchmarks: Tuple[str, ...]
    length: int
    seed: int = 0
    stop: str = "first"

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("need at least one benchmark")
        unknown = [b for b in self.benchmarks if b not in BENCHMARK_NAMES]
        if unknown:
            raise ValueError(f"unknown benchmark(s) {', '.join(unknown)}")
        if len(self.benchmarks) != self.config.num_threads:
            raise ValueError(
                f"{self.config.num_threads} thread(s) need "
                f"{self.config.num_threads} benchmark(s), "
                f"got {len(self.benchmarks)}")
        if self.length <= 0:
            raise ValueError(f"length must be positive, got {self.length}")
        if self.stop not in _STOP_MODES:
            raise ValueError(f"stop must be one of {_STOP_MODES}, "
                             f"got {self.stop!r}")

    def point(self) -> Tuple[CoreConfig, Tuple[str, ...], int, int, str]:
        """The executor's ``PointSpec`` tuple."""
        return (self.config, self.benchmarks, self.length, self.seed,
                self.stop)

    def digest(self) -> str:
        """Content digest — identical to a direct store/runner digest."""
        return point_digest(*self.point())

    def point_key(self) -> str:
        """Warehouse point identity (salt-robust, unlike the digest)."""
        from repro.warehouse.index import point_key
        return point_key(self.config.label(), "+".join(self.benchmarks),
                         self.length, self.seed, self.stop)

    def locality_key(self) -> str:
        """Fleet routing key: the trace signature, *without* the config.

        Grid neighbours — same workload mix, different configs — share
        this key, so rendezvous routing sends them to the same worker
        node, whose trace memo and gang batches then serve the whole
        neighbourhood.  Salt-stable and digest-free: the key never
        depends on the result-store salt or any mode flag.
        """
        return "|".join(("+".join(self.benchmarks), str(self.length),
                         str(self.seed), self.stop))

    def to_wire(self) -> dict:
        return {
            "config": config_to_wire(self.config),
            "benchmarks": list(self.benchmarks),
            "length": self.length,
            "seed": self.seed,
            "stop": self.stop,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ValueError("job payload must be a JSON object")
        benchmarks = payload.get("benchmarks")
        if isinstance(benchmarks, str):
            benchmarks = benchmarks.split(",")
        if not isinstance(benchmarks, (list, tuple)):
            raise ValueError("benchmarks must be a list (or a "
                             "comma-separated string)")
        try:
            length = int(payload.get("length", 4000))
            seed = int(payload.get("seed", 0))
        except (TypeError, ValueError):
            raise ValueError("length and seed must be integers") from None
        return cls(config=config_from_wire(payload),
                   benchmarks=tuple(str(b) for b in benchmarks),
                   length=length, seed=seed,
                   stop=str(payload.get("stop", "first")))


class JobState:
    """Job lifecycle states (plain strings — they go over the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One submitted job: a spec plus service-side state."""

    job_id: str
    spec: JobSpec
    digest: str
    priority: int = 0
    timeout_s: Optional[float] = None
    campaign: Optional[str] = None  #: analytics tag; not part of identity
    state: str = JobState.QUEUED
    attempts: int = 0           #: completed attempts that crashed a worker
    cached: bool = False        #: served from the store, no execution
    dedup_of: Optional[str] = None  #: primary job this one followed
    result: Optional[SimResult] = field(default=None, repr=False)
    elapsed_s: float = 0.0      #: worker simulation time (0 for cache hits)
    error: Optional[dict] = None
    submitted_at: float = 0.0   #: time.monotonic() stamps
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    followers: List["Job"] = field(default_factory=list, repr=False)
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False)

    @property
    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    @property
    def latency_s(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def status(self) -> dict:
        """JSON-safe status document (the ``GET /jobs/<id>`` body)."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "digest": self.digest,
            "priority": self.priority,
            "timeout_s": self.timeout_s,
            "campaign": self.campaign,
            "attempts": self.attempts,
            "cached": self.cached,
            "dedup_of": self.dedup_of,
            "error": self.error,
            "latency_s": self.latency_s,
        }

    def _finish(self, result: SimResult, elapsed: float,
                now: float) -> None:
        self.result = result
        self.elapsed_s = elapsed
        self.state = JobState.DONE
        self.finished_at = now
        self.done.set()

    def _fail(self, error: dict, now: float) -> None:
        self.error = error
        self.state = JobState.FAILED
        self.finished_at = now
        self.done.set()


class JobQueue:
    """Priority + FIFO job queue with digest dedup.

    Thread-safe: the HTTP handlers submit and read, the scheduler thread
    takes batches and resolves completions.  ``on_finish`` (if set) is
    invoked for *every* job reaching a terminal state — primaries,
    followers, and instant cache hits — and is the metrics hook.
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 on_finish: Optional[Callable[["Job"], None]] = None) -> None:
        self.store = store
        self.on_finish = on_finish
        self._lock = threading.Lock()
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self.jobs: Dict[str, Job] = {}
        self._active_by_digest: Dict[str, Job] = {}
        self.cache_hits = 0   #: submissions served straight from the store
        self.dedup_hits = 0   #: submissions folded into an in-flight job

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec, priority: int = 0,
               timeout_s: Optional[float] = None,
               campaign: Optional[str] = None) -> Job:
        """Enqueue a spec; may complete it instantly (store hit) or fold
        it into an identical in-flight job (returned job is a follower).

        *campaign* is a pure analytics tag: completed jobs carrying one
        are marked under it in the warehouse index, so ``/campaigns``
        (and ``repro query --campaign``) can watch a sweep progress.  It
        never affects identity — two submissions of the same point under
        different campaigns still dedup to one simulation, and each is
        marked under its own tag.
        """
        digest = spec.digest()
        now = time.monotonic()
        with self._lock:
            job = Job(job_id=f"j{next(self._ids):06d}", spec=spec,
                      digest=digest, priority=priority, timeout_s=timeout_s,
                      campaign=campaign, submitted_at=now)
            self.jobs[job.job_id] = job
            primary = self._active_by_digest.get(digest)
            if primary is not None and not primary.finished:
                job.dedup_of = primary.job_id
                primary.followers.append(job)
                self.dedup_hits += 1
                return job
            if self.store is not None:
                cached = self.store.get(digest)
                if cached is not None:
                    job.cached = True
                    job._finish(cached, 0.0, now)
                    self.cache_hits += 1
                else:
                    self._active_by_digest[digest] = job
                    heapq.heappush(self._heap,
                                   (priority, next(self._seq), job))
            else:
                self._active_by_digest[digest] = job
                heapq.heappush(self._heap, (priority, next(self._seq), job))
        if job.finished:
            self._notify(job)
        return job

    def requeue(self, job: Job) -> None:
        """Put a job back (retry after a worker crash): same priority,
        new FIFO slot."""
        with self._lock:
            job.state = JobState.QUEUED
            heapq.heappush(self._heap,
                           (job.priority, next(self._seq), job))

    # -- consumption -------------------------------------------------------

    #: gang-aware ``take_batch`` looks at most this many entries past
    #: ``max_n`` for signature matches, bounding the per-batch heap work.
    GANG_SCAN_FACTOR = 8

    def take_batch(self, max_n: int, gang: bool = False,
                   mark_running: bool = True) -> List[Job]:
        """Pop up to *max_n* compatible jobs and mark them running.

        Compatibility: identical priority and per-job timeout, so one
        worker batch has a single well-defined deadline and never mixes
        priorities.  Returns ``[]`` when the queue is empty.

        ``mark_running=False`` pops without flipping job state: the
        fleet dispatcher uses it to route jobs into per-node queues,
        where they are still *waiting* — they go RUNNING only when a
        worker actually leases them (see :meth:`mark_running`).

        With ``gang=True`` the batch prefers jobs sharing the head
        job's trace signature ``(benchmarks, length, seed, stop)``, so
        the worker can form one simulation gang over shared decoded
        traces: matching jobs are pulled from deeper in the queue
        (bounded by :data:`GANG_SCAN_FACTOR`), then the batch is topped
        up with the skipped jobs — which otherwise stay queued, in
        their original order.
        """
        now = time.monotonic()
        with self._lock:
            if not self._heap:
                return []
            batch = [heapq.heappop(self._heap)[2]]
            if not gang:
                while self._heap and len(batch) < max_n:
                    head = self._heap[0][2]
                    if head.priority != batch[0].priority or \
                            head.timeout_s != batch[0].timeout_s:
                        break
                    batch.append(heapq.heappop(self._heap)[2])
            else:
                first = batch[0]
                signature = (first.spec.benchmarks, first.spec.length,
                             first.spec.seed, first.spec.stop)
                skipped: List[tuple] = []
                budget = max_n * self.GANG_SCAN_FACTOR
                while self._heap and len(batch) < max_n and budget > 0:
                    head = self._heap[0][2]
                    if head.priority != first.priority or \
                            head.timeout_s != first.timeout_s:
                        break
                    entry = heapq.heappop(self._heap)
                    budget -= 1
                    spec = head.spec
                    if (spec.benchmarks, spec.length, spec.seed,
                            spec.stop) == signature:
                        batch.append(head)
                    else:
                        skipped.append(entry)
                # top up with skipped (still-compatible) jobs, oldest
                # first; the rest go back with their original seq keys.
                while skipped and len(batch) < max_n:
                    batch.append(skipped.pop(0)[2])
                for entry in skipped:
                    heapq.heappush(self._heap, entry)
            if mark_running:
                for job in batch:
                    job.state = JobState.RUNNING
                    job.started_at = now
        return batch

    def mark_running(self, jobs: List[Job]) -> None:
        """Flip routed jobs to RUNNING at lease time (fleet path)."""
        now = time.monotonic()
        with self._lock:
            for job in jobs:
                job.state = JobState.RUNNING
                job.started_at = now

    # -- resolution --------------------------------------------------------

    def complete(self, job: Job, result: SimResult,
                 elapsed: float) -> None:
        """Resolve a running job and all its followers with *result*."""
        now = time.monotonic()
        with self._lock:
            job._finish(result, elapsed, now)
            self._release(job)
            finished = [job] + self._resolve_followers(
                job, lambda f: f._finish(result, elapsed, now))
        for j in finished:
            self._notify(j)

    def fail(self, job: Job, error: dict) -> None:
        """Resolve a running job and all its followers with *error*."""
        now = time.monotonic()
        with self._lock:
            job._fail(error, now)
            self._release(job)
            finished = [job] + self._resolve_followers(
                job, lambda f: f._fail(error, now))
        for j in finished:
            self._notify(j)

    def _release(self, job: Job) -> None:
        if self._active_by_digest.get(job.digest) is job:
            del self._active_by_digest[job.digest]

    @staticmethod
    def _resolve_followers(job: Job, resolve) -> List[Job]:
        followers = list(job.followers)
        for f in followers:
            resolve(f)
        job.followers.clear()
        return followers

    def _notify(self, job: Job) -> None:
        self._mark_campaign(job)
        if self.on_finish is not None:
            self.on_finish(job)

    def _mark_campaign(self, job: Job) -> None:
        """Record a successfully finished job under its campaign tag in
        the warehouse (best-effort — analytics never fail a job)."""
        if job.campaign is None or job.state != JobState.DONE or \
                self.store is None:
            return
        wh = self.store.warehouse()
        if wh is None:
            return
        from repro.warehouse import WAREHOUSE_ERRORS
        try:
            wh.campaign_mark(job.campaign, job.digest,
                             key=job.spec.point_key())
        except WAREHOUSE_ERRORS:
            self.store.index_errors += 1

    # -- introspection -----------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self.jobs.get(job_id)

    @property
    def depth(self) -> int:
        """Jobs waiting for a worker (excludes running and followers)."""
        with self._lock:
            return len(self._heap)

    @property
    def active(self) -> int:
        """Primary jobs not yet terminal: queued, staged into a batch,
        running, or awaiting a retry.  (Followers resolve with their
        primary, so they never need counting separately.)"""
        with self._lock:
            return len(self._active_by_digest)
