"""Asyncio HTTP front end for the simulation service (stdlib only).

A deliberately small HTTP/1.1 server over :func:`asyncio.start_server`
streams — one request per connection, JSON in and out:

========================  ==================================================
``POST /jobs``            submit a point; 201 with the job status (which may
                          already be ``done`` on a store hit), 400 on a bad
                          payload, 429 when the queue is full, 503 while
                          draining.
``GET /jobs/<id>``        job status document.
``GET /jobs/<id>/result`` terminal document: the canonical result record
                          (:meth:`SimResult.as_record` + ``elapsed_s``) for
                          ``done`` jobs, the structured error for ``failed``
                          ones; 409 while the job is still in flight.
``GET /metrics``          queue depth, in-flight, cache hit rate, jobs/sec,
                          latency p50/p95, and every scheduler counter.
``GET /campaigns``        live per-campaign analytics: the service's
                          submitted/completed/failed counters merged with
                          the warehouse's completion counts and rolling
                          metric summaries (see :mod:`repro.warehouse`).
``GET /healthz``          liveness (+ ``draining`` flag).
``GET /dashboard``        the browser dashboard (``--dashboard`` only): a
                          self-contained HTML page polling the JSON
                          endpoints above.
========================  ==================================================

With ``fleet=True`` (``repro serve --fleet``) the local process-pool
scheduler is replaced by a :class:`~repro.fleet.FleetDispatcher` and
the worker protocol appears under ``/fleet/*``: ``POST register`` /
``heartbeat`` / ``lease`` / ``complete`` and ``GET /fleet/nodes``.
Every public endpoint behaves identically in both modes.

On SIGTERM/SIGINT the server stops accepting jobs (503), lets the
scheduler drain queued and in-flight work (bounded by
``drain_timeout_s``, after which outstanding jobs fail with a
``shutdown`` error), then closes the listener and returns — a clean
exit 0 for supervisors.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Optional, Tuple

from repro.harness.cache import get_store
from repro.service.jobs import JobQueue, JobSpec
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import BatchScheduler

_REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}

#: request body cap — a full inline config is ~2 KB; 1 MB is generous.
MAX_BODY = 1 << 20


class ServiceServer:
    """The queue + scheduler + HTTP listener, wired together."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 1, batch_size: int = 4,
                 max_inflight: Optional[int] = None,
                 max_retries: int = 2, retry_backoff_s: float = 0.25,
                 default_timeout_s: Optional[float] = None,
                 max_queue_depth: int = 1024,
                 drain_timeout_s: float = 30.0,
                 fleet: bool = False, dashboard: bool = False) -> None:
        self.host = host
        self.port = port
        self.max_queue_depth = max_queue_depth
        self.drain_timeout_s = drain_timeout_s
        self.fleet = fleet
        self.dashboard = dashboard
        self.metrics = ServiceMetrics()
        self.queue = JobQueue(store=get_store(),
                              on_finish=self.metrics.job_finished)
        if fleet:
            from repro.fleet import FleetDispatcher
            self.scheduler = FleetDispatcher(
                self.queue, metrics=self.metrics,
                batch_size=batch_size, max_retries=max_retries)
        else:
            self.scheduler = BatchScheduler(
                self.queue, metrics=self.metrics, workers=workers,
                batch_size=batch_size, max_inflight=max_inflight,
                max_retries=max_retries, retry_backoff_s=retry_backoff_s,
                default_timeout_s=default_timeout_s)
        self.draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the scheduler thread."""
        self._loop = asyncio.get_running_loop()
        self.scheduler.start()
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin graceful drain; safe to call from any thread, and a
        no-op once the server has already drained and its loop closed."""
        if self._loop is None or self._loop.is_closed():
            return
        try:
            self._loop.call_soon_threadsafe(self._begin_drain)
        except RuntimeError:
            pass  # loop closed between the check and the call

    def _begin_drain(self) -> None:
        self.draining = True
        self._shutdown.set()

    async def wait_closed(self) -> None:
        """Serve until :meth:`request_shutdown`, then drain and close."""
        await self._shutdown.wait()
        self.draining = True
        deadline = asyncio.get_running_loop().time() + self.drain_timeout_s
        while not self.scheduler.idle and \
                asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.05)
        # drained (or out of patience): a hard scheduler stop is now
        # either a no-op or the documented drain-timeout failure path.
        # stop() joins the scheduler thread — blocking, so off-loop.
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.scheduler.stop(drain=False, timeout=5.0))
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._respond(reader)
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.TimeoutError, UnicodeDecodeError, ValueError):
            status, payload = 400, {"error": "malformed request"}
        # routes return dicts (JSON) except the dashboard, whose
        # payload is the finished HTML page as a str.
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            ctype = "text/html; charset=utf-8"
        else:
            body = json.dumps(payload).encode()
            ctype = "application/json"
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        try:
            writer.write(head + body)
            await asyncio.wait_for(writer.drain(), 10.0)
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError, asyncio.TimeoutError):
            pass  # client went away or stopped reading; nothing to salvage

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> Tuple[int, dict]:
        request_line = await asyncio.wait_for(reader.readline(), 10.0)
        parts = request_line.decode("ascii").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), 10.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length > MAX_BODY:
            return 413, {"error": "request body too large"}
        body = await asyncio.wait_for(reader.readexactly(content_length),
                                      10.0) if content_length else b""
        return self._route(method, path, body)

    # -- routing -----------------------------------------------------------

    def _route(self, method: str, path: str, body: bytes
               ) -> Tuple[int, dict]:
        if path == "/healthz" and method == "GET":
            return 200, {"status": "draining" if self.draining else "ok",
                         "fleet": self.fleet}
        if path == "/metrics" and method == "GET":
            fleet = self.scheduler.status() if self.fleet else None
            return 200, self.metrics.snapshot(
                self.queue, self.scheduler.inflight,
                draining=self.draining, fleet=fleet)
        if path == "/campaigns" and method == "GET":
            return 200, self._campaigns()
        if path == "/dashboard" and self.dashboard:
            if method != "GET":
                return 405, {"error": "method not allowed"}
            from repro.fleet.dashboard import render_dashboard
            return 200, render_dashboard()
        if path.startswith("/fleet/"):
            if not self.fleet:
                return 404, {"error": "not a fleet coordinator "
                                      "(start with --fleet)"}
            return self._fleet_route(method, path, body)
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": "method not allowed"}
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.queue.get(job_id)
            if job is None:
                return 404, {"error": f"no such job {job_id!r}"}
            if tail == "":
                return 200, job.status()
            if tail == "result":
                return self._result(job)
            return 404, {"error": f"no such endpoint {path!r}"}
        return 404, {"error": f"no such endpoint {path!r}"}

    def _fleet_route(self, method: str, path: str, body: bytes
                     ) -> Tuple[int, dict]:
        """The worker protocol (see :mod:`repro.fleet`)."""
        if path == "/fleet/nodes":
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return 200, self.scheduler.status()
        if method != "POST":
            return 405, {"error": "method not allowed"}
        try:
            payload = json.loads(body.decode() or "{}")
            if not isinstance(payload, dict):
                raise ValueError("fleet payload must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": str(exc)}
        registry = self.scheduler.registry
        if path == "/fleet/register":
            if self.draining:
                return 503, {"error": "service is draining"}
            try:
                info = registry.register(
                    str(payload.get("name", "worker")),
                    jobs=int(payload.get("jobs", 1)),
                    gang=bool(payload.get("gang", True)),
                    shards=payload.get("shards") or [])
            except (TypeError, ValueError) as exc:
                return 400, {"error": str(exc)}
            self.scheduler.kick()
            from repro.fleet import fleet_dir, fleet_shard_count
            root = fleet_dir()
            return 201, {
                "node_id": info.node_id,
                "heartbeat_s": registry.heartbeat_s,
                "lease_s": self.scheduler.lease_s,
                "fleet": {"dir": str(root) if root else None,
                          "shards": fleet_shard_count()},
            }
        node_id = str(payload.get("node_id", ""))
        if path == "/fleet/heartbeat":
            return 200, {"known": registry.heartbeat(node_id)}
        if path == "/fleet/lease":
            max_points = payload.get("max_points")
            try:
                lease = self.scheduler.lease(
                    node_id,
                    int(max_points) if max_points is not None else None)
            except KeyError:
                return 404, {"error": f"unknown node {node_id!r}; "
                                      f"re-register"}
            except (TypeError, ValueError) as exc:
                return 400, {"error": str(exc)}
            return 200, lease if lease is not None else {"lease_id": None}
        if path == "/fleet/complete":
            outcomes = payload.get("outcomes")
            if not isinstance(outcomes, list):
                return 400, {"error": "outcomes must be a list"}
            return 200, self.scheduler.complete(
                node_id, str(payload.get("lease_id", "")), outcomes)
        return 404, {"error": f"no such endpoint {path!r}"}

    def _campaigns(self) -> dict:
        """The ``GET /campaigns`` document: this process's per-campaign
        submission counters merged with the warehouse's durable
        completion counts and rolling metric summaries."""
        counters = self.metrics.campaign_counters()
        statuses = {}
        store = self.queue.store
        wh = store.warehouse() if store is not None else None
        if wh is not None:
            from repro.warehouse import WAREHOUSE_ERRORS
            try:
                statuses = {s["name"]: s for s in wh.campaign_status()}
            except WAREHOUSE_ERRORS:
                statuses = {}
        campaigns = []
        for name in sorted(set(counters) | set(statuses)):
            campaigns.append({"name": name,
                              "service": counters.get(name),
                              **(statuses.get(name) or {})})
        return {"campaigns": campaigns}

    def _submit(self, body: bytes) -> Tuple[int, dict]:
        if self.draining:
            return 503, {"error": "service is draining"}
        if self.queue.depth >= self.max_queue_depth:
            return 429, {"error": "queue full",
                         "queue_depth": self.queue.depth}
        try:
            payload = json.loads(body.decode() or "{}")
            spec = JobSpec.from_wire(payload)
            priority = int(payload.get("priority", 0))
            timeout_s = payload.get("timeout_s")
            timeout_s = float(timeout_s) if timeout_s is not None else None
            campaign = payload.get("campaign")
            campaign = str(campaign) if campaign is not None else None
        except (ValueError, TypeError, UnicodeDecodeError) as exc:
            return 400, {"error": str(exc)}
        self.metrics.inc("jobs_submitted")
        if campaign is not None:
            self.metrics.campaign_submitted(campaign)
        job = self.queue.submit(spec, priority=priority,
                                timeout_s=timeout_s, campaign=campaign)
        self.scheduler.kick()
        return 201, job.status()

    @staticmethod
    def _result(job) -> Tuple[int, dict]:
        if not job.finished:
            return 409, {"error": "job not finished", "state": job.state}
        if job.result is None:
            return 200, {"job_id": job.job_id, "state": job.state,
                         "error": job.error}
        record = dict(job.result.as_record())
        record["elapsed_s"] = job.elapsed_s
        return 200, {"job_id": job.job_id, "state": job.state,
                     "cached": job.cached, "record": record}


async def run_server(**kwargs) -> int:
    """Start a server, install signal-driven drain, serve until stopped."""
    server = ServiceServer(**kwargs)
    await server.start()
    loop = asyncio.get_running_loop()
    for signame in ("SIGTERM", "SIGINT"):
        if hasattr(signal, signame):
            loop.add_signal_handler(getattr(signal, signame),
                                    server._begin_drain)
    if server.fleet:
        print(f"repro fleet coordinator listening on "
              f"http://{server.host}:{server.port} "
              f"(batch={server.scheduler.batch_size}, "
              f"lease={server.scheduler.lease_s}s"
              f"{', dashboard=/dashboard' if server.dashboard else ''})",
              flush=True)
    else:
        print(f"repro service listening on "
              f"http://{server.host}:{server.port} "
              f"(workers={server.scheduler.workers}, "
              f"batch={server.scheduler.batch_size}, "
              f"window={server.scheduler.max_inflight}"
              f"{', dashboard=/dashboard' if server.dashboard else ''})",
              flush=True)
    await server.wait_closed()
    print("repro service drained, exiting", flush=True)
    return 0


def serve(**kwargs) -> int:
    """Blocking entry point used by ``python -m repro serve``."""
    return asyncio.run(run_server(**kwargs))
