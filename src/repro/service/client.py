"""Synchronous client for the simulation service (stdlib ``http.client``).

Used by ``python -m repro submit``, by :meth:`Campaign.run(service=...)
<repro.harness.campaign.Campaign.run>`, by fleet worker nodes, and by
tests/CI.  One connection per request (the server is ``Connection:
close``), JSON both ways.

Connection-level failures retry with **exponential backoff and
deterministic jitter**: the delay before attempt *k* is ``backoff_s x
2^k`` scaled by a factor in [0.5, 1.0) derived from
``sha256(jitter_key:attempt)``.  Each client seeds *jitter_key* with
its own identity (fleet workers use their node name; the default is
the target ``host:port``), so a fleet of clients retrying against a
recovering coordinator fans out across half the exponential step
instead of thundering in lockstep — while any single client's schedule
is exactly reproducible.  The jitter source is a hash, not a PRNG, so
the schedule is deterministic and DET101-clean.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import time
import urllib.parse
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.config import CoreConfig
from repro.service.jobs import JobSpec, config_to_wire

DEFAULT_URL = "http://127.0.0.1:8642"


def backoff_delay(base_s: float, attempt: int, key: str) -> float:
    """Backoff before retry *attempt* (0-based): ``base_s x 2^attempt``
    scaled into [0.5, 1.0) by a sha256-derived jitter of ``key`` and the
    attempt number.  Pure and deterministic — the same (key, attempt)
    always waits the same time, and distinct keys spread out."""
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    jitter = int.from_bytes(digest[:4], "big") / 2 ** 32
    return base_s * (2 ** attempt) * (0.5 + 0.5 * jitter)


class ServiceError(Exception):
    """An HTTP-level failure: connection problems or a >= 400 response."""

    def __init__(self, message: str, status: Optional[int] = None,
                 payload: Optional[dict] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class JobFailed(ServiceError):
    """A job reached the ``failed`` state; ``payload`` is its status."""


class ServiceClient:
    """Talk to a running ``python -m repro serve`` instance."""

    def __init__(self, url: str = DEFAULT_URL,
                 timeout_s: float = 10.0, retries: int = 0,
                 backoff_s: float = 0.1,
                 jitter_key: Optional[str] = None) -> None:
        parsed = urllib.parse.urlparse(url if "//" in url
                                       else f"http://{url}")
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8642
        self.timeout_s = timeout_s
        #: connection-level retries per request (HTTP >= 400 never
        #: retries — the server answered; repeating a POST could act
        #: twice).
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.jitter_key = jitter_key if jitter_key is not None \
            else f"{self.host}:{self.port}"
        #: delays actually slept, for tests and debugging.
        self.retry_log: List[float] = []

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> Tuple[int, dict]:
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, path, payload)
            except ServiceError as exc:
                # a status code means the server is up and answered:
                # never retry, the failure is the caller's to handle.
                if exc.status is not None or attempt >= self.retries:
                    raise
                delay = backoff_delay(self.backoff_s, attempt,
                                      self.jitter_key)
                self.retry_log.append(delay)
                time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(self, method: str, path: str,
                      payload: Optional[dict] = None) -> Tuple[int, dict]:
        body = json.dumps(payload).encode() if payload is not None else None
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = response.read()
            status = response.status
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"service at {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        finally:
            conn.close()
        try:
            doc = json.loads(data.decode() or "{}")
        except (ValueError, UnicodeDecodeError):
            doc = {"error": data[:200].decode("latin1")}
        if status >= 400:
            raise ServiceError(
                f"{method} {path} -> {status}: "
                f"{doc.get('error', 'unknown error')}",
                status=status, payload=doc)
        return status, doc

    # -- API ---------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")[1]

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")[1]

    def campaigns(self) -> list:
        """Live per-campaign analytics (the ``GET /campaigns`` list)."""
        return self._request("GET", "/campaigns")[1]["campaigns"]

    def submit(self, spec: Union[JobSpec, dict], priority: int = 0,
               timeout_s: Optional[float] = None,
               campaign: Optional[str] = None) -> dict:
        """Submit a job; returns the initial status document
        (``job_id``, ``state``, ...).  *campaign* tags the job for
        warehouse analytics without affecting its identity."""
        payload = spec.to_wire() if isinstance(spec, JobSpec) else dict(spec)
        payload["priority"] = priority
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        if campaign is not None:
            payload["campaign"] = campaign
        return self._request("POST", "/jobs", payload)[1]

    def submit_point(self, config: CoreConfig, benchmarks: Sequence[str],
                     length: int, seed: int = 0, stop: str = "first",
                     priority: int = 0,
                     timeout_s: Optional[float] = None,
                     campaign: Optional[str] = None) -> str:
        """Submit one executor-style point; returns its job id."""
        payload = {"config": config_to_wire(config),
                   "benchmarks": list(benchmarks),
                   "length": length, "seed": seed, "stop": stop}
        return self.submit(payload, priority=priority,
                           timeout_s=timeout_s, campaign=campaign)["job_id"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")[1]

    def result(self, job_id: str) -> dict:
        """Terminal document of a finished job (409 -> ServiceError when
        the job is still in flight)."""
        return self._request("GET", f"/jobs/{job_id}/result")[1]

    def wait(self, job_id: str, timeout_s: Optional[float] = None,
             poll_s: float = 0.05) -> dict:
        """Poll until the job finishes; returns its final status.

        Raises :class:`JobFailed` if the job failed and
        :class:`TimeoutError` if *timeout_s* elapses first.
        """
        deadline = time.monotonic() + timeout_s if timeout_s else None
        while True:
            status = self.status(job_id)
            if status["state"] == "done":
                return status
            if status["state"] == "failed":
                raise JobFailed(
                    f"job {job_id} failed: {status.get('error')}",
                    payload=status)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout_s}s")
            time.sleep(poll_s)

    def run(self, spec: Union[JobSpec, dict], priority: int = 0,
            timeout_s: Optional[float] = None,
            wait_timeout_s: Optional[float] = None) -> dict:
        """Submit, wait, and return the result document in one call."""
        job_id = self.submit(spec, priority=priority,
                             timeout_s=timeout_s)["job_id"]
        self.wait(job_id, timeout_s=wait_timeout_s)
        return self.result(job_id)

    # -- fleet protocol (worker side; coordinator must run --fleet) --------

    def fleet_register(self, name: str, jobs: int = 1, gang: bool = True,
                       shards: Optional[Sequence[int]] = None) -> dict:
        """Register this process as a worker node; the response carries
        ``node_id`` plus the fleet store topology to mount."""
        return self._request("POST", "/fleet/register", {
            "name": name, "jobs": jobs, "gang": gang,
            "shards": list(shards or [])})[1]

    def fleet_heartbeat(self, node_id: str) -> dict:
        return self._request("POST", "/fleet/heartbeat",
                             {"node_id": node_id})[1]

    def fleet_lease(self, node_id: str,
                    max_points: Optional[int] = None) -> Optional[dict]:
        """Ask for work; None when the coordinator has nothing."""
        doc = self._request("POST", "/fleet/lease", {
            "node_id": node_id, "max_points": max_points})[1]
        return doc if doc.get("lease_id") else None

    def fleet_complete(self, node_id: str, lease_id: str,
                       outcomes: List[dict]) -> dict:
        return self._request("POST", "/fleet/complete", {
            "node_id": node_id, "lease_id": lease_id,
            "outcomes": outcomes})[1]

    def fleet_nodes(self) -> dict:
        """The coordinator's ``GET /fleet/nodes`` document."""
        return self._request("GET", "/fleet/nodes")[1]
