"""Synchronous client for the simulation service (stdlib ``http.client``).

Used by ``python -m repro submit``, by :meth:`Campaign.run(service=...)
<repro.harness.campaign.Campaign.run>`, and by tests/CI.  One connection
per request (the server is ``Connection: close``), JSON both ways.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Optional, Sequence, Tuple, Union

from repro.core.config import CoreConfig
from repro.service.jobs import JobSpec, config_to_wire

DEFAULT_URL = "http://127.0.0.1:8642"


class ServiceError(Exception):
    """An HTTP-level failure: connection problems or a >= 400 response."""

    def __init__(self, message: str, status: Optional[int] = None,
                 payload: Optional[dict] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class JobFailed(ServiceError):
    """A job reached the ``failed`` state; ``payload`` is its status."""


class ServiceClient:
    """Talk to a running ``python -m repro serve`` instance."""

    def __init__(self, url: str = DEFAULT_URL,
                 timeout_s: float = 10.0) -> None:
        parsed = urllib.parse.urlparse(url if "//" in url
                                       else f"http://{url}")
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8642
        self.timeout_s = timeout_s

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> Tuple[int, dict]:
        body = json.dumps(payload).encode() if payload is not None else None
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = response.read()
            status = response.status
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"service at {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        finally:
            conn.close()
        try:
            doc = json.loads(data.decode() or "{}")
        except (ValueError, UnicodeDecodeError):
            doc = {"error": data[:200].decode("latin1")}
        if status >= 400:
            raise ServiceError(
                f"{method} {path} -> {status}: "
                f"{doc.get('error', 'unknown error')}",
                status=status, payload=doc)
        return status, doc

    # -- API ---------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")[1]

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")[1]

    def campaigns(self) -> list:
        """Live per-campaign analytics (the ``GET /campaigns`` list)."""
        return self._request("GET", "/campaigns")[1]["campaigns"]

    def submit(self, spec: Union[JobSpec, dict], priority: int = 0,
               timeout_s: Optional[float] = None,
               campaign: Optional[str] = None) -> dict:
        """Submit a job; returns the initial status document
        (``job_id``, ``state``, ...).  *campaign* tags the job for
        warehouse analytics without affecting its identity."""
        payload = spec.to_wire() if isinstance(spec, JobSpec) else dict(spec)
        payload["priority"] = priority
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        if campaign is not None:
            payload["campaign"] = campaign
        return self._request("POST", "/jobs", payload)[1]

    def submit_point(self, config: CoreConfig, benchmarks: Sequence[str],
                     length: int, seed: int = 0, stop: str = "first",
                     priority: int = 0,
                     timeout_s: Optional[float] = None,
                     campaign: Optional[str] = None) -> str:
        """Submit one executor-style point; returns its job id."""
        payload = {"config": config_to_wire(config),
                   "benchmarks": list(benchmarks),
                   "length": length, "seed": seed, "stop": stop}
        return self.submit(payload, priority=priority,
                           timeout_s=timeout_s, campaign=campaign)["job_id"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")[1]

    def result(self, job_id: str) -> dict:
        """Terminal document of a finished job (409 -> ServiceError when
        the job is still in flight)."""
        return self._request("GET", f"/jobs/{job_id}/result")[1]

    def wait(self, job_id: str, timeout_s: Optional[float] = None,
             poll_s: float = 0.05) -> dict:
        """Poll until the job finishes; returns its final status.

        Raises :class:`JobFailed` if the job failed and
        :class:`TimeoutError` if *timeout_s* elapses first.
        """
        deadline = time.monotonic() + timeout_s if timeout_s else None
        while True:
            status = self.status(job_id)
            if status["state"] == "done":
                return status
            if status["state"] == "failed":
                raise JobFailed(
                    f"job {job_id} failed: {status.get('error')}",
                    payload=status)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout_s}s")
            time.sleep(poll_s)

    def run(self, spec: Union[JobSpec, dict], priority: int = 0,
            timeout_s: Optional[float] = None,
            wait_timeout_s: Optional[float] = None) -> dict:
        """Submit, wait, and return the result document in one call."""
        job_id = self.submit(spec, priority=priority,
                             timeout_s=timeout_s)["job_id"]
        self.wait(job_id, timeout_s=wait_timeout_s)
        return self.result(job_id)
