"""Batching scheduler: feeds queued jobs to a worker process fleet.

The :class:`BatchScheduler` owns a spawn-context
:class:`~concurrent.futures.ProcessPoolExecutor` and runs a small
control loop on a background thread:

1. **batching** — compatible pending jobs (same priority and timeout,
   see :meth:`repro.service.jobs.JobQueue.take_batch`) are coalesced
   into one worker task, amortizing submit/pickle round trips and the
   spawn-import cost of cold workers;
2. **backpressure** — at most ``max_inflight`` batches are outstanding
   at once; everything else stays in the queue, visible as
   ``queue_depth``, so a burst of submissions can never oversubscribe
   the pool;
3. **timeouts** — each point runs under a ``SIGALRM`` interval timer in
   the worker; a point exceeding its budget fails with a structured
   ``{"type": "timeout"}`` error while the rest of its batch proceeds;
4. **retry with backoff** — a crashed worker (the pool reports
   :class:`~concurrent.futures.process.BrokenProcessPool`) fails only
   the affected batch: the pool is rebuilt and the batch's jobs are
   requeued after an exponential backoff, up to ``max_retries`` per job.

Workers simulate through :func:`repro.harness.executor.simulate_point`,
so every completed point lands in the persistent result store and is a
disk hit for every later request, service-side or not.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Set, Tuple

import multiprocessing

from repro import envvars
from repro.core.gang import gang_enabled
# PointTimeout and _alarm moved to the executor with the batch body;
# re-exported here because they are part of this module's historic API.
from repro.harness.executor import (PointTimeout, _alarm,  # noqa: F401
                                    execute_wire_batch, terminate_workers)
from repro.service.jobs import Job, JobQueue
from repro.service.metrics import ServiceMetrics

#: test-only fault injection: a path; when the file exists, the next
#: worker batch deletes it and kills its process with ``os._exit(3)``,
#: exercising the BrokenProcessPool retry path end to end.  Declared in
#: :mod:`repro.envvars` like every other ``REPRO_*`` knob.
CRASH_ONCE_ENV = "REPRO_SERVICE_CRASH_ONCE"


def _maybe_crash() -> None:
    token = envvars.raw(CRASH_ONCE_ENV)
    if token and os.path.exists(token):
        try:
            os.unlink(token)
        except OSError:
            pass
        os._exit(3)


def run_batch(wire_specs: List[dict]) -> List[dict]:
    """Worker entry point: simulate a batch of points.

    The execution body lives in
    :func:`repro.harness.executor.execute_wire_batch` (shared with the
    fleet worker's lease loop); this wrapper adds the service pool's
    crash-injection hook and keeps the historic
    ``repro.service.scheduler.run_batch`` name the spawn pool pickles.
    See :func:`~repro.harness.executor.execute_wire_batch` for the
    outcome-dict contract and the gang fast path.
    """
    _maybe_crash()
    return execute_wire_batch(wire_specs)


class BatchScheduler:
    """Pulls jobs off a :class:`JobQueue` and runs them on a process
    pool with batching, a bounded in-flight window, per-point timeouts,
    and crash retry.  Start with :meth:`start`; stop with :meth:`stop`.
    """

    def __init__(self, queue: JobQueue,
                 metrics: Optional[ServiceMetrics] = None,
                 workers: int = 1, batch_size: int = 4,
                 max_inflight: Optional[int] = None,
                 max_retries: int = 2, retry_backoff_s: float = 0.25,
                 default_timeout_s: Optional[float] = None,
                 poll_s: float = 0.02) -> None:
        if workers <= 0:
            workers = os.cpu_count() or 1
        self.queue = queue
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.workers = workers
        self.batch_size = max(1, batch_size)
        self.max_inflight = max_inflight if max_inflight else 2 * workers
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.default_timeout_s = default_timeout_s
        self.poll_s = poll_s
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inflight: Dict[object, List[Job]] = {}
        self._deadlines: Dict[object, float] = {}
        self._abandoned: Set[object] = set()
        self._delayed: List[Tuple[float, int, Job]] = []
        self._delay_seq = itertools.count()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._drain = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-service-scheduler",
                                        daemon=True)
        self._thread.start()

    def stop(self, drain: bool = True,
             timeout: Optional[float] = None) -> bool:
        """Stop the control loop.

        ``drain=True`` finishes every queued and in-flight job first;
        ``drain=False`` fails outstanding jobs with a ``shutdown`` error
        and cancels whatever the pool has not started.  Returns whether
        the loop exited within *timeout*.
        """
        self._drain = drain
        self._stop.set()
        self._wake.set()
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def kick(self) -> None:
        """Wake the control loop early (called on submission)."""
        self._wake.set()

    @property
    def inflight(self) -> int:
        """Points currently running or pending inside the pool."""
        return sum(len(jobs) for fut, jobs in self._inflight.items()
                   if fut not in self._abandoned)

    @property
    def idle(self) -> bool:
        """No work anywhere — including jobs already popped from the
        queue but not yet registered in the in-flight table, which
        ``queue.active`` still counts (they hold their digest until
        resolved).  Drain decisions must use this, not queue depth."""
        return not self._inflight and not self._delayed and \
            self.queue.active == 0

    # -- pool management ---------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            ctx = multiprocessing.get_context("spawn")
            self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                             mp_context=ctx)
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            # terminate before shutdown(): shutdown nulls the pool's
            # process table, after which the workers can't be reached.
            terminate_workers(self._pool)
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        # abandoned futures belonged to the dead pool; forget them.
        self._abandoned.clear()

    # -- control loop ------------------------------------------------------

    def _loop(self) -> None:
        while True:
            self._reap()
            self._requeue_ready()
            if self._stop.is_set():
                if not self._drain or self.idle:
                    break
            self._fill()
            self._wake.wait(self.poll_s)
            self._wake.clear()
        self._finalize()

    def _finalize(self) -> None:
        if not self._drain:
            shutdown_error = {"type": "shutdown",
                              "message": "service stopped before the job "
                                         "finished"}
            for fut, jobs in list(self._inflight.items()):
                for job in jobs:
                    self.queue.fail(job, shutdown_error)
            self._inflight.clear()
            for _, _, job in self._delayed:
                self.queue.fail(job, shutdown_error)
            self._delayed.clear()
            for job in iter(lambda: self.queue.take_batch(64), []):
                for j in job:
                    self.queue.fail(j, shutdown_error)
        if self._pool is not None:
            if not self._drain:
                terminate_workers(self._pool)
            self._pool.shutdown(wait=self._drain, cancel_futures=True)
            self._pool = None

    def _fill(self) -> None:
        # gang=True biases each batch toward one trace signature so the
        # worker-side gang path gets whole gangs, not fragments.
        gang = gang_enabled()
        while len(self._inflight) < self.max_inflight:
            batch = self.queue.take_batch(self.batch_size, gang=gang)
            if not batch:
                return
            self._submit(batch)

    def _submit(self, batch: List[Job]) -> None:
        wire = []
        deadline = None
        for job in batch:
            timeout_s = job.timeout_s if job.timeout_s is not None \
                else self.default_timeout_s
            wire.append({**job.spec.to_wire(), "_timeout_s": timeout_s})
            if timeout_s is not None:
                budget = timeout_s * len(batch)
                deadline = time.monotonic() + budget + 5.0
        try:
            future = self._ensure_pool().submit(run_batch, wire)
        except (BrokenProcessPool, RuntimeError):
            # pool died between batches: rebuild once and retry the
            # submission; a second failure crashes the batch path below.
            self._discard_pool()
            future = self._ensure_pool().submit(run_batch, wire)
        self.metrics.inc("batches")
        self._inflight[future] = batch
        if deadline is not None:
            self._deadlines[future] = deadline

    def _reap(self) -> None:
        now = time.monotonic()
        for future, jobs in list(self._inflight.items()):
            if not future.done():
                deadline = self._deadlines.get(future)
                if deadline is not None and now > deadline and \
                        future not in self._abandoned:
                    # the in-worker alarm failed to fire (blocked signal,
                    # platform without SIGALRM): fail the jobs but leave
                    # the still-running future to finish into the void.
                    for job in jobs:
                        self.metrics.inc("timeouts")
                        self.queue.fail(job, {
                            "type": "timeout",
                            "message": "worker missed its deadline"})
                    self._abandoned.add(future)
                continue
            batch = self._inflight.pop(future)
            self._deadlines.pop(future, None)
            if future in self._abandoned:
                self._abandoned.discard(future)
                continue
            try:
                outcomes = future.result()
            except BrokenProcessPool:
                self._discard_pool()
                self.metrics.inc("worker_crashes")
                for job in batch:
                    self._retry_or_fail(job)
                continue
            # service boundary: an unexpected worker exception must become
            # a structured job failure, never kill the scheduler thread.
            except Exception as exc:  # repro-lint: disable=DET104
                for job in batch:
                    self.queue.fail(job, {"type": "worker-error",
                                          "message": repr(exc)})
                continue
            for job, outcome in zip(batch, outcomes):
                if outcome["ok"]:
                    if outcome["store_hit"]:
                        self.metrics.inc("worker_store_hits")
                    else:
                        self.metrics.inc("executed_points")
                    self.queue.complete(job, outcome["result"],
                                        outcome["elapsed_s"])
                else:
                    if outcome["error"].get("type") == "timeout":
                        self.metrics.inc("timeouts")
                    self.queue.fail(job, outcome["error"])

    def _retry_or_fail(self, job: Job) -> None:
        job.attempts += 1
        if job.attempts > self.max_retries:
            self.queue.fail(job, {
                "type": "worker-crash",
                "message": f"worker died {job.attempts} time(s); "
                           f"retries exhausted"})
            return
        self.metrics.inc("retries")
        delay = self.retry_backoff_s * (2 ** (job.attempts - 1))
        heapq.heappush(self._delayed,
                       (time.monotonic() + delay, next(self._delay_seq),
                        job))

    def _requeue_ready(self) -> None:
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            _, _, job = heapq.heappop(self._delayed)
            self.queue.requeue(job)
