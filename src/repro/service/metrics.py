"""Service observability: counters, rates, and latency quantiles.

One :class:`ServiceMetrics` instance is shared by the queue, the
scheduler, and the HTTP layer; :meth:`snapshot` renders the
``GET /metrics`` document.  Latency quantiles come from a bounded
reservoir of the most recent job latencies (submit → terminal state),
and ``jobs_per_sec`` is measured over a sliding window so an idle
service decays to zero instead of averaging over its whole uptime.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, Optional

from repro.service.jobs import Job, JobQueue, JobState


def _quantile(sorted_values, q: float) -> Optional[float]:
    """Nearest-rank quantile of an ascending list (None when empty)."""
    if not sorted_values:
        return None
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


class ServiceMetrics:
    """Thread-safe counters and derived rates for the service."""

    def __init__(self, window_s: float = 60.0,
                 reservoir: int = 1024) -> None:
        self.window_s = window_s
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self.counters: Dict[str, int] = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "executed_points": 0,    #: simulations actually run by workers
            "worker_store_hits": 0,  #: points a worker served from disk
            "batches": 0,
            "retries": 0,
            "worker_crashes": 0,
            "timeouts": 0,
            # fleet-mode counters (all zero under the local scheduler)
            "fleet_dispatched": 0,     #: points leased to worker nodes
            "fleet_steals": 0,         #: leases served by work-stealing
            "fleet_requeued": 0,       #: points re-queued from revoked leases
            "fleet_leases_expired": 0,
            "fleet_node_failures": 0,  #: nodes reaped for missed heartbeats
            "fleet_stale_reports": 0,  #: late/duplicate completion reports
        }
        self._latencies: deque = deque(maxlen=reservoir)
        self._completions: deque = deque()  #: monotonic finish stamps
        #: per-campaign {submitted, completed, failed} counters, keyed
        #: by the analytics tag riding on submissions (see Job.campaign).
        self._campaigns: Dict[str, Dict[str, int]] = {}

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] += n

    def _campaign(self, name: str) -> Dict[str, int]:
        return self._campaigns.setdefault(
            name, {"submitted": 0, "completed": 0, "failed": 0})

    def campaign_submitted(self, name: str) -> None:
        with self._lock:
            self._campaign(name)["submitted"] += 1

    def campaign_counters(self) -> Dict[str, Dict[str, int]]:
        """Copy of the per-campaign counters (the ``/campaigns`` feed)."""
        with self._lock:
            return {name: dict(c) for name, c in self._campaigns.items()}

    def job_finished(self, job: Job) -> None:
        """Record a job reaching a terminal state (the queue's
        ``on_finish`` hook)."""
        now = time.monotonic()
        with self._lock:
            if job.state == JobState.DONE:
                self.counters["jobs_completed"] += 1
            else:
                self.counters["jobs_failed"] += 1
            if job.campaign is not None:
                key = "completed" if job.state == JobState.DONE \
                    else "failed"
                self._campaign(job.campaign)[key] += 1
            if job.latency_s is not None:
                self._latencies.append(job.latency_s)
            self._completions.append(now)
            cutoff = now - self.window_s
            while self._completions and self._completions[0] < cutoff:
                self._completions.popleft()

    def snapshot(self, queue: JobQueue, inflight: int,
                 draining: bool = False,
                 fleet: Optional[dict] = None) -> dict:
        """The ``GET /metrics`` document.  *fleet*, when the server
        runs a :class:`~repro.fleet.FleetDispatcher`, is its
        ``status()`` document and adds a ``fleet`` section (node count,
        routed depth) on top of the flat counters."""
        now = time.monotonic()
        with self._lock:
            counters = dict(self.counters)
            latencies = sorted(self._latencies)
            cutoff = now - self.window_s
            recent = sum(1 for t in self._completions if t >= cutoff)
            campaigns_tracked = len(self._campaigns)
        uptime = now - self.started_at
        window = min(self.window_s, uptime) or 1e-9
        submitted = counters["jobs_submitted"]
        served_from_cache = queue.cache_hits + queue.dedup_hits + \
            counters["worker_store_hits"]
        doc = {
            "uptime_s": uptime,
            "draining": draining,
            "queue_depth": queue.depth,
            "inflight": inflight,
            "jobs_per_sec": recent / window,
            "cache_hits": queue.cache_hits,
            "dedup_hits": queue.dedup_hits,
            "cache_hit_rate": (served_from_cache / submitted)
            if submitted else 0.0,
            "latency_p50_s": _quantile(latencies, 0.50),
            "latency_p95_s": _quantile(latencies, 0.95),
            "campaigns_tracked": campaigns_tracked,
            **counters,
        }
        if fleet is not None:
            nodes = fleet.get("nodes", [])
            doc["fleet"] = {
                "nodes": len(nodes),
                "nodes_alive": sum(1 for n in nodes if n.get("alive")),
                "routed": fleet.get("routed_total", 0),
                "leases": len(fleet.get("leases", [])),
            }
            # routed jobs are still waiting for a worker: surface them
            # in the headline depth so dashboards see real backlog.
            doc["queue_depth"] += fleet.get("routed_total", 0)
        return doc
