"""Simulation service layer: queue, batching scheduler, server, client.

Turns the batch reproduction into a long-lived servable system in the
shape of an inference-serving stack: requests (simulation points) are
queued with priorities, deduplicated against the content-addressed
result store and against identical in-flight work, coalesced into
batches for a bounded worker-process fleet, and observable through a
metrics endpoint.  See ``docs/service.md``.

Quick start::

    # terminal 1
    python -m repro serve --port 8642 --workers 4

    # terminal 2
    python -m repro submit pchase.mem,ilp.int4,stream.add,serial.alu \
        --length 4000

    # or programmatically
    from repro.service import ServiceClient
    client = ServiceClient("http://127.0.0.1:8642")
    doc = client.run({"config": "shelf64", "threads": 1,
                      "benchmarks": ["pchase.mem"], "length": 2000})
"""

from repro.service.client import JobFailed, ServiceClient, ServiceError
from repro.service.jobs import (Job, JobQueue, JobSpec, JobState,
                                config_from_wire, config_to_wire)
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import BatchScheduler, run_batch
from repro.service.server import ServiceServer, run_server, serve

__all__ = [
    "BatchScheduler",
    "Job",
    "JobFailed",
    "JobQueue",
    "JobSpec",
    "JobState",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "config_from_wire",
    "config_to_wire",
    "run_batch",
    "run_server",
    "serve",
]
