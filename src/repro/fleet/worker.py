"""The fleet worker node: register, heartbeat, lease, simulate, report.

``repro worker --connect HOST:PORT`` runs a :class:`WorkerNode` against
a coordinator started with ``repro serve --fleet``.  The life cycle:

1. **register** — POST ``/fleet/register`` with a capability report
   (local job slots, gang support).  The response carries the node id
   and the fleet store topology (``REPRO_FLEET_DIR`` /
   ``REPRO_FLEET_SHARDS``): if this process has no fleet store mounted
   yet, it adopts the coordinator's, so every node shares one sharded
   store and dedup-by-digest holds fleet-wide.
2. **heartbeat** — a daemon thread beats every ``heartbeat_s``; the
   coordinator reaps a node after three missed beats and re-queues its
   leases.  A reaped worker that comes back simply re-registers under a
   fresh node id.
3. **lease / execute / report** — the main loop pulls a lease, runs it
   through :func:`repro.harness.executor.execute_wire_batch` (the same
   body the local service pool runs — store check, gang fast path,
   per-point SIGALRM), and reports outcomes.  Results are already in
   the shared sharded store by the time the report lands, so the wire
   carries digests and timings, not blobs.

Fault injection: when ``$REPRO_FLEET_CRASH_ONCE`` names an existing
file, the worker deletes it and dies with ``os._exit(3)`` *after*
taking a lease and before reporting — the exact mid-batch crash the
dispatcher's lease expiry and exactly-once re-queue must absorb.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from typing import List, Optional

from repro import envvars
from repro.core.gang import gang_enabled
from repro.harness.cache import reset_store
from repro.harness.executor import execute_wire_batch
from repro.service.client import ServiceClient, ServiceError
from repro.fleet.registry import heartbeat_interval


def default_node_name() -> str:
    """``$REPRO_FLEET_NODE`` if set, else ``<host>-<pid>``."""
    env = envvars.raw("REPRO_FLEET_NODE")
    if env:
        return env
    return f"{socket.gethostname()}-{os.getpid()}"


def _maybe_crash_fleet() -> None:
    token = envvars.raw("REPRO_FLEET_CRASH_ONCE")
    if token and os.path.exists(token):
        try:
            os.unlink(token)
        except OSError:
            pass
        os._exit(3)


class WorkerNode:
    """One worker process in the fleet."""

    def __init__(self, url: str, name: Optional[str] = None,
                 jobs: int = 1, max_points: int = 4,
                 poll_s: float = 0.05) -> None:
        self.name = name or default_node_name()
        self.jobs = max(1, jobs)
        self.max_points = max(1, max_points)
        self.poll_s = poll_s
        self.heartbeat_s = heartbeat_interval()
        # workers retry aggressively with their name as the jitter key,
        # so a rebooting fleet fans out instead of thundering-herding
        # the recovering coordinator.
        self.client = ServiceClient(url, retries=5, backoff_s=0.2,
                                    jitter_key=self.name)
        self.node_id: Optional[str] = None
        self.leases_run = 0
        self.points_run = 0
        self._stop = threading.Event()
        self._beat_thread: Optional[threading.Thread] = None

    # -- membership --------------------------------------------------------

    def register(self) -> dict:
        """Join the fleet; adopt its store topology if we have none."""
        doc = self.client.fleet_register(self.name, jobs=self.jobs,
                                         gang=gang_enabled())
        self.node_id = doc["node_id"]
        if doc.get("heartbeat_s"):
            self.heartbeat_s = float(doc["heartbeat_s"])
        fleet = doc.get("fleet") or {}
        if fleet.get("dir") and not envvars.raw("REPRO_FLEET_DIR"):
            os.environ["REPRO_FLEET_DIR"] = str(fleet["dir"])
            if fleet.get("shards"):
                os.environ["REPRO_FLEET_SHARDS"] = str(fleet["shards"])
            reset_store()  # next get_store() mounts the sharded store
        return doc

    def _beat(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            if self.node_id is None:
                continue
            try:
                doc = self.client.fleet_heartbeat(self.node_id)
            except ServiceError:
                continue  # coordinator briefly away; the lease loop's
                # registered-client retries already cover recovery
            if not doc.get("known", True):
                # reaped while we were slow: rejoin under a fresh id
                try:
                    self.register()
                except ServiceError:
                    continue

    # -- main loop ---------------------------------------------------------

    def start(self) -> None:
        self.register()
        self._beat_thread = threading.Thread(
            target=self._beat, name=f"repro-fleet-beat-{self.name}",
            daemon=True)
        self._beat_thread.start()

    def stop(self) -> None:
        self._stop.set()

    def run(self, idle_exit_s: Optional[float] = None,
            max_leases: Optional[int] = None) -> int:
        """Serve leases until stopped.

        *idle_exit_s* exits after that long with no work (used by tests
        and the smoke script); *max_leases* bounds the number of leases
        served.  Returns the number of points executed or served."""
        if self.node_id is None:
            self.start()
        idle_since = time.monotonic()
        while not self._stop.is_set():
            if max_leases is not None and self.leases_run >= max_leases:
                break
            try:
                lease = self.client.fleet_lease(self.node_id,
                                                self.max_points)
            except ServiceError as exc:
                if exc.status == 404:
                    self.register()  # reaped: rejoin and retry
                    continue
                raise
            if lease is None:
                if idle_exit_s is not None and \
                        time.monotonic() - idle_since > idle_exit_s:
                    break
                self._stop.wait(self.poll_s)
                continue
            idle_since = time.monotonic()
            self._run_lease(lease)
        self.stop()
        return self.points_run

    def _run_lease(self, lease: dict) -> None:
        _maybe_crash_fleet()
        wire_jobs = lease["jobs"]
        outcomes = execute_wire_batch(wire_jobs)
        report: List[dict] = []
        for wire, outcome in zip(wire_jobs, outcomes):
            entry = {"job_id": wire.get("job_id"), "ok": outcome["ok"]}
            if outcome["ok"]:
                entry["elapsed_s"] = outcome["elapsed_s"]
                entry["store_hit"] = outcome["store_hit"]
            else:
                entry["error"] = outcome["error"]
            report.append(entry)
        self.leases_run += 1
        self.points_run += len(wire_jobs)
        try:
            self.client.fleet_complete(self.node_id, lease["lease_id"],
                                       report)
        except ServiceError:
            # the report is lost but the results are in the shared
            # store: the coordinator's lease expiry re-queues the jobs,
            # and the retry completes them as instant store hits.
            pass


def worker_main(connect: str, name: Optional[str] = None, jobs: int = 1,
                max_points: int = 4,
                idle_exit_s: Optional[float] = None) -> int:
    """Blocking entry point used by ``python -m repro worker``."""
    node = WorkerNode(connect, name=name, jobs=jobs,
                      max_points=max_points)

    def _drain(signum, frame):
        node.stop()

    for signame in ("SIGTERM", "SIGINT"):
        if hasattr(signal, signame):
            signal.signal(getattr(signal, signame), _drain)
    try:
        node.start()
    except ServiceError as exc:
        print(f"repro worker: cannot join fleet at {connect}: {exc}",
              flush=True)
        return 1
    print(f"repro worker {node.name} joined fleet at "
          f"http://{node.client.host}:{node.client.port} "
          f"as {node.node_id} (jobs={node.jobs}, "
          f"gang={'on' if gang_enabled() else 'off'})", flush=True)
    points = node.run(idle_exit_s=idle_exit_s)
    print(f"repro worker {node.name} leaving: {points} point(s) over "
          f"{node.leases_run} lease(s)", flush=True)
    return 0
