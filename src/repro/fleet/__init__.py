"""Sharded multi-node fleet over the simulation service.

The fleet subsystem scales the single-server service layer
(:mod:`repro.service`) across worker nodes, stdlib-only:

* :mod:`repro.fleet.shards` — the content-addressed store sharded by
  digest prefix (:class:`ShardedStore`), with warehouse index rows
  replicated to every shard while blobs stay on exactly one;
* :mod:`repro.fleet.registry` — worker registration, heartbeats, and
  salt-stable rendezvous routing (:class:`NodeRegistry`);
* :mod:`repro.fleet.dispatch` — the coordinator's work-stealing
  dispatcher (:class:`FleetDispatcher`): locality routing to per-node
  queues, bounded leases, exactly-once re-queue of dead workers' jobs;
* :mod:`repro.fleet.worker` — the worker node process
  (:class:`WorkerNode`, ``repro worker --connect HOST:PORT``);
* :mod:`repro.fleet.dashboard` — the polling browser dashboard served
  at ``GET /dashboard`` (``repro serve --dashboard``).

Fleet topology is pure deployment state: results are bit-identical to
local runs, digests never see any ``REPRO_FLEET_*`` knob, and
dedup-by-digest holds fleet-wide because every node mounts the same
sharded store.
"""

from repro.fleet.dispatch import FleetDispatcher
from repro.fleet.registry import NodeInfo, NodeRegistry
from repro.fleet.shards import (FleetWarehouse, ShardedStore, fleet_dir,
                                fleet_shard_count, shard_index)
from repro.fleet.worker import WorkerNode

__all__ = [
    "FleetDispatcher",
    "FleetWarehouse",
    "NodeInfo",
    "NodeRegistry",
    "ShardedStore",
    "WorkerNode",
    "fleet_dir",
    "fleet_shard_count",
    "shard_index",
]
