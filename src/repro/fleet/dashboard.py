"""The service/fleet browser dashboard (one self-contained HTML page).

``repro serve --dashboard`` exposes ``GET /dashboard``: a single
stdlib-served page, zero external assets, that polls the JSON the
server already publishes — ``/metrics``, ``/campaigns``, and (in fleet
mode) ``/fleet/nodes`` — every couple of seconds and renders queue
depth, throughput, per-node worker status, and campaign progress bars.
All rendering happens client-side from those documents, so the page
adds no server state and no new data paths: it is a *view* over the
observability endpoints, and curling them remains the scriptable
equivalent.
"""

from __future__ import annotations

#: poll period of the page, seconds (client-side).
POLL_S = 2.0

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro service dashboard</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         margin: 1.5rem; background: #111418; color: #d6dbe1; }
  h1 { font-size: 1.1rem; letter-spacing: .06em; }
  h2 { font-size: .9rem; margin: 1.4rem 0 .4rem;
       color: #8ab4f8; text-transform: uppercase; }
  .cards { display: flex; flex-wrap: wrap; gap: .6rem; }
  .card { background: #1b2026; border: 1px solid #2a313a;
          border-radius: 6px; padding: .5rem .8rem; min-width: 7.5rem; }
  .card .v { font-size: 1.3rem; color: #e8eaed; }
  .card .k { font-size: .7rem; color: #9aa0a6; }
  table { border-collapse: collapse; width: 100%%; font-size: .8rem; }
  th, td { text-align: left; padding: .25rem .6rem;
           border-bottom: 1px solid #2a313a; }
  th { color: #9aa0a6; font-weight: normal; }
  .ok { color: #81c995; } .dead { color: #f28b82; }
  .bar { background: #2a313a; border-radius: 3px; height: .55rem;
         width: 10rem; display: inline-block; vertical-align: middle; }
  .bar i { display: block; height: 100%%; border-radius: 3px;
           background: #8ab4f8; }
  #err { color: #f28b82; font-size: .8rem; min-height: 1rem; }
  footer { margin-top: 1.5rem; font-size: .7rem; color: #5f6368; }
</style>
</head>
<body>
<h1>repro service dashboard</h1>
<div id="err"></div>
<h2>Service</h2>
<div class="cards" id="cards"></div>
<h2>Worker nodes</h2>
<table id="nodes"><tbody><tr><td>local scheduler (no fleet)</td></tr>
</tbody></table>
<h2>Campaigns</h2>
<table id="campaigns"><tbody></tbody></table>
<footer>polling /metrics, /campaigns, /fleet/nodes every %(poll_ms)d ms
&middot; stdlib only</footer>
<script>
"use strict";
const POLL_MS = %(poll_ms)d;
const fmt = (v, d) => v == null ? "&ndash;"
  : typeof v === "number" ? v.toFixed(d === undefined ? 0 : d) : v;
function card(k, v) {
  return `<div class="card"><div class="v">${v}</div>` +
         `<div class="k">${k}</div></div>`;
}
async function fetchJSON(path) {
  const r = await fetch(path);
  if (!r.ok) throw new Error(path + " -> " + r.status);
  return r.json();
}
function renderMetrics(m) {
  document.getElementById("cards").innerHTML = [
    card("queue depth", fmt(m.queue_depth)),
    card("in flight", fmt(m.inflight)),
    card("jobs/sec", fmt(m.jobs_per_sec, 2)),
    card("completed", fmt(m.jobs_completed)),
    card("failed", fmt(m.jobs_failed)),
    card("cache hit rate", fmt(100 * (m.cache_hit_rate || 0), 1) + "%%"),
    card("p95 latency", m.latency_p95_s == null ? "&ndash;"
         : fmt(m.latency_p95_s, 3) + "s"),
    card("state", m.draining ? "draining" : "serving"),
  ].join("");
}
function renderNodes(doc) {
  const rows = (doc.nodes || []).map(n =>
    `<tr><td>${n.name} <small>(${n.node_id})</small></td>` +
    `<td class="${n.alive ? "ok" : "dead"}">` +
    `${n.alive ? "alive" : "DEAD"}</td>` +
    `<td>${n.jobs}</td><td>${n.gang ? "gang" : "solo"}</td>` +
    `<td>${fmt(n.routed)}</td><td>${fmt(n.leased)}</td>` +
    `<td>${fmt(n.completed)}</td><td>${fmt(n.failed)}</td>` +
    `<td>${fmt(n.heartbeat_age_s, 1)}s</td></tr>`);
  document.getElementById("nodes").innerHTML =
    "<thead><tr><th>node</th><th>state</th><th>jobs</th><th>mode</th>" +
    "<th>routed</th><th>leased</th><th>done</th><th>failed</th>" +
    "<th>last beat</th></tr></thead><tbody>" +
    (rows.length ? rows.join("") :
     "<tr><td colspan=9>no workers registered</td></tr>") + "</tbody>";
}
function renderCampaigns(doc) {
  const rows = (doc.campaigns || []).map(c => {
    const svc = c.service || {};
    const total = c.total || svc.submitted || 0;
    const done = (c.completed != null ? c.completed : svc.completed) || 0;
    const pct = total ? Math.min(100, 100 * done / total) : 0;
    return `<tr><td>${c.name}</td>` +
      `<td><span class="bar"><i style="width:${pct}%%"></i></span> ` +
      `${done}/${total || "?"}</td>` +
      `<td>${fmt(svc.failed)}</td>` +
      `<td>${c.mean_ipc_total == null ? "&ndash;"
             : fmt(c.mean_ipc_total, 3)}</td></tr>`;
  });
  document.getElementById("campaigns").innerHTML =
    "<thead><tr><th>campaign</th><th>progress</th><th>failed</th>" +
    "<th>mean IPC</th></tr></thead><tbody>" +
    (rows.length ? rows.join("") :
     "<tr><td colspan=4>no campaigns yet</td></tr>") + "</tbody>";
}
async function tick() {
  const err = document.getElementById("err");
  try {
    renderMetrics(await fetchJSON("/metrics"));
    renderCampaigns(await fetchJSON("/campaigns"));
    try { renderNodes(await fetchJSON("/fleet/nodes")); }
    catch (e) { /* not in fleet mode: keep the local-scheduler row */ }
    err.textContent = "";
  } catch (e) { err.textContent = "poll failed: " + e.message; }
}
tick();
setInterval(tick, POLL_MS);
</script>
</body>
</html>
"""


def render_dashboard() -> str:
    """The complete dashboard page as a string (served verbatim)."""
    return _PAGE % {"poll_ms": int(POLL_S * 1000)}
