"""Worker registration, heartbeats, and salt-stable node routing.

The coordinator tracks its fleet in a :class:`NodeRegistry`: workers
self-register with a capability report (local job slots, gang support,
which store shards they front), then heartbeat on a fixed interval.  A
node that misses three consecutive intervals is reaped — the dispatcher
re-queues its leased jobs exactly once (see
:mod:`repro.fleet.dispatch`).

Routing is rendezvous (highest-random-weight) hashing over the alive
set: ``route(key)`` picks, for a job's *locality key* (the trace
signature — benchmarks/length/seed/stop), the node with the highest
``sha256(key | node_id)``.  The properties that matter:

* **deterministic** — every process that sees the same alive set routes
  the same key to the same node, with no shared state;
* **local** — grid neighbours (same traces, different configs) share a
  locality key, so they land on the same node, keeping its trace memo
  and gang batches warm;
* **stable under churn** — when a node joins or dies, only the keys
  whose argmax involved that node move; everything else stays put.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import envvars

#: heartbeats a node may miss before it is declared dead.
MISSED_HEARTBEAT_LIMIT = 3


def heartbeat_interval() -> float:
    """Fleet heartbeat interval from ``$REPRO_FLEET_HEARTBEAT_S``."""
    raw = (envvars.raw("REPRO_FLEET_HEARTBEAT_S") or "2").strip()
    try:
        return max(0.05, float(raw))
    except ValueError:
        raise ValueError(
            f"bad REPRO_FLEET_HEARTBEAT_S value {raw!r}") from None


def lease_budget() -> float:
    """Per-point lease budget from ``$REPRO_FLEET_LEASE_S``."""
    raw = (envvars.raw("REPRO_FLEET_LEASE_S") or "60").strip()
    try:
        return max(0.1, float(raw))
    except ValueError:
        raise ValueError(f"bad REPRO_FLEET_LEASE_S value {raw!r}") from None


@dataclass
class NodeInfo:
    """One registered worker node."""

    node_id: str
    #: human label (``$REPRO_FLEET_NODE`` or host-pid derived).
    name: str
    #: local simulation job slots the node runs leases with.
    jobs: int = 1
    #: whether the node's executor gang-batches compatible points.
    gang: bool = True
    #: store shards the node fronts (informational; every node can
    #: reach every shard through the shared fleet dir).
    shards: List[int] = field(default_factory=list)
    registered_at: float = 0.0
    last_heartbeat: float = 0.0
    #: lifetime completion counters, reported for /fleet/nodes.
    completed: int = 0
    failed: int = 0

    def alive(self, now: float, interval: float) -> bool:
        return (now - self.last_heartbeat
                < MISSED_HEARTBEAT_LIMIT * interval)

    def to_wire(self, now: float, interval: float) -> Dict[str, object]:
        return {
            "node_id": self.node_id,
            "name": self.name,
            "jobs": self.jobs,
            "gang": self.gang,
            "shards": list(self.shards),
            "alive": self.alive(now, interval),
            "age_s": round(now - self.registered_at, 3),
            "heartbeat_age_s": round(now - self.last_heartbeat, 3),
            "completed": self.completed,
            "failed": self.failed,
        }


def _weight(key: str, node_id: str) -> int:
    """Rendezvous weight of *node_id* for *key* (first 8 bytes of a
    sha256 as a big-endian int — plenty of spread, fully portable)."""
    payload = f"{key}|{node_id}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class NodeRegistry:
    """Thread-safe registry of fleet workers.

    The server's asyncio loop and the dispatcher's pump thread both
    touch it, so every method takes the lock; all are O(nodes), and
    fleets are small (tens of nodes, not thousands).
    """

    def __init__(self, heartbeat_s: Optional[float] = None) -> None:
        self.heartbeat_s = (heartbeat_s if heartbeat_s is not None
                            else heartbeat_interval())
        self._nodes: Dict[str, NodeInfo] = {}
        self._lock = threading.Lock()
        self._counter = 0

    # -- membership --------------------------------------------------------

    def register(self, name: str, jobs: int = 1, gang: bool = True,
                 shards: Optional[List[int]] = None) -> NodeInfo:
        """Admit a worker; returns its :class:`NodeInfo` (the node_id in
        it is what the worker must present on every later call)."""
        now = time.monotonic()
        with self._lock:
            self._counter += 1
            node_id = f"node-{self._counter:03d}"
            info = NodeInfo(node_id=node_id, name=name,
                            jobs=max(1, int(jobs)), gang=bool(gang),
                            shards=list(shards or []),
                            registered_at=now, last_heartbeat=now)
            self._nodes[node_id] = info
            return info

    def heartbeat(self, node_id: str) -> bool:
        """Refresh a node's liveness; False for unknown (reaped) nodes —
        the worker should re-register."""
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None:
                return False
            info.last_heartbeat = time.monotonic()
            return True

    def touch(self, node_id: str) -> None:
        """Any authenticated traffic (lease, completion report) counts
        as liveness, so a busy worker never needs a separate beat."""
        self.heartbeat(node_id)

    def get(self, node_id: str) -> Optional[NodeInfo]:
        with self._lock:
            return self._nodes.get(node_id)

    def reap(self) -> List[NodeInfo]:
        """Remove nodes past :data:`MISSED_HEARTBEAT_LIMIT` missed
        heartbeats; returns the corpses (the dispatcher re-queues their
        leases)."""
        now = time.monotonic()
        with self._lock:
            dead = [info for info in self._nodes.values()
                    if not info.alive(now, self.heartbeat_s)]
            for info in dead:
                del self._nodes[info.node_id]
            return dead

    def alive_ids(self) -> List[str]:
        now = time.monotonic()
        with self._lock:
            return sorted(node_id for node_id, info in self._nodes.items()
                          if info.alive(now, self.heartbeat_s))

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    # -- routing -----------------------------------------------------------

    def route(self, key: str) -> Optional[str]:
        """The alive node owning locality key *key* under rendezvous
        hashing, or None when the fleet is empty."""
        candidates = self.alive_ids()
        if not candidates:
            return None
        return max(candidates, key=lambda node_id: _weight(key, node_id))

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> List[Dict[str, object]]:
        now = time.monotonic()
        with self._lock:
            return [info.to_wire(now, self.heartbeat_s)
                    for _, info in sorted(self._nodes.items())]
