"""Work-stealing fleet dispatcher: locality routing, bounded leases,
exactly-once re-queue.

The :class:`FleetDispatcher` replaces the local
:class:`~repro.service.scheduler.BatchScheduler` inside a coordinator
(``repro serve --fleet``).  Instead of a process pool it feeds
registered worker nodes through a **pull** protocol:

1. **routing** — a pump thread drains the central
   :class:`~repro.service.jobs.JobQueue` into per-node queues, keyed by
   each job's locality key (trace signature) under rendezvous hashing
   (:meth:`NodeRegistry.route`): grid neighbours land on the same node,
   keeping its trace memo and gang batches warm.  Routed jobs stay in
   the QUEUED state — they are *waiting at a node*, not running.
2. **leasing** — a worker's ``POST /fleet/lease`` takes a batch from
   its own queue; an idle worker **steals from the tail of the deepest
   other queue** (the tail is the cold end — the owner consumes from
   the head, so stolen work is the least locality-profitable).  Leased
   jobs go RUNNING under a deadline of ``lease_s × points`` plus a
   heartbeat of margin.
3. **completion** — ``POST /fleet/complete`` resolves each job.  The
   worker has already written every simulated result into the shared
   sharded store, so the coordinator reads blobs *through the store*
   (read-through replication); a wire-borne pickle is only a fallback.
   Reports for jobs that already finished elsewhere are counted as
   stale and dropped — never double-completed.
4. **failure** — a lease whose deadline passes, or whose node dies
   (three missed heartbeats), is revoked: the lease is popped *first*,
   then its unfinished jobs are re-queued — the pop is what makes the
   re-queue exactly-once, because expiry, node death, and late
   completion all race for the same lease entry and only one can win.

The surface (``start``/``stop``/``kick``/``inflight``/``idle``) matches
the local scheduler, so :class:`~repro.service.server.ServiceServer`
swaps one for the other and every HTTP endpoint behaves identically.
"""

from __future__ import annotations

import base64
import itertools
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.core.gang import gang_enabled
from repro.service.jobs import Job, JobQueue
from repro.service.metrics import ServiceMetrics
from repro.fleet.registry import NodeRegistry, lease_budget

#: slack added to every lease deadline, so a healthy worker is never
#: revoked over scheduling jitter on the last point of its batch.
LEASE_MARGIN_S = 1.0


@dataclass
class Lease:
    """One outstanding batch of jobs at one worker node."""

    lease_id: str
    node_id: str
    jobs: List[Job] = field(repr=False, default_factory=list)
    deadline: float = 0.0
    created_at: float = 0.0


class FleetDispatcher:
    """Routes queued jobs to worker nodes and polices their leases."""

    def __init__(self, queue: JobQueue,
                 registry: Optional[NodeRegistry] = None,
                 metrics: Optional[ServiceMetrics] = None,
                 batch_size: int = 4, max_retries: int = 2,
                 lease_s: Optional[float] = None,
                 poll_s: float = 0.05) -> None:
        self.queue = queue
        self.registry = registry if registry is not None else NodeRegistry()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.batch_size = max(1, batch_size)
        self.max_retries = max_retries
        self.lease_s = lease_s if lease_s is not None else lease_budget()
        self.poll_s = poll_s
        self._routed: Dict[str, Deque[Job]] = {}
        self._leases: Dict[str, Lease] = {}
        self._lease_seq = itertools.count(1)
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._drain = False
        self._thread: Optional[threading.Thread] = None

    # -- scheduler-compatible surface --------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("dispatcher already started")
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-fleet-dispatcher",
                                        daemon=True)
        self._thread.start()

    def stop(self, drain: bool = True,
             timeout: Optional[float] = None) -> bool:
        """Stop the pump.  ``drain=True`` waits for outstanding work;
        ``drain=False`` fails every queued, routed, and leased job with
        a ``shutdown`` error.  Returns whether the pump thread exited
        within *timeout*."""
        self._drain = drain
        self._stop.set()
        self._wake.set()
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def kick(self) -> None:
        self._wake.set()

    @property
    def inflight(self) -> int:
        """Points currently leased to worker nodes."""
        with self._lock:
            return sum(len(lease.jobs) for lease in self._leases.values())

    @property
    def routed(self) -> int:
        """Points routed to a node queue but not yet leased."""
        with self._lock:
            return sum(len(dq) for dq in self._routed.values())

    @property
    def idle(self) -> bool:
        with self._lock:
            if self._leases or any(self._routed.values()):
                return False
        return self.queue.active == 0

    #: the local scheduler reports its pool width here; a fleet's width
    #: is however many nodes are alive right now.
    @property
    def workers(self) -> int:
        return max(1, len(self.registry))

    # -- pump thread -------------------------------------------------------

    def _loop(self) -> None:
        while True:
            self._police()
            self._route_pending()
            if self._stop.is_set():
                if not self._drain or self.idle:
                    break
            self._wake.wait(self.poll_s)
            self._wake.clear()
        self._finalize()

    def _police(self) -> None:
        """Reap dead nodes and expired leases; re-queue their jobs."""
        dead = self.registry.reap()
        now = time.monotonic()
        revoked: List[Lease] = []
        orphaned: List[Job] = []
        with self._lock:
            for info in dead:
                self.metrics.inc("fleet_node_failures")
                dq = self._routed.pop(info.node_id, None)
                if dq:
                    orphaned.extend(dq)
                for lease_id, lease in list(self._leases.items()):
                    if lease.node_id == info.node_id:
                        revoked.append(self._leases.pop(lease_id))
            for lease_id, lease in list(self._leases.items()):
                if now > lease.deadline:
                    self.metrics.inc("fleet_leases_expired")
                    revoked.append(self._leases.pop(lease_id))
        # routed-but-unleased jobs were never running: straight back to
        # the central heap for re-routing, no attempt charged.
        for job in orphaned:
            if not job.finished:
                self.queue.requeue(job)
        for lease in revoked:
            self._requeue_lease(lease)

    def _requeue_lease(self, lease: Lease) -> None:
        """Re-queue a revoked lease's unfinished jobs — exactly once,
        because the caller already popped the lease entry and every
        revocation path goes through that pop."""
        for job in lease.jobs:
            if job.finished:
                continue
            job.attempts += 1
            if job.attempts > self.max_retries:
                self.queue.fail(job, {
                    "type": "worker-crash",
                    "message": f"fleet lease revoked {job.attempts} "
                               f"time(s); retries exhausted"})
                continue
            self.metrics.inc("fleet_requeued")
            self.queue.requeue(job)

    def _route_pending(self) -> None:
        """Drain the central heap into per-node queues by locality."""
        if not self.registry.alive_ids():
            return  # no fleet yet; jobs wait in the central heap
        gang = gang_enabled()
        while True:
            batch = self.queue.take_batch(self.batch_size, gang=gang,
                                          mark_running=False)
            if not batch:
                return
            with self._lock:
                for job in batch:
                    if job.finished:
                        continue  # resolved while waiting (e.g. shutdown)
                    node_id = self.registry.route(job.spec.locality_key())
                    if node_id is None:
                        self.queue.requeue(job)
                        return
                    self._routed.setdefault(node_id,
                                            deque()).append(job)

    # -- worker protocol ---------------------------------------------------

    def lease(self, node_id: str,
              max_points: Optional[int] = None) -> Optional[dict]:
        """Serve a worker's lease request: own queue first, then steal
        from the tail of the deepest other queue.  Returns the wire
        lease document, or None when there is nothing to run."""
        if self.registry.get(node_id) is None:
            raise KeyError(node_id)
        self.registry.touch(node_id)
        self._route_pending()
        max_points = max_points or self.batch_size
        with self._lock:
            jobs = self._take_routed(node_id, max_points)
            if not jobs:
                jobs = self._steal(node_id, max_points)
            if not jobs:
                return None
            self.queue.mark_running(jobs)
            now = time.monotonic()
            budget = self.lease_s * len(jobs) + LEASE_MARGIN_S
            lease = Lease(lease_id=f"L{next(self._lease_seq):06d}",
                          node_id=node_id, jobs=jobs,
                          deadline=now + budget, created_at=now)
            self._leases[lease.lease_id] = lease
        self.metrics.inc("fleet_dispatched", len(jobs))
        return {
            "lease_id": lease.lease_id,
            "lease_s": self.lease_s,
            "jobs": [{"job_id": job.job_id,
                      "_timeout_s": job.timeout_s,
                      **job.spec.to_wire()} for job in jobs],
        }

    def _take_routed(self, node_id: str, max_points: int) -> List[Job]:
        dq = self._routed.get(node_id)
        jobs: List[Job] = []
        while dq and len(jobs) < max_points:
            job = dq.popleft()
            if not job.finished:
                jobs.append(job)
        return jobs

    def _steal(self, node_id: str, max_points: int) -> List[Job]:
        victim = None
        for other_id, dq in sorted(self._routed.items()):
            if other_id != node_id and dq and \
                    (victim is None or len(dq) > len(victim)):
                victim = dq
        if victim is None:
            return []
        self.metrics.inc("fleet_steals")
        jobs: List[Job] = []
        while victim and len(jobs) < max_points:
            job = victim.pop()  # tail: the cold end of the owner's queue
            if not job.finished:
                jobs.append(job)
        return jobs

    def complete(self, node_id: str, lease_id: str,
                 outcomes: List[dict]) -> dict:
        """Apply a worker's completion report.

        Every outcome names its job; a job that already reached a
        terminal state (its lease expired and a retry won the race) is
        counted as stale and left untouched.  Successful outcomes
        resolve with the result read through the sharded store —
        falling back to the wire pickle only if the blob is not (yet)
        visible."""
        self.registry.touch(node_id)
        with self._lock:
            lease = self._leases.pop(lease_id, None)
        if lease is None:
            self.metrics.inc("fleet_stale_reports")
        info = self.registry.get(node_id)
        applied = stale = 0
        for outcome in outcomes:
            job = self.queue.get(str(outcome.get("job_id")))
            if job is None or job.finished:
                stale += 1
                continue
            if outcome.get("ok"):
                result = self._load_result(job, outcome)
                if result is None:
                    self.queue.fail(job, {
                        "type": "fleet-lost-result",
                        "message": "worker reported success but the "
                                   "result is in no shard"})
                    continue
                if outcome.get("store_hit"):
                    self.metrics.inc("worker_store_hits")
                else:
                    self.metrics.inc("executed_points")
                self.queue.complete(job, result,
                                    float(outcome.get("elapsed_s", 0.0)))
                applied += 1
                if info is not None:
                    info.completed += 1
            else:
                error = outcome.get("error") or {
                    "type": "worker-error", "message": "unspecified"}
                if error.get("type") == "timeout":
                    self.metrics.inc("timeouts")
                self.queue.fail(job, error)
                if info is not None:
                    info.failed += 1
        if stale:
            self.metrics.inc("fleet_stale_reports", stale)
        self.kick()
        return {"applied": applied, "stale": stale}

    def _load_result(self, job: Job, outcome: dict):
        store = self.queue.store
        if store is not None:
            result = store.get(job.digest)
            if result is not None:
                return result
        blob = outcome.get("result_b64")
        if blob:
            try:
                return pickle.loads(base64.b64decode(blob))
            except (pickle.UnpicklingError, ValueError, EOFError,
                    TypeError):
                return None
        return None

    # -- shutdown ----------------------------------------------------------

    def _finalize(self) -> None:
        if self._drain:
            return
        shutdown_error = {"type": "shutdown",
                          "message": "service stopped before the job "
                                     "finished"}
        with self._lock:
            leased = [job for lease in self._leases.values()
                      for job in lease.jobs]
            self._leases.clear()
            routed = [job for dq in self._routed.values() for job in dq]
            self._routed.clear()
        for job in leased + routed:
            if not job.finished:
                self.queue.fail(job, shutdown_error)
        for batch in iter(lambda: self.queue.take_batch(64), []):
            for job in batch:
                if not job.finished:
                    self.queue.fail(job, shutdown_error)

    # -- reporting ---------------------------------------------------------

    def status(self) -> dict:
        """The ``GET /fleet/nodes`` document (also feeds the
        dashboard): per-node liveness, queue depths, leases."""
        with self._lock:
            depths = {nid: len(dq) for nid, dq in self._routed.items()}
            leases = [{"lease_id": lease.lease_id,
                       "node_id": lease.node_id,
                       "points": len(lease.jobs),
                       "age_s": round(time.monotonic() - lease.created_at,
                                      3)}
                      for lease in self._leases.values()]
        nodes = self.registry.snapshot()
        for node in nodes:
            node["routed"] = depths.get(node["node_id"], 0)
            node["leased"] = sum(entry["points"] for entry in leases
                                 if entry["node_id"] == node["node_id"])
        return {"nodes": nodes, "leases": leases,
                "routed_total": sum(depths.values())}
