"""Digest-prefix store sharding with read-through index replication.

A :class:`ShardedStore` presents the exact :class:`~repro.harness.cache.
ResultStore` surface over N shard directories (``<root>/shard-00`` ...),
so the queue, the scheduler, spawn workers, and the warehouse CLI all
work unchanged on a fleet store:

* **blobs stay on their shard** — ``get``/``put``/``meta`` route by the
  leading byte of the content digest (``shard = int(digest[:2], 16) %
  n``), so each node's shard holds a disjoint slice of the fleet's
  results and dedup-by-digest holds fleet-wide;
* **index rows go everywhere** — every ``put`` ingests the warehouse
  row (tiny: a few hundred bytes of columns) into *all* shard
  warehouses, so any node — the coordinator included — can answer
  ``GET /campaigns``, ``repro query``, and STP/ANTT joins from its
  local replica without touching a remote pickle;
* **reads route through** — a ``get`` for a digest another node wrote
  simply loads the blob from the owning shard directory (the fleet
  shares the store root), which is what makes a point simulated by any
  node a store hit for every other node.

The wrapper is selected by ``$REPRO_FLEET_DIR`` (see
:func:`repro.harness.cache.get_store`); shard count comes from
``$REPRO_FLEET_SHARDS`` and must be consistent fleet-wide.  Both are
deployment knobs: they never reach a digest (DIG501) and results are
bit-identical to a flat-store run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import envvars
from repro.core.stats import SimResult
from repro.harness.cache import GCResult, ResultStore, digest_config_dict


def fleet_dir() -> Optional[Path]:
    """The fleet store root from ``$REPRO_FLEET_DIR`` (None = no fleet)."""
    env = envvars.raw("REPRO_FLEET_DIR")
    if env is None or env.strip().lower() in envvars.OFF_VALUES:
        return None
    return Path(env).expanduser()


def fleet_shard_count() -> int:
    """Shard count from ``$REPRO_FLEET_SHARDS`` (default 4, floor 1)."""
    raw = (envvars.raw("REPRO_FLEET_SHARDS") or "4").strip()
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(f"bad REPRO_FLEET_SHARDS value {raw!r}") from None


def shard_index(digest: str, shards: int) -> int:
    """Owning shard of a digest: leading byte of the hex digest, modulo
    the shard count.  Deterministic across processes and nodes — the
    only property routing needs."""
    return int(digest[:2], 16) % shards


class FleetWarehouse:
    """The fleet view of the warehouse index: broadcast writes,
    primary reads.

    Because :meth:`ShardedStore.put` replicates every result row to
    every shard, each shard's warehouse converges on the full fleet
    index; reads (campaign status, queries, derived-metric joins) are
    answered by the primary replica (shard 0), and writes that do not
    ride on a ``put`` — campaign marks, gc invalidation, clears — are
    broadcast so the replicas stay in step.  Unavailable replicas are
    skipped (analytics never break a simulation); the primary must be
    open for the handle to exist at all.
    """

    def __init__(self, primary, replicas: List) -> None:
        self.primary = primary
        #: every open shard warehouse, primary included.
        self.replicas = replicas
        self.path = primary.path

    # -- broadcast writes --------------------------------------------------

    def _broadcast(self, method: str, *args, **kwargs) -> None:
        from repro.warehouse import WAREHOUSE_ERRORS
        for wh in self.replicas:
            try:
                getattr(wh, method)(*args, **kwargs)
            except WAREHOUSE_ERRORS:
                continue  # a lagging replica heals on its next rebuild

    def ingest(self, digest: str, result: SimResult,
               meta: Optional[dict] = None,
               created_at: Optional[float] = None) -> None:
        self._broadcast("ingest", digest, result, meta=meta,
                        created_at=created_at)

    def campaign_begin(self, name: str, total: Optional[int] = None) -> None:
        self._broadcast("campaign_begin", name, total=total)

    def campaign_mark(self, name: str, digest: str,
                      key: Optional[str] = None) -> None:
        self._broadcast("campaign_mark", name, digest, key=key)

    def delete(self, digests) -> int:
        digests = list(digests)
        self._broadcast("delete", digests)
        return len(digests)

    def clear(self) -> None:
        self._broadcast("clear")

    def rebuild(self, store) -> int:
        """Rebuild every replica from the union of the shards' blobs
        (*store* is the :class:`ShardedStore`, whose ``entries()`` spans
        all shards); returns the primary's row count."""
        count = 0
        from repro.warehouse import WAREHOUSE_ERRORS
        for wh in self.replicas:
            try:
                rows = wh.rebuild(store)
            except WAREHOUSE_ERRORS:
                continue
            if wh is self.primary:
                count = rows
        return count

    # -- primary reads -----------------------------------------------------

    def refresh_derived(self, reference_label: Optional[str] = None) -> int:
        return self.primary.refresh_derived(reference_label)

    def campaign_digests(self, name: str) -> List[str]:
        return self.primary.campaign_digests(name)

    def campaign_status(self, name: Optional[str] = None) -> List[dict]:
        return self.primary.campaign_status(name)

    def row_count(self) -> int:
        return self.primary.row_count()

    def size_bytes(self) -> int:
        return self.primary.size_bytes()

    def execute(self, sql: str, args=()) -> list:
        return self.primary.execute(sql, args)

    def close(self) -> None:
        for wh in self.replicas:
            wh.close()

    def __enter__(self) -> "FleetWarehouse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedStore:
    """Digest-prefix-sharded drop-in for :class:`ResultStore`.

    One :class:`ResultStore` per shard directory; routing is
    :func:`shard_index` on the content digest.  Counter attributes
    (``hits``/``misses``/...) aggregate across shards so
    ``cache_stats()`` and ``/metrics`` report fleet-wide numbers.
    """

    def __init__(self, root, shards: Optional[int] = None) -> None:
        self.root = Path(root)
        n = shards if shards is not None else fleet_shard_count()
        self.shards: List[ResultStore] = [
            ResultStore(self.root / f"shard-{i:02d}") for i in range(n)]
        #: flat-store interface: the "directory" is the fleet root.
        self.directory = self.root
        self._warehouse: Optional[FleetWarehouse] = None
        self._warehouse_resolved = False

    # -- routing -----------------------------------------------------------

    def shard_for(self, digest: str) -> ResultStore:
        return self.shards[shard_index(digest, len(self.shards))]

    def shard_of(self, digest: str) -> int:
        return shard_index(digest, len(self.shards))

    # -- blob surface ------------------------------------------------------

    def get(self, digest: str) -> Optional[SimResult]:
        return self.shard_for(digest).get(digest)

    def put(self, digest: str, result: SimResult,
            point: Optional[Tuple] = None) -> None:
        """Write the blob (and sidecar) to the owning shard, then
        replicate the warehouse index row to every *other* shard.

        The owning shard's own ingest hook fires inside
        :meth:`ResultStore.put` exactly as on a flat store; replication
        re-ingests the same row into the remaining replicas (idempotent:
        rows are keyed by digest)."""
        owner = self.shard_for(digest)
        owner.put(digest, result, point=point)
        self._replicate(owner, digest, result, point)

    def _replicate(self, owner: ResultStore, digest: str,
                   result: SimResult, point: Optional[Tuple]) -> None:
        from repro import warehouse as _warehouse
        if not _warehouse.ingest_enabled():
            return
        meta = None
        if point is not None:
            config, benchmarks, length, seed, stop = point
            meta = {"config": digest_config_dict(config),
                    "benchmarks": list(benchmarks),
                    "length": length, "seed": seed, "stop": stop}
        for shard in self.shards:
            if shard is owner:
                continue
            wh = shard.warehouse()
            if wh is None:
                continue
            try:
                wh.ingest(digest, result, meta)
            except _warehouse.WAREHOUSE_ERRORS:
                shard.index_errors += 1

    def meta(self, digest: str) -> Optional[Dict[str, object]]:
        return self.shard_for(digest).meta(digest)

    def __contains__(self, digest: str) -> bool:
        return digest in self.shard_for(digest)

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    # -- maintenance -------------------------------------------------------

    def entries(self) -> List[Tuple[Path, int, float]]:
        out: List[Tuple[Path, int, float]] = []
        for shard in self.shards:
            out.extend(shard.entries())
        out.sort(key=lambda e: str(e[0]))
        return out

    def clear(self) -> int:
        removed = sum(s.clear() for s in self.shards)
        return removed

    def gc(self, max_bytes: int) -> GCResult:
        """Evict oldest entries fleet-wide down to *max_bytes* total.

        The budget is split evenly across shards (digest routing keeps
        them balanced); evicted digests are invalidated in *every*
        warehouse replica, not just the owning shard's."""
        per_shard = max_bytes // len(self.shards)
        removed = freed = 0
        digests: List[str] = []
        for shard in self.shards:
            result = shard.gc(per_shard)
            removed += result.removed
            freed += result.freed_bytes
            digests.extend(result.digests)
        if digests:
            wh = self.warehouse()
            if wh is not None:
                wh.delete(digests)
        return GCResult(removed, freed, digests)

    def disk_stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "entries": 0, "bytes": 0,
            "index_present": False, "index_rows": 0, "index_bytes": 0,
            "shards": len(self.shards),
        }
        for shard in self.shards:
            shard_stats = shard.disk_stats()
            stats["entries"] += shard_stats["entries"]
            stats["bytes"] += shard_stats["bytes"]
        wh = self.warehouse()
        if wh is not None:
            from repro.warehouse import WAREHOUSE_ERRORS
            try:
                stats["index_rows"] = wh.row_count()
                stats["index_bytes"] = wh.size_bytes()
                stats["index_present"] = True
            except WAREHOUSE_ERRORS:
                pass
        return stats

    # -- warehouse ---------------------------------------------------------

    def warehouse(self) -> Optional[FleetWarehouse]:
        """The fleet warehouse handle: shard 0's replica for reads,
        every open replica for writes.  ``None`` when the warehouse is
        disabled or the primary cannot be opened."""
        if not self._warehouse_resolved:
            self._warehouse_resolved = True
            replicas = [s.warehouse() for s in self.shards]
            replicas = [wh for wh in replicas if wh is not None]
            primary = self.shards[0].warehouse()
            if primary is not None:
                self._warehouse = FleetWarehouse(primary, replicas)
        return self._warehouse

    def close(self) -> None:
        """Close every shard's warehouse connection (if opened)."""
        for shard in self.shards:
            wh = shard.warehouse()
            if wh is not None:
                wh.close()

    # -- aggregated counters ----------------------------------------------

    def _total(self, attr: str) -> int:
        return sum(getattr(s, attr) for s in self.shards)

    @property
    def hits(self) -> int:
        return self._total("hits")

    @property
    def misses(self) -> int:
        return self._total("misses")

    @property
    def errors(self) -> int:
        return self._total("errors")

    @property
    def evictions(self) -> int:
        return self._total("evictions")

    @property
    def index_errors(self) -> int:
        return self._total("index_errors")

    @index_errors.setter
    def index_errors(self, value: int) -> None:
        # callers (the queue's campaign-mark path) increment the counter
        # on analytics failures; attribute the delta to the primary.
        self.shards[0].index_errors += value - self.index_errors

    @property
    def stats(self) -> Dict[str, int]:
        return {"disk_hits": self.hits, "disk_misses": self.misses,
                "disk_errors": self.errors,
                "disk_evictions": self.evictions,
                "index_errors": self.index_errors}
