"""Register renaming with the paper's tag / physical-register separation.

Section III-C decouples the two roles of a physical register index (PRI):
storage destination and unique wakeup identifier.  IQ instructions allocate
a fresh PRI whose index doubles as their tag (the original tag space).
Shelf instructions *reuse* the previous PRI mapped to their destination and
allocate only a fresh tag from an *extended tag space*, managed on a
separate extension free list.  The register alias table (RAT) therefore
maps each architectural register to a ``(PRI, tag)`` pair.
"""

from repro.rename.freelist import FreeList
from repro.rename.rat import RegisterAliasTable, RenameRecord

__all__ = ["FreeList", "RegisterAliasTable", "RenameRecord"]
