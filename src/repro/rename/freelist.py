"""Free lists for physical registers and extension tags."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional


class FreeList:
    """A FIFO free list of identifiers with occupancy tracking.

    Used both for the physical free list (PRIs / original tag space) and
    the extension free list (extended tag space), per paper Figure 7.
    """

    def __init__(self, ids: Iterable[int], name: str = "freelist") -> None:
        self.name = name
        self._free: Deque[int] = deque(ids)
        self._capacity = len(self._free)
        self._in_use = set()
        self.min_free = len(self._free)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def free_count(self) -> int:
        return len(self._free)

    def can_allocate(self, n: int = 1) -> bool:
        return len(self._free) >= n

    def allocate(self) -> int:
        """Pop one free identifier; raises if empty (callers must check)."""
        if not self._free:
            raise RuntimeError(f"{self.name}: allocate on empty free list")
        ident = self._free.popleft()
        self._in_use.add(ident)
        self.min_free = min(self.min_free, len(self._free))
        return ident

    def release(self, ident: int) -> None:
        """Return *ident* to the pool.  Double-free is an invariant error."""
        if ident not in self._in_use:
            raise RuntimeError(
                f"{self.name}: double free or foreign id {ident}")
        self._in_use.remove(ident)
        self._free.append(ident)

    def retain(self, ident: int) -> None:
        """Mark *ident* as in use without allocating it from the pool.

        Used at reset for the initial architectural mappings, which occupy
        physical registers that were never popped from the list.
        """
        if ident in self._in_use:
            raise RuntimeError(f"{self.name}: {ident} already retained")
        self._in_use.add(ident)
        self._capacity += 1

    def __len__(self) -> int:
        return len(self._free)

    def __contains__(self, ident: int) -> bool:
        return ident in self._free

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FreeList({self.name}, {len(self._free)}/{self._capacity} free)"
