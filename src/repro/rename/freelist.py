"""Free lists for physical registers and extension tags."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Set


class FreeList:
    """A FIFO free list of identifiers with occupancy tracking.

    Used both for the physical free list (PRIs / original tag space) and
    the extension free list (extended tag space), per paper Figure 7.
    """

    def __init__(self, ids: Iterable[int], name: str = "freelist") -> None:
        self.name = name
        self._free: Deque[int] = deque(ids)
        self._capacity = len(self._free)
        self._in_use = set()
        self.min_free = len(self._free)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def free_count(self) -> int:
        return len(self._free)

    def can_allocate(self, n: int = 1) -> bool:
        return len(self._free) >= n

    def allocate(self) -> int:
        """Pop one free identifier; raises if empty (callers must check)."""
        if not self._free:
            raise RuntimeError(f"{self.name}: allocate on empty free list")
        ident = self._free.popleft()
        self._in_use.add(ident)
        self.min_free = min(self.min_free, len(self._free))
        return ident

    def release(self, ident: int) -> None:
        """Return *ident* to the pool.  Double-free is an invariant error."""
        if ident not in self._in_use:
            raise RuntimeError(
                f"{self.name}: double free or foreign id {ident}")
        self._in_use.remove(ident)
        self._free.append(ident)

    def retain(self, ident: int) -> None:
        """Mark *ident* as in use without allocating it from the pool.

        Used at reset for the initial architectural mappings, which occupy
        physical registers that were never popped from the list.
        """
        if ident in self._in_use:
            raise RuntimeError(f"{self.name}: {ident} already retained")
        self._in_use.add(ident)
        self._capacity += 1

    # -- sanitizer hooks ---------------------------------------------------

    @property
    def in_use_count(self) -> int:
        return len(self._in_use)

    def free_ids(self) -> Set[int]:
        """Snapshot of the free pool (sanitizer / test introspection)."""
        return set(self._free)

    def in_use_ids(self) -> Set[int]:
        """Snapshot of the allocated-or-retained ids."""
        return set(self._in_use)

    def audit(self) -> List[str]:
        """Conservation check: every id is free x-or in use, exactly once.

        Returns human-readable problem descriptions (empty = healthy);
        the sanitizer turns them into :class:`SanitizerError`\\ s.
        """
        problems: List[str] = []
        free = self.free_ids()
        if len(free) != len(self._free):
            problems.append(f"{self.name}: duplicate ids on the free list")
        both = free & self._in_use
        if both:
            problems.append(f"{self.name}: ids both free and in use: "
                            f"{sorted(both)[:8]}")
        total = len(free | self._in_use)
        if total != self._capacity:
            problems.append(
                f"{self.name}: conservation broken — {len(self._free)} free "
                f"+ {len(self._in_use)} in use covers {total} distinct ids, "
                f"capacity {self._capacity}")
        return problems

    def __len__(self) -> int:
        return len(self._free)

    def __contains__(self, ident: int) -> bool:
        return ident in self._free

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FreeList({self.name}, {len(self._free)}/{self._capacity} free)"
