"""Register alias table mapping architectural registers to (PRI, tag).

Implements the paper's extended rename stage (Figure 8): IQ instructions
draw PRIs (= tags) from the physical free list, shelf instructions reuse
the current PRI and draw a tag from the extension free list.  Every rename
produces a :class:`RenameRecord` carrying the previous mapping, which
serves three later purposes:

* IQ retire — return the previous PRI (and extension tag, if any) to the
  free lists;
* shelf retire — return the previous tag to the extension free list when
  it differs from the PRI;
* squash — walk records youngest-to-oldest, restoring mappings and
  releasing the allocated identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.instruction import NUM_ARCH_REGS
from repro.rename.freelist import FreeList


@dataclass(slots=True)
class RenameRecord:
    """Undo/retire bookkeeping for one renamed instruction.

    ``slots=True``: one record is created per dispatched instruction,
    so the per-instance dict is measurable churn on the rename path.
    """

    arch: Optional[int]       #: destination architectural register (None if no dest)
    pri: Optional[int]        #: destination PRI after rename
    tag: Optional[int]        #: destination tag after rename
    prev_pri: Optional[int]   #: PRI mapped before rename
    prev_tag: Optional[int]   #: tag mapped before rename
    to_shelf: bool            #: renamed through the shelf path?
    src_tags: Tuple[int, ...] = ()
    src_pris: Tuple[int, ...] = ()


class RegisterAliasTable:
    """Per-thread RAT over the combined (PRI, tag) mapping.

    One instance covers all SMT threads; each thread has its own
    architectural namespace (``NUM_ARCH_REGS`` entries).
    """

    def __init__(self, num_threads: int, phys_fl: FreeList,
                 ext_fl: FreeList) -> None:
        self.num_threads = num_threads
        self.phys_fl = phys_fl
        self.ext_fl = ext_fl
        # map[tid][arch] = (pri, tag)
        self._map: List[List[Tuple[int, int]]] = []
        for tid in range(num_threads):
            row = []
            for arch in range(NUM_ARCH_REGS):
                pri = tid * NUM_ARCH_REGS + arch
                phys_fl.retain(pri)
                row.append((pri, pri))
            self._map.append(row)

    # -- queries -------------------------------------------------------------

    def lookup(self, tid: int, arch: int) -> Tuple[int, int]:
        """Current ``(PRI, tag)`` for architectural register *arch*."""
        return self._map[tid][arch]

    def source_operands(self, tid: int, srcs: Tuple[int, ...]
                        ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Translate source registers; returns (pris, tags)."""
        pris = []
        tags = []
        for s in srcs:
            pri, tag = self._map[tid][s]
            pris.append(pri)
            tags.append(tag)
        return tuple(pris), tuple(tags)

    # -- rename paths ----------------------------------------------------------

    def rename_iq(self, tid: int, dest: Optional[int],
                  srcs: Tuple[int, ...]) -> RenameRecord:
        """IQ path: allocate a fresh PRI; tag = PRI (original tag space).

        Caller must first check ``phys_fl.can_allocate()``.
        """
        src_pris, src_tags = self.source_operands(tid, srcs)
        if dest is None:
            return RenameRecord(None, None, None, None, None, False,
                                src_tags, src_pris)
        prev_pri, prev_tag = self._map[tid][dest]
        pri = self.phys_fl.allocate()
        self._map[tid][dest] = (pri, pri)
        return RenameRecord(dest, pri, pri, prev_pri, prev_tag, False,
                            src_tags, src_pris)

    def rename_shelf(self, tid: int, dest: Optional[int],
                     srcs: Tuple[int, ...]) -> RenameRecord:
        """Shelf path: keep the current PRI, allocate an extension tag.

        Caller must first check ``ext_fl.can_allocate()``.
        """
        src_pris, src_tags = self.source_operands(tid, srcs)
        if dest is None:
            return RenameRecord(None, None, None, None, None, True,
                                src_tags, src_pris)
        prev_pri, prev_tag = self._map[tid][dest]
        tag = self.ext_fl.allocate()
        self._map[tid][dest] = (prev_pri, tag)
        return RenameRecord(dest, prev_pri, tag, prev_pri, prev_tag, True,
                            src_tags, src_pris)

    # -- retire / squash ----------------------------------------------------

    def retire(self, tid: int, rec: RenameRecord) -> None:
        """Release identifiers made dead by *rec*'s instruction retiring."""
        if rec.arch is None:
            return
        if rec.to_shelf:
            # Shelf instructions free only the previous extension tag; the
            # PRI remains live (still the current storage) — paper III-C.
            if rec.prev_tag != rec.prev_pri:
                self.ext_fl.release(rec.prev_tag)
        else:
            self.phys_fl.release(rec.prev_pri)
            if rec.prev_tag != rec.prev_pri:
                self.ext_fl.release(rec.prev_tag)

    def squash(self, tid: int, rec: RenameRecord) -> None:
        """Undo *rec* (called youngest-to-oldest during recovery)."""
        if rec.arch is None:
            return
        self._map[tid][rec.arch] = (rec.prev_pri, rec.prev_tag)
        if rec.to_shelf:
            self.ext_fl.release(rec.tag)
        else:
            self.phys_fl.release(rec.pri)

    # -- invariants (used by tests) ---------------------------------------------

    def live_mappings(self) -> int:
        """Number of distinct PRIs currently mapped by any thread."""
        return len({pri for row in self._map for pri, _tag in row})

    def mapped_ids(self) -> Tuple[set, set]:
        """Snapshot of ``(mapped PRIs, mapped extension tags)``."""
        pris = {pri for row in self._map for pri, _tag in row}
        tags = {tag for row in self._map for pri, tag in row if tag != pri}
        return pris, tags

    def audit(self) -> List[str]:
        """Sanitizer check: no architectural register may map to a freed
        identifier, and no extension tag may be mapped twice."""
        problems: List[str] = []
        phys_free = self.phys_fl.free_ids()
        ext_free = self.ext_fl.free_ids()
        seen_tags: dict = {}
        for tid, row in enumerate(self._map):
            for arch, (pri, tag) in enumerate(row):
                if pri in phys_free:
                    problems.append(f"t{tid} r{arch}: mapped PRI {pri} is "
                                    f"on the physical free list")
                if tag == pri:
                    continue
                if tag in ext_free:
                    problems.append(f"t{tid} r{arch}: mapped extension tag "
                                    f"{tag} is on the extension free list")
                if tag in seen_tags:
                    problems.append(
                        f"extension tag {tag} mapped twice: t{tid} r{arch} "
                        f"and {seen_tags[tag]}")
                seen_tags[tag] = f"t{tid} r{arch}"
        return problems
