"""Campaign-vs-campaign comparison over the warehouse index.

Two campaigns sweeping the same grid — before/after a steering change,
two policy variants, two simulator versions — are compared *by point
identity* (``config_label|mix|length|seed|stop``), not by digest:
digests are salted with the simulator source on purpose, and comparing
across code versions is exactly what a diff is for.

For every point present in both campaigns the per-metric relative delta
is computed; points only in one campaign are reported as added/removed.
A delta is a **regression** when it exceeds the relative tolerance *in
the bad direction* for that metric (higher cycles/EDP/ANTT are worse,
lower IPC/STP are worse); improvements beyond tolerance are reported
but never fail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.warehouse.index import Warehouse

#: direction per metric: +1 when larger values are better, -1 when
#: smaller values are better.  Anything unlisted is compared both ways
#: (any drift beyond tolerance counts as a regression).
METRIC_DIRECTION: Dict[str, int] = {
    "ipc": +1, "stp": +1, "bpred_accuracy": +1,
    "cycles": -1, "edp": -1, "antt": -1, "energy_j": -1, "time_s": -1,
}

DEFAULT_METRICS = ("cycles", "ipc", "stp", "edp")


@dataclass
class PointDelta:
    """One common point's per-metric comparison."""

    pkey: str
    deltas: Dict[str, Optional[float]]  #: metric -> relative delta (b vs a)
    regressed: List[str] = field(default_factory=list)
    improved: List[str] = field(default_factory=list)


@dataclass
class CampaignDiff:
    """The full A-vs-B comparison."""

    campaign_a: str
    campaign_b: str
    metrics: Sequence[str]
    tolerance: float
    common: List[PointDelta] = field(default_factory=list)
    added: List[str] = field(default_factory=list)    #: pkeys only in B
    removed: List[str] = field(default_factory=list)  #: pkeys only in A

    @property
    def regressions(self) -> List[PointDelta]:
        return [d for d in self.common if d.regressed]

    def summary(self) -> dict:
        return {
            "campaign_a": self.campaign_a,
            "campaign_b": self.campaign_b,
            "metrics": list(self.metrics),
            "tolerance": self.tolerance,
            "common": len(self.common),
            "added": len(self.added),
            "removed": len(self.removed),
            "regressions": len(self.regressions),
        }


def relative_delta(a: Optional[float],
                   b: Optional[float]) -> Optional[float]:
    """``(b - a) / |a|``; None when either side is missing or *a* is 0."""
    if a is None or b is None:
        return None
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        return None
    if a == 0 or not math.isfinite(a) or not math.isfinite(b):
        return None
    return (b - a) / abs(a)


def classify(metric: str, delta: Optional[float],
             tolerance: float) -> Optional[str]:
    """'regressed', 'improved', or None (within tolerance / no data)."""
    if delta is None or abs(delta) <= tolerance:
        return None
    direction = METRIC_DIRECTION.get(metric)
    if direction is None:
        return "regressed"  # unknown direction: any drift is suspect
    worse = delta < 0 if direction > 0 else delta > 0
    return "regressed" if worse else "improved"


def _campaign_rows(wh: Warehouse, campaign: str,
                   metrics: Sequence[str]) -> Dict[str, dict]:
    cols = ", ".join(f"r.{m}" for m in metrics)
    rows = wh.execute(
        f"SELECT r.pkey AS pkey, {cols} FROM results r "
        f"JOIN campaign_points cp ON cp.digest = r.digest "
        f"WHERE cp.campaign = ? ORDER BY r.pkey", (campaign,))
    return {row["pkey"]: dict(row) for row in rows}


def diff_campaigns(wh: Warehouse, campaign_a: str, campaign_b: str,
                   metrics: Sequence[str] = DEFAULT_METRICS,
                   tolerance: float = 0.01) -> CampaignDiff:
    """Compare campaign B against baseline campaign A (see module doc)."""
    from repro.warehouse.index import _RESULT_COLUMNS
    from repro.warehouse.query import QueryError, _check_column
    for m in metrics:
        _check_column(m)
        if m not in _RESULT_COLUMNS:
            raise QueryError(f"{m!r} is not a diffable result column")
    a_rows = _campaign_rows(wh, campaign_a, metrics)
    b_rows = _campaign_rows(wh, campaign_b, metrics)
    diff = CampaignDiff(campaign_a, campaign_b, metrics, tolerance)
    diff.added = sorted(set(b_rows) - set(a_rows))
    diff.removed = sorted(set(a_rows) - set(b_rows))
    for pkey in sorted(set(a_rows) & set(b_rows)):
        a, b = a_rows[pkey], b_rows[pkey]
        point = PointDelta(pkey, {})
        for metric in metrics:
            delta = relative_delta(a.get(metric), b.get(metric))
            point.deltas[metric] = delta
            verdict = classify(metric, delta, tolerance)
            if verdict == "regressed":
                point.regressed.append(metric)
            elif verdict == "improved":
                point.improved.append(metric)
        diff.common.append(point)
    return diff


def format_diff(diff: CampaignDiff, fmt: str = "text",
                all_points: bool = False) -> str:
    """Render a diff: summary plus the flagged (or all) point deltas."""
    if fmt == "json":
        import json
        doc = diff.summary()
        doc["points"] = [
            {"pkey": d.pkey, "deltas": d.deltas,
             "regressed": d.regressed, "improved": d.improved}
            for d in (diff.common if all_points else diff.regressions)]
        doc["added_points"] = diff.added
        doc["removed_points"] = diff.removed
        return json.dumps(doc, indent=2)
    from repro.harness.report import format_table
    lines = [f"diff {diff.campaign_b} vs {diff.campaign_a}: "
             f"{len(diff.common)} common, {len(diff.added)} added, "
             f"{len(diff.removed)} removed, "
             f"{len(diff.regressions)} regressed "
             f"(tolerance {diff.tolerance:.1%})"]
    shown = diff.common if all_points else diff.regressions
    if shown:
        headers = ["point"] + [f"d{m}" for m in diff.metrics] + ["flags"]
        rows = []
        for d in shown:
            cells: List[object] = [d.pkey]
            for m in diff.metrics:
                delta = d.deltas.get(m)
                cells.append("-" if delta is None else f"{delta:+.2%}")
            flags = [f"{m}!" for m in d.regressed] + \
                [f"{m}+" for m in d.improved]
            cells.append(" ".join(flags))
            rows.append(cells)
        lines.append(format_table(headers, rows))
    for label, pkeys in (("added", diff.added), ("removed", diff.removed)):
        for pkey in pkeys:
            lines.append(f"  {label}: {pkey}")
    return "\n".join(lines)
