"""Filter / project / sort / aggregate queries over the warehouse.

The query surface is deliberately column-oriented and closed: callers
name columns from :data:`QUERYABLE_COLUMNS` and comparison operators
from :data:`_OPS`; everything compiles to parameterized SQL, so no user
string ever reaches the database as code.  Aggregation (``--group-by``
+ ``--agg``) runs in Python over the filtered rows — warehouse scales
are thousands of rows, and Python keeps geomean and friends portable
across sqlite builds.
"""

from __future__ import annotations

import csv
import io
import json
import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.warehouse.index import Warehouse, _RESULT_COLUMNS

#: columns exposed to query/diff/baseline, with one-line docs.
QUERYABLE_COLUMNS: Dict[str, str] = {
    "digest": "content digest of the point (store key)",
    "pkey": "point identity: config_label|mix|length|seed|stop",
    "config_label": "configuration label (e.g. Base64+Shelf64(...))",
    "mix": "'+'-joined benchmark mix",
    "num_threads": "SMT thread count of the run",
    "length": "instructions per thread (NULL for pre-sidecar blobs)",
    "seed": "trace seed",
    "stop": "stop mode: first | all",
    "steering": "steering policy config field",
    "memory_model": "memory consistency model config field",
    "rob_entries": "ROB entries config field",
    "iq_entries": "IQ entries config field",
    "shelf_entries": "shelf entries config field",
    "cycles": "simulated cycles",
    "retired": "total retired instructions",
    "ipc": "aggregate instructions per cycle",
    "bpred_accuracy": "branch predictor accuracy",
    "stp": "system throughput vs single-thread baseline (derived)",
    "antt": "average normalized turnaround time (derived)",
    "energy_j": "modelled energy (J)",
    "time_s": "modelled runtime (s)",
    "edp": "energy-delay product (J*s)",
    "occ_rob": "average ROB occupancy",
    "occ_iq": "average IQ occupancy",
    "occ_shelf": "average shelf occupancy",
    "occ_lq": "average LQ occupancy",
    "occ_sq": "average SQ occupancy",
    "steered_shelf": "instructions steered to the shelf",
    "steered_iq": "instructions steered to the IQ",
    "shelf_fraction": "fraction of instructions steered to the shelf",
    "squashes": "pipeline squashes",
    "violations": "memory-order violations",
    "branch_mispredicts": "branch mispredicts",
    "iq_issues": "IQ issue count",
    "shelf_issues": "shelf issue count",
    "created_at": "blob write time (unix seconds)",
    "ingested_at": "index row write time (unix seconds)",
    "campaign": "campaign tag (join over campaign membership)",
}

#: default projection for `repro query` without --select.
DEFAULT_SELECT = ("config_label", "mix", "seed", "length", "cycles",
                  "ipc", "stp", "edp")

_OPS = ("<=", ">=", "!=", "<", ">", "=", "~")

#: aggregate functions for --agg FN:COL (count needs no column).
AGG_FUNCTIONS = ("count", "mean", "sum", "min", "max", "geomean")

_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?([eE][+-]?\d+)?$")


class QueryError(ValueError):
    """A malformed filter/column/aggregate (CLI exit code 2)."""


def _check_column(name: str) -> str:
    if name not in QUERYABLE_COLUMNS:
        raise QueryError(
            f"unknown column {name!r} (see `repro query --list-columns`)")
    return name


def parse_filter(text: str) -> Tuple[str, str, object]:
    """``"cycles>1000"`` -> ``("cycles", ">", 1000.0)``.

    ``~`` is substring match (SQL LIKE with wrapping wildcards); every
    other operator compares numerically when the value parses as a
    number, as text otherwise.
    """
    for op in _OPS:
        column, found, value = text.partition(op)
        if found:
            column = _check_column(column.strip())
            value = value.strip()
            if op != "~" and _NUMBER_RE.match(value):
                return column, op, float(value)
            return column, op, value
    raise QueryError(f"bad filter {text!r} (expected COLUMN OP VALUE "
                     f"with OP one of {', '.join(_OPS)})")


def _filter_sql(filters: Sequence[Tuple[str, str, object]]
                ) -> Tuple[str, List[object]]:
    clauses, args = [], []
    for column, op, value in filters:
        if op == "~":
            clauses.append(f"{column} LIKE ?")
            args.append(f"%{value}%")
        else:
            sql_op = {"=": "=", "!=": "<>"}.get(op, op)
            clauses.append(f"{column} {sql_op} ?")
            args.append(value)
    return (" AND ".join(clauses), args) if clauses else ("", [])


def select_rows(wh: Warehouse,
                where: Sequence[str] = (),
                select: Optional[Sequence[str]] = None,
                sort: Optional[str] = None,
                limit: Optional[int] = None,
                campaign: Optional[str] = None
                ) -> Tuple[List[str], List[List[object]]]:
    """Run one filter/project/sort query; returns (headers, rows)."""
    columns = [_check_column(c) for c in (select or DEFAULT_SELECT)]
    filters = [parse_filter(f) for f in where]
    # `campaign` is a virtual column backed by the membership table.
    campaign_filters = [v for c, _, v in filters if c == "campaign"]
    filters = [f for f in filters if f[0] != "campaign"]
    if campaign is not None:
        campaign_filters.append(campaign)
    base_cols = [c for c in columns if c != "campaign"]
    select_sql = ", ".join(f"r.{c}" for c in base_cols) or "r.digest"
    joins, args = "", []
    if "campaign" in columns or campaign_filters:
        joins = ("JOIN campaign_points cp ON cp.digest = r.digest")
        select_sql += ", cp.campaign AS campaign"
    where_sql, where_args = _filter_sql(filters)
    clauses = [w for w in (where_sql,) if w]
    for tag in campaign_filters:
        clauses.append("cp.campaign = ?")
        where_args.append(tag)
    sql = f"SELECT {select_sql} FROM results r {joins}"
    if clauses:
        sql += " WHERE " + " AND ".join(clauses)
    order = "r.pkey, r.digest"
    descending = False
    if sort:
        sort_col = sort
        if sort.endswith(":desc"):
            sort_col, descending = sort[:-len(":desc")], True
        elif sort.endswith(":asc"):
            sort_col = sort[:-len(":asc")]
        _check_column(sort_col)
        prefix = "cp." if sort_col == "campaign" else "r."
        order = (f"{prefix}{sort_col} {'DESC' if descending else 'ASC'}, "
                 f"r.digest")
    sql += f" ORDER BY {order}"
    if limit is not None:
        sql += " LIMIT ?"
        args.append(int(limit))
    rows = wh.execute(sql, where_args + args)
    out = [[row[c] for c in columns] for row in rows]
    return list(columns), out


def parse_agg(text: str) -> Tuple[str, Optional[str]]:
    """``"mean:stp"`` -> ``("mean", "stp")``; bare ``"count"`` allowed."""
    fn, _, column = text.partition(":")
    if fn not in AGG_FUNCTIONS:
        raise QueryError(f"unknown aggregate {fn!r} "
                         f"(choose from {', '.join(AGG_FUNCTIONS)})")
    if fn == "count":
        return fn, None
    if not column:
        raise QueryError(f"aggregate {fn!r} needs a column (e.g. "
                         f"{fn}:stp)")
    return fn, _check_column(column)


def _aggregate(fn: str, values: List[object]) -> Optional[float]:
    nums = [v for v in values if isinstance(v, (int, float))]
    if fn == "count":
        return len(values)
    if not nums:
        return None
    if fn == "mean":
        return sum(nums) / len(nums)
    if fn == "sum":
        return sum(nums)
    if fn == "min":
        return min(nums)
    if fn == "max":
        return max(nums)
    if fn == "geomean":
        positive = [v for v in nums if v > 0]
        if not positive:
            return None
        return math.exp(sum(math.log(v) for v in positive)
                        / len(positive))
    raise QueryError(f"unknown aggregate {fn!r}")


def aggregate_rows(wh: Warehouse,
                   group_by: Sequence[str],
                   aggs: Sequence[str],
                   where: Sequence[str] = (),
                   sort: Optional[str] = None,
                   limit: Optional[int] = None,
                   campaign: Optional[str] = None
                   ) -> Tuple[List[str], List[List[object]]]:
    """Group the filtered rows and fold each group through *aggs*."""
    group_by = [_check_column(c) for c in group_by]
    parsed = [parse_agg(a) for a in aggs] or [("count", None)]
    needed = list(dict.fromkeys(
        group_by + [c for _, c in parsed if c is not None]))
    headers, rows = select_rows(wh, where=where, select=needed,
                                campaign=campaign)
    index = {h: i for i, h in enumerate(headers)}
    groups: Dict[Tuple, List[List[object]]] = {}
    for row in rows:
        key = tuple(row[index[c]] for c in group_by)
        groups.setdefault(key, []).append(row)
    out_headers = group_by + [f"{fn}:{c}" if c else fn
                              for fn, c in parsed]
    out_rows = []
    for key in sorted(groups, key=lambda k: tuple(str(v) for v in k)):
        members = groups[key]
        row: List[object] = list(key)
        for fn, column in parsed:
            values = [m[index[column]] for m in members] \
                if column is not None else members
            row.append(_aggregate(fn, values))
        out_rows.append(row)
    # sort/limit over aggregate output happens here, not in SQL.
    if sort:
        descending = sort.endswith(":desc")
        sort_col = sort[:-5] if descending else \
            (sort[:-4] if sort.endswith(":asc") else sort)
        if sort_col not in out_headers:
            raise QueryError(f"sort column {sort_col!r} is not in the "
                             f"aggregate output ({', '.join(out_headers)})")
        pos = out_headers.index(sort_col)
        out_rows.sort(key=lambda r: (r[pos] is None, r[pos]),
                      reverse=descending)
    if limit is not None:
        out_rows = out_rows[:int(limit)]
    return out_headers, out_rows


# -- output formatting -------------------------------------------------------

def format_rows(headers: Sequence[str], rows: Sequence[Sequence[object]],
                fmt: str = "text") -> str:
    """Render query output as aligned text, JSON lines, or CSV."""
    if fmt == "json":
        docs = [dict(zip(headers, row)) for row in rows]
        return json.dumps(docs, indent=2, sort_keys=False)
    if fmt == "csv":
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(headers)
        for row in rows:
            writer.writerow(["" if v is None else v for v in row])
        return buf.getvalue().rstrip("\n")
    if fmt == "text":
        from repro.harness.report import format_table
        # pre-format floats at 5 significant digits: warehouse metrics
        # span many decades (EDP is ~1e-7 J*s at simulated lengths) and
        # fixed-point rendering would collapse the small ones to 0.000.
        shown = [["-" if v is None else
                  (f"{v:.5g}" if isinstance(v, float) else v)
                  for v in row] for row in rows]
        table = format_table(list(headers), shown)
        return f"{table}\n({len(rows)} row{'s' if len(rows) != 1 else ''})"
    raise QueryError(f"unknown output format {fmt!r}")
