"""The warehouse index: a compact sqlite view of every stored result.

The content-addressed blob store (:mod:`repro.harness.cache`) answers
exactly one question — "has this point been simulated?" — by digest.
The :class:`Warehouse` answers every other question: it maintains a
columnar sqlite index over all stored records (config fields from
:func:`~repro.harness.cache.digest_config_dict`, workload mix, seed,
cycles, STP/ANTT, EDP, occupancy and steering counters, timestamps) plus
campaign membership tables, so sweeps can be queried, diffed, and
regression-checked without touching a single pickle.

The index is *derived state*: record blobs and their digests are the
source of truth and are never modified.  It is kept in sync three ways:

* **live ingest** — :meth:`~repro.harness.cache.ResultStore.put` calls
  :meth:`Warehouse.ingest` for every result it writes (unless
  ``REPRO_WAREHOUSE_INGEST`` is off);
* **rebuild** — :meth:`Warehouse.rebuild` rescans the blobs (and their
  ``.meta.json`` point sidecars) from scratch, for stores that predate
  the warehouse or whose index was lost;
* **invalidation** — :meth:`~repro.harness.cache.ResultStore.gc`
  reports the exact digests it evicted and the warehouse deletes
  exactly those rows.

Concurrency: the index runs in WAL mode with a generous busy timeout,
so the process-pool fan-out (many spawn workers writing one row each)
and the service's scheduler/HTTP threads can all write safely.  Every
write is wrapped in a transaction and is idempotent (``INSERT OR
REPLACE`` keyed by digest), so replays and races converge on the same
rows.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import envvars
from repro.core.stats import SimResult

#: bump when the index schema changes; a mismatched index is rebuilt
#: from the blobs (the index is derived state, never a source of truth).
INDEX_SCHEMA = 1

#: everything a warehouse write/read can legitimately raise when the
#: database is locked, corrupt, or unwritable.  Ingest-hook callers
#: catch this tuple so analytics can never break a simulation.
WAREHOUSE_ERRORS = (sqlite3.Error, OSError, ValueError, TypeError, KeyError)

_RESULT_COLUMNS = (
    "digest", "pkey", "config_label", "mix", "num_threads",
    "length", "seed", "stop", "config_json",
    "steering", "memory_model", "rob_entries", "iq_entries",
    "shelf_entries",
    "cycles", "retired", "ipc", "bpred_accuracy",
    "stp", "antt", "energy_j", "time_s", "edp",
    "occ_rob", "occ_iq", "occ_shelf", "occ_lq", "occ_sq",
    "steered_shelf", "steered_iq", "shelf_fraction",
    "squashes", "violations", "branch_mispredicts",
    "iq_issues", "shelf_issues", "events_json",
    "created_at", "ingested_at",
)

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS results (
    digest TEXT PRIMARY KEY,
    pkey TEXT,
    config_label TEXT,
    mix TEXT,
    num_threads INTEGER,
    length INTEGER,
    seed INTEGER,
    stop TEXT,
    config_json TEXT,
    steering TEXT,
    memory_model TEXT,
    rob_entries INTEGER,
    iq_entries INTEGER,
    shelf_entries INTEGER,
    cycles INTEGER,
    retired INTEGER,
    ipc REAL,
    bpred_accuracy REAL,
    stp REAL,
    antt REAL,
    energy_j REAL,
    time_s REAL,
    edp REAL,
    occ_rob REAL,
    occ_iq REAL,
    occ_shelf REAL,
    occ_lq REAL,
    occ_sq REAL,
    steered_shelf INTEGER,
    steered_iq INTEGER,
    shelf_fraction REAL,
    squashes INTEGER,
    violations INTEGER,
    branch_mispredicts INTEGER,
    iq_issues INTEGER,
    shelf_issues INTEGER,
    events_json TEXT,
    created_at REAL,
    ingested_at REAL
);
CREATE INDEX IF NOT EXISTS idx_results_pkey ON results (pkey);
CREATE INDEX IF NOT EXISTS idx_results_label ON results (config_label);
CREATE TABLE IF NOT EXISTS threads (
    digest TEXT,
    tid INTEGER,
    benchmark TEXT,
    retired INTEGER,
    cpi REAL,
    PRIMARY KEY (digest, tid)
);
CREATE TABLE IF NOT EXISTS campaigns (
    name TEXT PRIMARY KEY,
    total INTEGER,
    created_at REAL,
    updated_at REAL
);
CREATE TABLE IF NOT EXISTS campaign_points (
    campaign TEXT,
    digest TEXT,
    point_key TEXT,
    completed_at REAL,
    PRIMARY KEY (campaign, digest)
);
PRAGMA user_version = {INDEX_SCHEMA};
"""


def point_key(config_label: str, mix: str, length: Optional[int],
              seed: Optional[int], stop: Optional[str]) -> str:
    """Stable point identity across simulator versions.

    Digests include the simulator source salt, so they change whenever
    timing code is edited — by design.  Diffing and baselining need an
    identity that *survives* a re-simulation of the same point, which is
    exactly this tuple.
    """
    return f"{config_label}|{mix}|{length}|{seed}|{stop}"


def config_from_digest_dict(values: Dict[str, object]):
    """Rebuild a :class:`~repro.core.config.CoreConfig` from its
    :func:`~repro.harness.cache.digest_config_dict` view (the stripped
    mode flags take their defaults — they never change results)."""
    from repro.core.config import CoreConfig
    from repro.memory.hierarchy import HierarchyConfig
    fields = dict(values)
    hier = fields.pop("hierarchy", None)
    hierarchy = HierarchyConfig(**hier) if hier is not None \
        else HierarchyConfig()
    return CoreConfig(**fields, hierarchy=hierarchy)


def db_path_for(store_directory) -> Optional[Path]:
    """Resolve the index location for a store directory.

    ``$REPRO_WAREHOUSE_DB`` overrides; an off-value disables the
    warehouse entirely (returns ``None``); the default is
    ``warehouse.sqlite3`` inside the store directory.
    """
    env = envvars.raw("REPRO_WAREHOUSE_DB")
    if env is not None:
        if env.strip().lower() in envvars.OFF_VALUES:
            return None
        return Path(env).expanduser()
    if store_directory is None:
        return None
    return Path(store_directory) / "warehouse.sqlite3"


def ingest_enabled() -> bool:
    """Whether the live ingest hook on ``ResultStore.put`` is active."""
    return envvars.enabled("REPRO_WAREHOUSE_INGEST")


class Warehouse:
    """One sqlite warehouse index (see the module docstring).

    Thread-safe: a single connection guarded by an RLock; every method
    is one transaction.  Cross-process safety comes from WAL mode plus
    the busy timeout — each process opens its own :class:`Warehouse`.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path), timeout=30.0,
                                     check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA busy_timeout = 10000")
        # WAL lets concurrent spawn workers append rows while readers
        # query; on filesystems that refuse WAL, sqlite reports the mode
        # it fell back to and everything still works (just serialized).
        self._conn.execute("PRAGMA journal_mode = WAL")
        self._conn.execute("PRAGMA synchronous = NORMAL")
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingest ------------------------------------------------------------

    def ingest(self, digest: str, result: SimResult,
               meta: Optional[dict] = None,
               created_at: Optional[float] = None) -> None:
        """Index one stored result.

        *meta* is the point sidecar (``config``/``benchmarks``/
        ``length``/``seed``/``stop``); without it — a blob written
        before sidecars existed — only blob-derivable columns are
        filled and the derived metrics stay NULL.
        """
        row = self._row_for(digest, result, meta, created_at)
        thread_rows = [(digest, t.tid, t.benchmark, t.retired, t.cpi)
                       for t in result.threads]
        placeholders = ", ".join("?" for _ in _RESULT_COLUMNS)
        with self._lock, self._conn:
            self._conn.execute(
                f"INSERT OR REPLACE INTO results "
                f"({', '.join(_RESULT_COLUMNS)}) VALUES ({placeholders})",
                [row[c] for c in _RESULT_COLUMNS])
            self._conn.execute("DELETE FROM threads WHERE digest = ?",
                               (digest,))
            self._conn.executemany(
                "INSERT OR REPLACE INTO threads "
                "(digest, tid, benchmark, retired, cpi) "
                "VALUES (?, ?, ?, ?, ?)", thread_rows)

    @staticmethod
    def _row_for(digest: str, result: SimResult, meta: Optional[dict],
                 created_at: Optional[float]) -> Dict[str, object]:
        record = result.as_record()
        events = record["events"]
        occupancy = record["occupancy"]
        steering = record["steering"]
        mix = "+".join(t.benchmark for t in result.threads)
        row: Dict[str, object] = dict.fromkeys(_RESULT_COLUMNS)
        row.update({
            "digest": digest,
            "config_label": result.config_label,
            "mix": mix,
            "num_threads": len(result.threads),
            "cycles": record["cycles"],
            "retired": result.total_retired,
            "ipc": record["ipc"],
            "bpred_accuracy": record["bpred_accuracy"],
            "occ_rob": occupancy.get("rob"),
            "occ_iq": occupancy.get("iq"),
            "occ_shelf": occupancy.get("shelf"),
            "occ_lq": occupancy.get("lq"),
            "occ_sq": occupancy.get("sq"),
            "steered_shelf": steering.get("steered_shelf"),
            "steered_iq": steering.get("steered_iq"),
            "shelf_fraction": steering.get("shelf_fraction"),
            "squashes": events["squashes"],
            "violations": events["violations"],
            "branch_mispredicts": events["branch_mispredicts"],
            "iq_issues": events["iq_issues"],
            "shelf_issues": events["shelf_issues"],
            "events_json": json.dumps(events, sort_keys=True),
            "created_at": created_at if created_at is not None
            else time.time(),
            "ingested_at": time.time(),
        })
        if meta is not None:
            config_values = meta["config"]
            row.update({
                "length": meta["length"],
                "seed": meta["seed"],
                "stop": meta["stop"],
                "config_json": json.dumps(config_values, sort_keys=True,
                                          default=str),
                "steering": config_values.get("steering"),
                "memory_model": config_values.get("memory_model"),
                "rob_entries": config_values.get("rob_entries"),
                "iq_entries": config_values.get("iq_entries"),
                "shelf_entries": config_values.get("shelf_entries"),
            })
            try:
                config = config_from_digest_dict(config_values)
            except (TypeError, ValueError):
                config = None  # sidecar from a different config schema
            if config is not None:
                from repro.energy import edp as _edp
                from repro.energy import energy_report
                report = energy_report(config, result)
                row["energy_j"] = report.energy_j
                row["time_s"] = report.time_s
                row["edp"] = _edp(report)
        row["pkey"] = point_key(result.config_label, mix, row["length"],
                                row["seed"], row["stop"])
        return row

    # -- bulk maintenance --------------------------------------------------

    def rebuild(self, store) -> int:
        """Rescan *store* from scratch; returns how many rows were
        indexed.  Campaign membership tables are preserved (they refer
        to digests, which do not change), stale membership rows for
        evicted blobs are dropped."""
        from repro.harness.cache import CORRUPTION_ERRORS
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM results")
            self._conn.execute("DELETE FROM threads")
        count = 0
        for path, _, mtime in store.entries():
            digest = path.stem
            try:
                with path.open("rb") as fh:
                    result = pickle.load(fh)
            except CORRUPTION_ERRORS:
                continue
            if not isinstance(result, SimResult):
                continue
            self.ingest(digest, result, meta=store.meta(digest),
                        created_at=mtime)
            count += 1
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM campaign_points WHERE digest NOT IN "
                "(SELECT digest FROM results)")
        self.refresh_derived()
        return count

    def delete(self, digests: Iterable[str]) -> int:
        """Drop the rows for exactly these digests (gc invalidation)."""
        digests = list(digests)
        if not digests:
            return 0
        removed = 0
        with self._lock, self._conn:
            for d in digests:
                cur = self._conn.execute(
                    "DELETE FROM results WHERE digest = ?", (d,))
                removed += cur.rowcount
                self._conn.execute(
                    "DELETE FROM threads WHERE digest = ?", (d,))
                self._conn.execute(
                    "DELETE FROM campaign_points WHERE digest = ?", (d,))
        return removed

    def clear(self) -> None:
        """Drop every indexed row (store ``clear`` invalidation)."""
        with self._lock, self._conn:
            for table in ("results", "threads", "campaigns",
                          "campaign_points"):
                self._conn.execute(f"DELETE FROM {table}")

    # -- derived metrics ---------------------------------------------------

    def refresh_derived(self,
                        reference_label: Optional[str] = None) -> int:
        """Fill STP/ANTT for rows where the single-thread reference runs
        are present in the index.

        STP and ANTT compare each SMT thread's CPI against the same
        benchmark running *alone* on the baseline reference
        configuration (the exact discipline of
        :func:`repro.harness.runner.mix_stp`: reference seed is
        ``seed + thread_slot``, stop mode ``all``).  Rows whose
        references are missing keep NULL and are filled by a later
        refresh once the references are simulated.  Returns how many
        rows were updated.
        """
        if reference_label is None:
            from repro.harness.configs import base64_config
            reference_label = base64_config(1).label()
        with self._lock:
            rows = self._conn.execute(
                "SELECT digest, seed, length, stop FROM results "
                "WHERE stp IS NULL AND seed IS NOT NULL "
                "AND num_threads >= 1 ORDER BY digest").fetchall()
            updated = 0
            for row in rows:
                threads = self._conn.execute(
                    "SELECT tid, benchmark, cpi FROM threads "
                    "WHERE digest = ? ORDER BY tid",
                    (row["digest"],)).fetchall()
                refs = []
                for t in threads:
                    ref = self._conn.execute(
                        "SELECT t.cpi AS cpi FROM results r "
                        "JOIN threads t ON t.digest = r.digest "
                        "WHERE r.config_label = ? AND r.num_threads = 1 "
                        "AND r.stop = 'all' AND t.benchmark = ? "
                        "AND r.seed = ? AND r.length = ? "
                        "ORDER BY r.digest LIMIT 1",
                        (reference_label, t["benchmark"],
                         row["seed"] + t["tid"], row["length"])).fetchone()
                    if ref is None:
                        break
                    refs.append(ref["cpi"])
                if len(refs) != len(threads) or not threads:
                    continue
                stp = sum(ref / t["cpi"] for t, ref in zip(threads, refs)
                          if t["cpi"] > 0)
                slowdowns = [t["cpi"] / ref
                             for t, ref in zip(threads, refs) if ref > 0]
                antt = sum(slowdowns) / len(slowdowns) if slowdowns \
                    else None
                with self._conn:
                    self._conn.execute(
                        "UPDATE results SET stp = ?, antt = ? "
                        "WHERE digest = ?", (stp, antt, row["digest"]))
                updated += 1
        return updated

    # -- campaigns ---------------------------------------------------------

    def campaign_begin(self, name: str,
                       total: Optional[int] = None) -> None:
        """Declare (or refresh) a campaign; *total* is the full grid
        size when the submitter knows it (the service often does not)."""
        now = time.time()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO campaigns (name, total, created_at, "
                "updated_at) VALUES (?, ?, ?, ?) "
                "ON CONFLICT(name) DO UPDATE SET "
                "total = COALESCE(excluded.total, campaigns.total), "
                "updated_at = excluded.updated_at",
                (name, total, now, now))

    def campaign_mark(self, name: str, digest: str,
                      key: Optional[str] = None) -> None:
        """Record one completed point of a campaign (idempotent)."""
        now = time.time()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO campaigns "
                "(name, total, created_at, updated_at) "
                "VALUES (?, NULL, ?, ?)", (name, now, now))
            self._conn.execute(
                "INSERT OR REPLACE INTO campaign_points "
                "(campaign, digest, point_key, completed_at) "
                "VALUES (?, ?, ?, ?)", (name, digest, key, now))
            self._conn.execute(
                "UPDATE campaigns SET updated_at = ? WHERE name = ?",
                (now, name))

    def campaign_digests(self, name: str) -> List[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT digest FROM campaign_points WHERE campaign = ? "
                "ORDER BY digest", (name,)).fetchall()
        return [r["digest"] for r in rows]

    def campaign_status(self, name: Optional[str] = None) -> List[dict]:
        """Live per-campaign analytics: completion counts plus rolling
        metric summaries over the points indexed so far."""
        where = "WHERE c.name = ?" if name is not None else ""
        args: Tuple = (name,) if name is not None else ()
        with self._lock:
            rows = self._conn.execute(
                f"SELECT c.name AS name, c.total AS total, "
                f"c.created_at AS created_at, c.updated_at AS updated_at, "
                f"COUNT(p.digest) AS marked, "
                f"COUNT(r.digest) AS indexed, "
                f"AVG(r.ipc) AS mean_ipc, AVG(r.cycles) AS mean_cycles, "
                f"AVG(r.stp) AS mean_stp, AVG(r.edp) AS mean_edp "
                f"FROM campaigns c "
                f"LEFT JOIN campaign_points p ON p.campaign = c.name "
                f"LEFT JOIN results r ON r.digest = p.digest "
                f"{where} GROUP BY c.name ORDER BY c.name",
                args).fetchall()
        out = []
        for r in rows:
            doc = dict(r)
            total = doc.get("total")
            doc["progress"] = (doc["marked"] / total) if total else None
            out.append(doc)
        return out

    # -- introspection -----------------------------------------------------

    def row_count(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]

    def size_bytes(self) -> int:
        """On-disk footprint of the index (main db + WAL)."""
        total = 0
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(str(self.path) + suffix)
            try:
                total += candidate.stat().st_size
            except OSError:
                continue
        return total

    def execute(self, sql: str, args: Sequence = ()) -> List[sqlite3.Row]:
        """Run one read-only query (the query layer's escape hatch)."""
        with self._lock:
            return self._conn.execute(sql, tuple(args)).fetchall()


def open_warehouse(store=None) -> Optional[Warehouse]:
    """The warehouse for *store* (default: the process-wide store), or
    ``None`` when the store or the warehouse is disabled."""
    if store is None:
        from repro.harness.cache import get_store
        store = get_store()
    if store is None:
        return None
    path = db_path_for(store.directory)
    return Warehouse(path) if path is not None else None
