"""Result warehouse: queryable campaign analytics over the store.

The subsystem has four layers:

* :mod:`repro.warehouse.index` — the sqlite columnar index itself
  (:class:`Warehouse`): live ingest, full rebuild, gc invalidation,
  derived STP/ANTT/EDP, campaign membership;
* :mod:`repro.warehouse.query` — filter/project/sort/aggregate queries
  with text/JSON/CSV output (``repro query``);
* :mod:`repro.warehouse.diff` — campaign-vs-campaign comparison keyed
  by point identity (``repro diff``);
* :mod:`repro.warehouse.baseline` — committed-baseline regression
  detection (``repro baseline record`` / ``check``).

The warehouse is derived state over the content-addressed blobs: record
pickles and their digests are never modified, and every view here can
be reconstructed with ``repro warehouse rebuild``.
"""

from repro.warehouse.index import (
    INDEX_SCHEMA,
    WAREHOUSE_ERRORS,
    Warehouse,
    db_path_for,
    ingest_enabled,
    open_warehouse,
    point_key,
)
from repro.warehouse.query import (
    QUERYABLE_COLUMNS,
    QueryError,
    aggregate_rows,
    format_rows,
    select_rows,
)
from repro.warehouse.diff import CampaignDiff, diff_campaigns, format_diff
from repro.warehouse.baseline import (
    BaselineError,
    CheckReport,
    check,
    format_report,
    record,
)

__all__ = [
    "INDEX_SCHEMA",
    "WAREHOUSE_ERRORS",
    "Warehouse",
    "db_path_for",
    "ingest_enabled",
    "open_warehouse",
    "point_key",
    "QUERYABLE_COLUMNS",
    "QueryError",
    "aggregate_rows",
    "format_rows",
    "select_rows",
    "CampaignDiff",
    "diff_campaigns",
    "format_diff",
    "BaselineError",
    "CheckReport",
    "check",
    "format_report",
    "record",
]
