"""Committed-baseline regression detection over the warehouse.

``repro baseline record`` snapshots the current warehouse metrics for a
set of points into a small JSON file meant to be committed next to the
code (the same workflow as ``.repro-check-baseline.json``); ``repro
baseline check`` re-reads the warehouse and fails — exit code 1, the
:mod:`repro.lint` convention — when any point's metric moved beyond the
relative tolerance in the bad direction, or when a baselined point has
vanished from the index.

Points are keyed by identity (``config_label|mix|length|seed|stop``),
so a baseline survives simulator-source changes: after an edit, the
store re-simulates under new digests, the warehouse re-indexes, and the
check compares the *numbers* — which is the point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.warehouse.diff import (DEFAULT_METRICS, classify,
                                  relative_delta)
from repro.warehouse.index import Warehouse
from repro.warehouse.query import QueryError, select_rows

#: on-disk baseline format version.
BASELINE_SCHEMA = 1

DEFAULT_BASELINE_FILE = ".repro-warehouse-baseline.json"
DEFAULT_TOLERANCE = 0.02


class BaselineError(ValueError):
    """Unreadable/invalid baseline file (CLI exit code 2)."""


@dataclass
class Finding:
    """One baseline violation."""

    pkey: str
    kind: str          #: 'regression' | 'missing'
    metric: Optional[str] = None
    baseline: Optional[float] = None
    current: Optional[float] = None
    delta: Optional[float] = None

    def format(self) -> str:
        if self.kind == "missing":
            return f"{self.pkey}: baselined point missing from the index"
        return (f"{self.pkey}: {self.metric} {self.baseline:.6g} -> "
                f"{self.current:.6g} ({self.delta:+.2%})")


@dataclass
class CheckReport:
    """Outcome of one ``baseline check``."""

    checked: int
    tolerance: float
    metrics: Sequence[str]
    findings: List[Finding] = field(default_factory=list)
    improvements: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def _collect(wh: Warehouse, metrics: Sequence[str],
             where: Sequence[str] = (),
             campaign: Optional[str] = None) -> Dict[str, Dict[str, object]]:
    """Current warehouse metrics keyed by point identity."""
    select = ["pkey"] + list(metrics)
    headers, rows = select_rows(wh, where=where, select=select,
                                campaign=campaign)
    index = {h: i for i, h in enumerate(headers)}
    out: Dict[str, Dict[str, object]] = {}
    for row in rows:
        pkey = row[index["pkey"]]
        # identical pkeys (the same point indexed under two digests after
        # a salt change mid-store) collapse deterministically: rows
        # arrive pkey-then-digest sorted, the first wins.
        out.setdefault(pkey,
                       {m: row[index[m]] for m in metrics})
    return out


def record(wh: Warehouse, path, metrics: Sequence[str] = DEFAULT_METRICS,
           where: Sequence[str] = (), campaign: Optional[str] = None,
           tolerance: float = DEFAULT_TOLERANCE) -> int:
    """Write the baseline snapshot; returns how many points it holds."""
    for metric in metrics:
        if metric == "pkey":
            raise QueryError("pkey is the baseline key, not a metric")
    points = _collect(wh, metrics, where=where, campaign=campaign)
    doc = {
        "schema": BASELINE_SCHEMA,
        "metrics": list(metrics),
        "tolerance": tolerance,
        "campaign": campaign,
        "points": {k: points[k] for k in sorted(points)},
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True)
                          + "\n")
    return len(points)


def load(path) -> dict:
    """Read and validate a baseline file."""
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: "
                            f"{exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} has unsupported schema "
            f"{doc.get('schema') if isinstance(doc, dict) else doc!r} "
            f"(expected {BASELINE_SCHEMA})")
    if not isinstance(doc.get("points"), dict) or \
            not isinstance(doc.get("metrics"), list):
        raise BaselineError(f"baseline {path} is missing points/metrics")
    return doc


def check(wh: Warehouse, path,
          tolerance: Optional[float] = None,
          where: Sequence[str] = (),
          campaign: Optional[str] = None) -> CheckReport:
    """Compare the warehouse against a recorded baseline.

    *tolerance* defaults to the value stored in the file.  Baselined
    points missing from the index are findings (the sweep shrank or the
    store was gc'd past its baseline); new points are ignored — record
    a fresh baseline to adopt them.
    """
    doc = load(path)
    metrics = [str(m) for m in doc["metrics"]]
    if tolerance is None:
        tolerance = float(doc.get("tolerance", DEFAULT_TOLERANCE))
    current = _collect(wh, metrics, where=where,
                       campaign=campaign if campaign is not None
                       else doc.get("campaign"))
    report = CheckReport(checked=len(doc["points"]), tolerance=tolerance,
                         metrics=metrics)
    for pkey in sorted(doc["points"]):
        recorded = doc["points"][pkey]
        row = current.get(pkey)
        if row is None:
            report.findings.append(Finding(pkey, "missing"))
            continue
        for metric in metrics:
            base = recorded.get(metric)
            now = row.get(metric)
            if base is None and now is None:
                continue
            delta = relative_delta(base, now)
            if delta is None and base != now:
                # one side lost the metric entirely (e.g. derived STP
                # no longer computable): treat as a regression.
                report.findings.append(
                    Finding(pkey, "regression", metric, base, now, None))
                continue
            verdict = classify(metric, delta, tolerance)
            finding = Finding(pkey, "regression", metric, base, now,
                              delta)
            if verdict == "regressed":
                report.findings.append(finding)
            elif verdict == "improved":
                report.improvements.append(finding)
    return report


def format_report(report: CheckReport, fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps({
            "checked": report.checked,
            "tolerance": report.tolerance,
            "metrics": list(report.metrics),
            "ok": report.ok,
            "findings": [f.__dict__ for f in report.findings],
            "improvements": [f.__dict__ for f in report.improvements],
        }, indent=2)
    lines = [f"baseline check: {report.checked} point(s), "
             f"tolerance {report.tolerance:.1%} -> "
             f"{'OK' if report.ok else f'{len(report.findings)} finding(s)'}"]
    for f in report.findings:
        lines.append(f"  REGRESSION {f.format()}")
    for f in report.improvements:
        lines.append(f"  improved   {f.format()}")
    return "\n".join(lines)
