"""Compare a fresh BENCH_simspeed.json against the committed baseline.

The committed JSON documents the speedups the fast loops are expected
to deliver; this script fails CI when a fresh measurement regresses
them by more than the per-workload tolerance.  It compares *speedup
ratios*, not absolute times — ratios are the quantity that transfers
across machines.  All four workloads hard-gate on their lane ratio
(the lane engine is the loop campaigns actually run), `pchase.mem`
additionally on its object ratio (the fast-forward win), each with its
own threshold in :data:`HARD_GATES` — the compute-bound `ilp.int8`
case is tightest, the SMT cases looser because squash/steering timing
is noisier on shared hosts.  Every ungated (workload, mode) pair that
drifts below the default tolerance is reported as a warning so noisy
CI hosts don't flap the build.

Usage:
    python scripts/check_simspeed_regression.py \
        --baseline /tmp/baseline.json [--fresh BENCH_simspeed.json] \
        [--tolerance 0.10]

Exit status: 0 clean, 1 on a hard regression, 2 on usage/schema errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: (workload, ratio key) -> allowed fractional ratio drop before the
#: build hard-fails.  Pairs not listed here fall back to --tolerance
#: and only warn.
HARD_GATES = {
    ("ilp.int8", "speedup_lanes"): 0.10,
    ("pchase.mem", "speedup_lanes"): 0.15,
    ("pchase.mem", "speedup_object"): 0.15,
    ("branchy.mix", "speedup_lanes"): 0.15,
    ("smt4.dense", "speedup_lanes"): 0.15,
}


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed BENCH_simspeed.json to compare "
                             "against (e.g. a git-show copy)")
    parser.add_argument("--fresh", type=Path,
                        default=REPO_ROOT / "BENCH_simspeed.json",
                        help="freshly generated JSON (default: repo root)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional ratio drop (default 0.10)")
    args = parser.parse_args(argv)

    base = load(args.baseline)
    fresh = load(args.fresh)

    if base.get("scale") != fresh.get("scale"):
        print(f"error: scale mismatch — baseline ran at "
              f"{base.get('scale')!r}, fresh at {fresh.get('scale')!r}; "
              f"ratios are only comparable at the same scale",
              file=sys.stderr)
        return 2

    failures = []
    warnings = []
    for workload, entry in sorted(base.get("workloads", {}).items()):
        fresh_entry = fresh.get("workloads", {}).get(workload)
        if fresh_entry is None:
            failures.append(f"{workload}: missing from fresh run")
            continue
        for key in ("speedup_lanes", "speedup_object"):
            want = entry.get(key)
            got = fresh_entry.get(key)
            if want is None or got is None:
                continue
            gated = (workload, key) in HARD_GATES
            tolerance = HARD_GATES.get((workload, key), args.tolerance)
            floor = want * (1.0 - tolerance)
            line = (f"{workload} {key}: baseline {want:.2f}x, "
                    f"fresh {got:.2f}x (floor {floor:.2f}x)")
            if got < floor:
                if gated:
                    failures.append("REGRESSION " + line)
                else:
                    warnings.append("drift " + line)
            else:
                print("ok " + line)

    for w in warnings:
        print("warning: " + w)
    for f in failures:
        print("error: " + f, file=sys.stderr)
    if failures:
        return 1
    print(f"simspeed ratios within tolerance of baseline "
          f"({len(HARD_GATES)} hard gate(s), {len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
