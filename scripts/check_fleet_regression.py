"""Compare a fresh BENCH_fleet.json against the committed baseline.

Correctness gates are unconditional: every fleet round must be
bit-identical to the local reference (``bit_identical``), the
worker-kill round must lose zero jobs (``kill_jobs_lost``), and the
killed worker's lease must have been re-queued (``kill_requeued``).

The throughput gate is CPU-aware.  Worker nodes are separate
processes, so on a single-core runner three workers time-slice one
CPU and the honest ``speedup_3v1`` sits at or below 1x — comparing
that ratio against a multi-core baseline (or vice versa) would gate
on the runner's shape, not the code.  The ratio check therefore only
runs when *both* the baseline and the fresh report were measured with
``--min-cpus`` or more CPUs; otherwise it reports the numbers and
skips.

Usage:
    python scripts/check_fleet_regression.py \
        --baseline /tmp/fleet-baseline.json [--fresh BENCH_fleet.json] \
        [--tolerance 0.25] [--min-cpus 3]

Exit status: 0 clean, 1 on a hard regression, 2 on usage/schema errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed BENCH_fleet.json to compare "
                             "against (e.g. a git-show copy)")
    parser.add_argument("--fresh", type=Path,
                        default=REPO_ROOT / "BENCH_fleet.json",
                        help="freshly generated JSON (default: repo root)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup_3v1 drop "
                             "(default 0.25)")
    parser.add_argument("--min-cpus", type=int, default=3,
                        help="CPUs required on both machines before "
                             "the speedup ratio is gated (default 3)")
    args = parser.parse_args(argv)

    base = load(args.baseline)
    fresh = load(args.fresh)

    failures = []

    # --- unconditional correctness gates -----------------------------
    if fresh.get("bit_identical") is not True:
        failures.append("REGRESSION bit_identical: fleet records "
                        "diverged from the local reference")
    else:
        print("ok bit_identical: fleet records match local runs")

    lost = fresh.get("kill_jobs_lost")
    if lost != 0:
        failures.append(f"REGRESSION kill_jobs_lost: {lost!r} jobs "
                        f"lost after the worker kill (want 0)")
    else:
        print("ok kill_jobs_lost: 0 after worker kill")

    requeued = fresh.get("kill_requeued")
    if not isinstance(requeued, int) or requeued < 1:
        failures.append(f"REGRESSION kill_requeued: {requeued!r} "
                        f"(the killed lease was never re-queued)")
    else:
        print(f"ok kill_requeued: {requeued} point(s) recovered")

    # --- CPU-aware throughput gate -----------------------------------
    if base.get("scale") != fresh.get("scale"):
        print(f"error: scale mismatch — baseline ran at "
              f"{base.get('scale')!r}, fresh at {fresh.get('scale')!r}; "
              f"ratios are only comparable at the same scale",
              file=sys.stderr)
        return 2
    want = base.get("speedup_3v1")
    got = fresh.get("speedup_3v1")
    if want is None or got is None:
        print("error: speedup_3v1 missing from baseline or fresh run",
              file=sys.stderr)
        return 2
    base_cpus = base.get("cpus", 0)
    fresh_cpus = fresh.get("cpus", 0)
    if base_cpus >= args.min_cpus and fresh_cpus >= args.min_cpus:
        floor = want * (1.0 - args.tolerance)
        line = (f"speedup_3v1: baseline {want:.2f}x, fresh {got:.2f}x "
                f"(floor {floor:.2f}x)")
        if got < floor:
            failures.append("REGRESSION " + line)
        else:
            print("ok " + line)
    else:
        print(f"skip speedup_3v1: baseline measured on {base_cpus} "
              f"cpu(s), fresh on {fresh_cpus} — worker processes "
              f"cannot scale below {args.min_cpus} cpus, so only the "
              f"correctness gates apply (fresh ratio {got:.2f}x, "
              f"baseline {want:.2f}x, informational)")

    for f in failures:
        print("error: " + f, file=sys.stderr)
    if failures:
        return 1
    print("fleet report within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
