#!/usr/bin/env python
"""End-to-end smoke test of the result warehouse, used by CI.

Runs a smoke campaign grid through the parallel process fan-out into a
throwaway store, then asserts:

1. live ingest indexed exactly one row per grid point, and a full
   ``repro warehouse rebuild`` reproduces the same rows bit for bit
   (timestamps aside);
2. ``repro query`` sees the whole grid, and the campaign filter sees
   exactly the campaign;
3. ``repro baseline record`` followed by ``check`` passes clean (exit
   0) and a seeded STP regression makes ``check`` exit 1.

Exits nonzero (with the failure on stderr) if any step misbehaves.

Usage: ``PYTHONPATH=src python scripts/warehouse_smoke.py``
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

# NOTE: the store env var is set inside main(), NOT at module level —
# the campaign's spawn workers re-import this script as ``__mp_main__``
# and a top-level mkdtemp would re-point every worker at its own
# throwaway store, splitting the index across directories.

from repro.__main__ import main as repro_main  # noqa: E402
from repro.harness.campaign import Campaign, CampaignPoint  # noqa: E402
from repro.harness.cache import get_store  # noqa: E402
from repro.harness.configs import base64_config, shelf_config  # noqa: E402

MIXES = [("ilp.int8", "serial.alu"), ("branchy.easy", "gather.small")]
LENGTH = 300
TAG = "wh-smoke"


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def step(message: str) -> None:
    print(f"ok: {message}", flush=True)


def build_points():
    """The grid: two configs x two mixes, plus the single-thread
    reference runs the derived STP/ANTT columns need."""
    points = []
    for name, cfg in (("Base64", base64_config(2)),
                      ("Shelf", shelf_config(2))):
        points += [CampaignPoint(name, cfg, mix, LENGTH, seed=i)
                   for i, mix in enumerate(MIXES)]
    ref = base64_config(1)
    seen = set()
    for i, mix in enumerate(MIXES):
        for tid, bench in enumerate(mix):
            if (bench, i + tid) in seen:
                continue
            seen.add((bench, i + tid))
            points.append(CampaignPoint("ref", ref, (bench,), LENGTH,
                                        seed=i + tid, stop="all"))
    return points


def indexed_rows(wh):
    rows = wh.execute("SELECT * FROM results ORDER BY digest")
    out = {}
    for row in rows:
        doc = dict(row)
        doc.pop("created_at")
        doc.pop("ingested_at")
        out[doc["digest"]] = doc
    return out


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-wh-smoke-")
    os.environ["REPRO_CACHE_DIR"] = tmp
    points = build_points()
    grid = len(points)
    campaign = Campaign(os.path.join(tmp, "smoke.jsonl"), points, tag=TAG)
    campaign.run(jobs=2)
    step(f"campaign ran {grid} point(s) across 2 workers")

    store = get_store()
    wh = store.warehouse()
    wh.refresh_derived()
    live = indexed_rows(wh)
    if len(live) != grid:
        fail(f"live ingest indexed {len(live)} row(s), expected {grid}")
    stp_rows = [r for r in live.values() if r["stp"] is not None]
    if len(stp_rows) != grid:
        fail(f"derived STP present on {len(stp_rows)}/{grid} row(s)")
    step("live ingest matches the grid, derived metrics filled")

    if repro_main(["warehouse", "rebuild"]) != 0:
        fail("warehouse rebuild exited nonzero")
    if indexed_rows(wh) != live:
        fail("rebuild produced different rows than live ingest")
    step("rebuild reproduces the live-ingested rows exactly")

    from repro.warehouse.query import select_rows
    _, rows = select_rows(wh, select=["digest"])
    if len(rows) != grid:
        fail(f"query saw {len(rows)} row(s), expected {grid}")
    _, rows = select_rows(wh, select=["digest"], campaign=TAG)
    if len(rows) != grid:
        fail(f"campaign filter saw {len(rows)} row(s), expected {grid}")
    if repro_main(["query", "--where", f"campaign={TAG}"]) != 0:
        fail("repro query exited nonzero")
    step("query row counts match the grid")

    baseline = os.path.join(tmp, "baseline.json")
    if repro_main(["baseline", "record", "--file", baseline,
                   "--metric", "stp", "--metric", "cycles"]) != 0:
        fail("baseline record exited nonzero")
    if repro_main(["baseline", "check", "--file", baseline]) != 0:
        fail("clean baseline check should exit 0")
    step("baseline record/check round-trips clean")

    with wh._lock, wh._conn:
        wh._conn.execute(
            "UPDATE results SET stp = stp * 0.5 WHERE num_threads = 2")
    if repro_main(["baseline", "check", "--file", baseline]) != 1:
        fail("seeded STP regression must make baseline check exit 1")
    step("seeded STP regression detected (exit 1)")

    print("warehouse smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
