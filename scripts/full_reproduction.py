#!/usr/bin/env python3
"""Paper-scale reproduction of the headline results.

Runs the core figures (1, 2, 10, 11, 13, 14, Table II) at full scale —
6,000 instructions/thread across all 28 balanced mixes.  Figure 12 and
the ablation/granularity/sensitivity sweeps are excluded here because
their extra configurations roughly double the runtime; run them with
``python -m repro experiments fig12 ablations granularity sensitivity``.

Usage: python scripts/full_reproduction.py [--jobs N]

``--jobs`` (or ``$REPRO_JOBS``) fans the simulation grid out across
worker processes; results persist in the content-addressed store
(``$REPRO_CACHE_DIR``), so a re-run after an interrupt or crash only
simulates the missing points.
"""

import argparse
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.harness import cache_stats, get_scale, resolve_jobs, \
    set_default_jobs

CORE = ["tab02", "fig01", "fig02", "fig10", "fig11", "fig13", "fig14"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: $REPRO_JOBS, "
                             "else serial; 0 = all cores)")
    args = parser.parse_args()
    set_default_jobs(args.jobs)
    scale = get_scale("full")
    print(f"# full-scale reproduction: {scale}, "
          f"jobs: {resolve_jobs()}\n", flush=True)
    t_start = time.time()
    for key in CORE:
        t0 = time.time()
        result = ALL_EXPERIMENTS[key].run(scale)
        print(result.format(), flush=True)
        print(f"[{key}: {time.time() - t0:.0f}s]\n", flush=True)
    print(f"total: {time.time() - t_start:.0f}s")
    print("cache: " + ", ".join(f"{k}={v}"
                                for k, v in cache_stats().items()))


if __name__ == "__main__":
    main()
