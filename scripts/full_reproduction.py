#!/usr/bin/env python3
"""Paper-scale reproduction of the headline results.

Runs the core figures (1, 2, 10, 11, 13, 14, Table II) at full scale —
6,000 instructions/thread across all 28 balanced mixes.  Figure 12 and
the ablation/granularity/sensitivity sweeps are excluded here because
their extra configurations roughly double the runtime; run them with
``python -m repro experiments fig12 ablations granularity sensitivity``.
"""

import time

from repro.experiments import ALL_EXPERIMENTS
from repro.harness import get_scale

CORE = ["tab02", "fig01", "fig02", "fig10", "fig11", "fig13", "fig14"]


def main() -> None:
    scale = get_scale("full")
    print(f"# full-scale reproduction: {scale}\n", flush=True)
    t_start = time.time()
    for key in CORE:
        t0 = time.time()
        result = ALL_EXPERIMENTS[key].run(scale)
        print(result.format(), flush=True)
        print(f"[{key}: {time.time() - t0:.0f}s]\n", flush=True)
    print(f"total: {time.time() - t_start:.0f}s")


if __name__ == "__main__":
    main()
