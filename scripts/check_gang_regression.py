"""Compare a fresh BENCH_gang.json against the committed baseline.

The committed JSON documents the gang engine's measured batch
throughput (>= 1.5x over cold per-point runs on the reference
machine); this script fails CI when a fresh measurement regresses the
gang speedup ratios by more than the tolerance.  Like
``check_simspeed_regression.py`` it compares *ratios*, not absolute
times, and the tolerances are generous because the cold ratio mixes
trace-generation and simulation time, which drift differently under
shared-runner noise.

Two gates:

* ``speedup_cold`` — gang vs per-point runs that regenerate traces
  (the fleet's real cost model); hard-fails below
  ``baseline * (1 - tolerance)``.
* ``speedup_warm`` — gang vs warm per-point runs in one process; the
  gang must never lose badly to solo (absolute floor, see
  ``MIN_WARM``), proving the interleaved loop itself carries no real
  overhead.

Usage:
    python scripts/check_gang_regression.py \
        --baseline /tmp/gang-baseline.json [--fresh BENCH_gang.json] \
        [--tolerance 0.25]

Exit status: 0 clean, 1 on a hard regression, 2 on usage/schema errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: absolute floor for speedup_warm: the gang may be a little slower
#: than warm solo under noise, never structurally slower.
MIN_WARM = 0.8


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed BENCH_gang.json to compare "
                             "against (e.g. a git-show copy)")
    parser.add_argument("--fresh", type=Path,
                        default=REPO_ROOT / "BENCH_gang.json",
                        help="freshly generated JSON (default: repo root)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup_cold drop "
                             "(default 0.25)")
    args = parser.parse_args(argv)

    base = load(args.baseline)
    fresh = load(args.fresh)

    if base.get("scale") != fresh.get("scale"):
        print(f"error: scale mismatch — baseline ran at "
              f"{base.get('scale')!r}, fresh at {fresh.get('scale')!r}; "
              f"ratios are only comparable at the same scale",
              file=sys.stderr)
        return 2

    failures = []
    want = base.get("speedup_cold")
    got = fresh.get("speedup_cold")
    if want is None or got is None:
        print("error: speedup_cold missing from baseline or fresh run",
              file=sys.stderr)
        return 2
    floor = want * (1.0 - args.tolerance)
    line = (f"speedup_cold: baseline {want:.2f}x, fresh {got:.2f}x "
            f"(floor {floor:.2f}x)")
    if got < floor:
        failures.append("REGRESSION " + line)
    else:
        print("ok " + line)

    warm = fresh.get("speedup_warm")
    if warm is None:
        print("error: speedup_warm missing from fresh run",
              file=sys.stderr)
        return 2
    line = f"speedup_warm: fresh {warm:.2f}x (floor {MIN_WARM:.2f}x)"
    if warm < MIN_WARM:
        failures.append("REGRESSION " + line)
    else:
        print("ok " + line)

    for f in failures:
        print("error: " + f, file=sys.stderr)
    if failures:
        return 1
    print("gang ratios within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
