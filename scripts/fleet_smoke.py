#!/usr/bin/env python
"""End-to-end smoke test of the sharded fleet, used by CI.

Everything out of process: a real ``python -m repro serve --fleet
--dashboard`` coordinator plus two real ``python -m repro worker``
subprocesses against a throwaway sharded store.  From this process:

1. submits a small two-mix campaign and waits for every point;
2. asserts each record is bit-identical to a direct in-process
   ``Pipeline`` run, that both workers registered, and that the work
   was dispatched through the fleet (``fleet_dispatched`` > 0);
3. asserts the result blobs landed in the digest-prefix shards
   (each on exactly one shard) with the warehouse index row
   replicated to every shard, and ``GET /campaigns`` aggregates the
   campaign fleet-wide;
4. fetches ``/dashboard`` and checks it serves the HTML app;
5. sends SIGTERM to the coordinator and asserts it drains and exits 0.

Exits nonzero (with the failure on stderr) if any step misbehaves.

Usage: ``PYTHONPATH=src python scripts/fleet_smoke.py``
"""

import http.client
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.pipeline import Pipeline  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.jobs import JobSpec  # noqa: E402
from repro.trace import generate  # noqa: E402

LENGTH = 1500
SHARDS = 3


def specs():
    out = []
    for seed, mix in ((3, ("ilp.int4", "pchase.l2")),
                      (4, ("branchy.hard", "mixed.int"))):
        for length in (LENGTH, LENGTH + 500):
            out.append(JobSpec.from_wire({
                "config": "shelf64", "threads": 2, "benchmarks": mix,
                "length": length, "seed": seed}))
    return out


def direct_record(spec: JobSpec) -> dict:
    traces = [generate(b, spec.length, spec.seed + i)
              for i, b in enumerate(spec.benchmarks)]
    return Pipeline(spec.config, traces).run(stop=spec.stop).as_record()


def strip(record: dict) -> dict:
    return {k: v for k, v in record.items() if k != "elapsed_s"}


def spawn_worker(url: str, name: str, env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--connect", url,
         "--name", name, "--max-points", "3"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p)
    with tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-") as tmp:
        env["REPRO_FLEET_DIR"] = os.path.join(tmp, "fleet")
        env["REPRO_FLEET_SHARDS"] = str(SHARDS)
        env["REPRO_FLEET_HEARTBEAT_S"] = "0.5"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--fleet", "--dashboard", "--drain-timeout", "60"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        workers = []
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            assert match, f"no listening banner, got: {banner!r}"
            port = match.group(1)
            url = f"http://127.0.0.1:{port}"
            client = ServiceClient(url)
            health = client.healthz()
            assert health["status"] == "ok" and health["fleet"], health

            workers = [spawn_worker(url, f"smoke-w{i}", env)
                       for i in range(2)]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                nodes = client.fleet_nodes()["nodes"]
                if sum(1 for n in nodes if n["alive"]) == 2:
                    break
                time.sleep(0.1)
            else:
                raise AssertionError(f"workers never registered: {nodes}")

            points = specs()
            job_ids = [client.submit(s, campaign="fleet-smoke")["job_id"]
                       for s in points]
            for job_id in job_ids:
                client.wait(job_id, timeout_s=300)
            for job_id, spec in zip(job_ids, points):
                doc = client.result(job_id)
                assert strip(doc["record"]) == strip(
                    direct_record(spec)), \
                    f"fleet record differs from direct run ({job_id})"
            print("smoke: 2-worker campaign bit-identical OK")

            metrics = client.metrics()
            assert metrics["jobs_completed"] == len(points), metrics
            assert metrics["jobs_failed"] == 0, metrics
            assert metrics["fleet_dispatched"] >= 1, metrics
            assert metrics["fleet"]["nodes_alive"] == 2, metrics

            # shard layout: each blob on exactly one shard, the index
            # row replicated everywhere, /campaigns aggregated
            from repro.fleet import ShardedStore, shard_index
            store = ShardedStore(env["REPRO_FLEET_DIR"], shards=SHARDS)
            for spec in points:
                digest = spec.digest()
                owners = [i for i, shard in enumerate(store.shards)
                          if digest in shard]
                assert owners == [shard_index(digest, SHARDS)], \
                    f"blob {digest[:12]} on shards {owners}"
            for i, shard in enumerate(store.shards):
                wh = shard.warehouse()
                assert wh is not None and \
                    wh.row_count() == len(points), \
                    f"shard {i} index incomplete"
            campaigns = client.campaigns()
            mine = [c for c in campaigns if c["name"] == "fleet-smoke"]
            assert mine and mine[0]["service"]["completed"] == \
                len(points), campaigns
            store.close()
            print("smoke: shard routing + replicated index + "
                  "campaign aggregation OK")

            conn = http.client.HTTPConnection("127.0.0.1", int(port),
                                              timeout=10)
            conn.request("GET", "/dashboard")
            resp = conn.getresponse()
            body = resp.read().decode()
            assert resp.status == 200 and \
                "repro service dashboard" in body, resp.status
            conn.close()
            print("smoke: dashboard OK")

            for w in workers:
                w.send_signal(signal.SIGTERM)
            for w in workers:
                w.communicate(timeout=60)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=90)
            assert proc.returncode == 0, \
                f"coordinator exited {proc.returncode}:\n{out}"
            print("smoke: graceful drain OK")
        except BaseException:
            for w in workers:
                w.kill()
            proc.kill()
            proc.wait(10)
            raise
    return 0


if __name__ == "__main__":
    sys.exit(main())
