#!/usr/bin/env python3
"""Run every experiment at the selected scale and print all tables.

Usage: [REPRO_SCALE=smoke|default|full] python scripts/run_all_experiments.py

The in-process run cache is shared across experiments, so the full suite
costs far less than the sum of its parts.
"""

import sys
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.harness import get_scale


def main() -> None:
    scale = get_scale()
    print(f"# experiment suite at scale: {scale}\n")
    t_start = time.time()
    for key, module in ALL_EXPERIMENTS.items():
        t0 = time.time()
        result = module.run(scale)
        print(result.format())
        print(f"[{key}: {time.time() - t0:.0f}s]\n")
    print(f"total: {time.time() - t_start:.0f}s")


if __name__ == "__main__":
    main()
