#!/usr/bin/env python3
"""Run every experiment at the selected scale and print all tables.

Usage: [REPRO_SCALE=smoke|default|full] \
    python scripts/run_all_experiments.py [--jobs N]

The in-process run cache is shared across experiments, so the full suite
costs far less than the sum of its parts; ``--jobs`` (or ``$REPRO_JOBS``)
additionally fans each experiment's simulation grid out across worker
processes, and the persistent store (``$REPRO_CACHE_DIR``) carries
results across invocations.
"""

import argparse
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.harness import cache_stats, get_scale, resolve_jobs, \
    set_default_jobs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: $REPRO_JOBS, "
                             "else serial; 0 = all cores)")
    args = parser.parse_args()
    set_default_jobs(args.jobs)
    scale = get_scale()
    print(f"# experiment suite at scale: {scale}, jobs: {resolve_jobs()}\n")
    t_start = time.time()
    for key, module in ALL_EXPERIMENTS.items():
        t0 = time.time()
        result = module.run(scale)
        print(result.format())
        print(f"[{key}: {time.time() - t0:.0f}s]\n")
    print(f"total: {time.time() - t_start:.0f}s")
    print("cache: " + ", ".join(f"{k}={v}"
                                for k, v in cache_stats().items()))


if __name__ == "__main__":
    main()
