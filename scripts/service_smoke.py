#!/usr/bin/env python
"""End-to-end smoke test of the simulation service, used by CI.

Out-of-process on purpose: starts a real ``python -m repro serve``
subprocess against a throwaway result store, then from this process

1. submits two *identical* jobs concurrently and asserts exactly one
   simulation execution (queue dedup) with both records equal to a
   direct in-process ``Pipeline`` run of the same point;
2. asserts the ``/metrics`` document reflects the dedup and the single
   execution;
3. sends SIGTERM and asserts the server drains and exits 0.

Exits nonzero (with the failure on stderr) if any step misbehaves.

Usage: ``PYTHONPATH=src python scripts/service_smoke.py``
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.pipeline import Pipeline  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.jobs import JobSpec, config_from_wire  # noqa: E402
from repro.trace import generate  # noqa: E402

SPEC = {"config": "shelf64", "threads": 1, "benchmarks": ["ilp.int4"],
        "length": 2000}


def direct_record() -> dict:
    """The reference: a plain in-process run of the same point."""
    spec = JobSpec.from_wire(SPEC)
    traces = [generate(b, spec.length, spec.seed + i)
              for i, b in enumerate(spec.benchmarks)]
    return Pipeline(spec.config, traces).run(stop=spec.stop).as_record()


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p)
    with tempfile.TemporaryDirectory(prefix="repro-svc-smoke-") as tmp:
        env["REPRO_CACHE_DIR"] = os.path.join(tmp, "store")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--drain-timeout", "60"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            assert match, f"no listening banner, got: {banner!r}"
            client = ServiceClient(f"http://127.0.0.1:{match.group(1)}")
            assert client.healthz()["status"] == "ok"

            # two identical jobs, submitted concurrently
            docs = [None, None]

            def submit(i):
                docs[i] = client.run(SPEC, wait_timeout_s=120)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(150)
            assert all(d and d["state"] == "done" for d in docs), docs

            reference = direct_record()
            for doc in docs:
                record = {k: v for k, v in doc["record"].items()
                          if k != "elapsed_s"}
                assert record == reference, \
                    "service record differs from direct run"

            metrics = client.metrics()
            assert metrics["jobs_submitted"] == 2, metrics
            assert metrics["executed_points"] == 1, metrics
            assert metrics["jobs_completed"] == 2, metrics
            assert metrics["dedup_hits"] + metrics["cache_hits"] == 1, \
                metrics
            assert metrics["jobs_failed"] == 0, metrics
            print("smoke: dedup + bit-identity + metrics OK")

            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=90)
            assert proc.returncode == 0, \
                f"serve exited {proc.returncode}:\n{out}"
            assert "drained" in out, f"no drain message:\n{out}"
            print("smoke: graceful drain OK")
        except BaseException:
            proc.kill()
            proc.wait(10)
            raise
    return 0


if __name__ == "__main__":
    sys.exit(main())
