"""Behavioural validation of the synthetic benchmark roster.

Each family was designed to stress a specific axis of the shelf's
evaluation; these tests pin those behaviours down on the baseline core so
workload regressions cannot silently invalidate the experiments.
"""

import pytest

from repro.core import CoreConfig, simulate
from repro.harness.runner import run_benchmark
from repro.metrics import insequence_fraction
from repro.trace import BENCHMARK_NAMES, benchmark_spec, generate

LENGTH = 1500


@pytest.fixture(scope="module")
def results():
    cfg = CoreConfig(num_threads=1)
    out = {}
    for name in BENCHMARK_NAMES:
        out[name] = run_benchmark(cfg, name, LENGTH, 0)
    return out


class TestFamilyCharacteristics:
    def test_pchase_mem_is_latency_bound(self, results):
        # A serialized chase to memory: one ~200-cycle miss per handful of
        # instructions.
        assert results["pchase.mem"].ipc < 0.05

    def test_pchase_wide_has_mlp(self, results):
        # Four independent chains overlap misses: clearly faster than one
        # (short cold-cache runs keep the ratio below the ideal 4x).
        assert results["pchase.wide"].ipc > 1.5 * results["pchase.mem"].ipc

    def test_pchase_l1_faster_than_l2_faster_than_mem(self, results):
        assert results["pchase.l1"].ipc > results["pchase.l2"].ipc
        assert results["pchase.l2"].ipc > results["pchase.mem"].ipc

    def test_ilp_kernels_have_high_ipc(self, results):
        # The load-free ILP kernels sustain high throughput; the loaded
        # variants are cold-miss-bound at test lengths but still beat the
        # latency-bound families by an order of magnitude.
        assert results["ilp.int8"].ipc > 0.9
        assert results["ilp.mul"].ipc > 0.5
        assert results["ilp.int4"].ipc > 10 * results["pchase.mem"].ipc

    def test_serial_chain_is_one_ipc_bound(self, results):
        assert results["serial.alu"].ipc < 1.1

    def test_serial_kernels_are_insequence_heavy(self, results):
        assert insequence_fraction(results["serial.alu"]) > 0.8

    def test_ilp_kernels_are_reordered_heavy(self, results):
        assert insequence_fraction(results["ilp.int4"]) < 0.4

    def test_branchy_flip_mispredicts_much_more_than_easy(self, results):
        easy = results["branchy.easy"].bpred_accuracy
        flip = results["branchy.flip"].bpred_accuracy
        assert easy - flip > 0.1

    def test_stream_misses_dominate(self, results):
        stats = results["stream.copy"].cache_stats
        assert stats["l1d"]["misses"] > 0.05 * (
            stats["l1d"]["hits"] + stats["l1d"]["misses"])

    def test_gather_small_cheaper_than_gather_large(self, results):
        # The small table warms into L1/L2 far better than the 4MB one.
        small = results["gather.small"].cache_stats["l1d"]
        # after the cold region, reuse appears; the large gather stays
        # essentially uncached and slower end to end.
        assert small["hits"] > 0
        assert results["gather.small"].ipc > results["gather.large"].ipc

    def test_mixed_kernels_have_stores(self, results):
        assert results["mixed.store"].events.sq_writes > 0
        assert results["mixed.store"].events.storebuf_inserts > 0

    def test_gather_rmw_exercises_forwarding_machinery(self, results):
        res = results["gather.rmw"]
        # read-modify-write to random addresses: the LSQ scan paths run.
        assert res.events.sq_searches > 0
        assert res.events.lq_searches > 0


class TestRosterDiversity:
    def test_ipc_spans_two_orders_of_magnitude(self, results):
        ipcs = [r.ipc for r in results.values()]
        assert max(ipcs) / min(ipcs) > 20

    def test_insequence_fractions_span_wide_range(self, results):
        fracs = [insequence_fraction(r) for r in results.values()]
        assert min(fracs) < 0.3
        assert max(fracs) > 0.8

    def test_footprints_declared_consistently(self):
        for name in BENCHMARK_NAMES:
            spec = benchmark_spec(name)
            tr = generate(name, 800, 0)
            has_mem = any(i.is_mem for i in tr)
            if spec.footprint:
                assert has_mem, f"{name} declares data but never touches it"

    def test_mem_fraction_varies_by_family(self):
        def mem_frac(name):
            tr = generate(name, 1000, 0)
            return sum(1 for i in tr if i.is_mem) / len(tr)

        assert mem_frac("stream.copy") > 0.3
        assert mem_frac("ilp.int8") == 0.0
        assert 0.1 < mem_frac("mixed.int") < 0.5
