"""Unit tests for smaller internals: DynInstr, ThreadContext, stats
containers, and shelf/ROB retire-gate timing details."""

import pytest

from repro.core import CoreConfig, Pipeline
from repro.core.dynamic import DynInstr
from repro.core.stats import EventCounts, SimResult, ThreadResult
from repro.core.thread_context import ThreadContext
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.trace import Trace, generate


def _instr(op=OpClass.INT_ALU, **kw):
    base = dict(op=op, dest=1, srcs=(2,), pc=0x1000, next_pc=0x1004)
    if op in (OpClass.LOAD, OpClass.STORE):
        base["mem_addr"] = 0x100
    if op is OpClass.STORE:
        base["dest"] = None
        base["srcs"] = (1, 2)
    if op is OpClass.BRANCH:
        base["dest"] = None
        base["taken"] = True
    base.update(kw)
    return Instruction(**base)


class TestDynInstr:
    def test_initial_state(self):
        d = DynInstr(0, 5, 7, _instr(), 1)
        assert d.seq == 5 and d.gseq == 7
        assert not d.issued and not d.completed and not d.retired
        assert not d.squashed and not d.executed
        assert d.rename is None and d.steer_cached is None
        assert not d.to_shelf and not d.mispredicted

    def test_lazy_fields_follow_write_before_read_contract(self):
        # Stage-owned fields are deliberately unset until the owning
        # stage writes them (see the DynInstr docstring); reading one on
        # a freshly fetched instruction is a bug.
        d = DynInstr(0, 5, 7, _instr(), 1)
        for lazy in ("dispatch_cycle", "issue_cycle", "complete_cycle",
                     "rob_idx", "order_idx", "src_tags", "dest_tag",
                     "waiting_store", "wake_waits", "frontend_ready"):
            with pytest.raises(AttributeError):
                getattr(d, lazy)

    def test_kind_properties(self):
        assert DynInstr(0, 0, 0, _instr(OpClass.LOAD), 2).is_load
        assert DynInstr(0, 0, 0, _instr(OpClass.STORE), 1).is_store
        assert DynInstr(0, 0, 0, _instr(OpClass.BRANCH), 3).is_branch
        assert DynInstr(0, 0, 0, _instr(OpClass.LOAD), 2).is_mem

    def test_repr_reflects_state(self):
        d = DynInstr(1, 3, 9, _instr(), 1)
        assert "waiting" in repr(d)
        d.issued = True
        assert "issued" in repr(d)
        d.to_shelf = True
        assert "shelf" in repr(d)

    def test_slots_reject_unknown_attributes(self):
        d = DynInstr(0, 0, 0, _instr(), 1)
        with pytest.raises(AttributeError):
            d.scratchpad = 1


class TestThreadContext:
    def _ctx(self, shelf=16):
        cfg = CoreConfig(num_threads=1, shelf_entries=shelf,
                         steering="practical" if shelf else "iq-only")
        return ThreadContext(0, generate("ilp.int8", 50, 0), cfg)

    def test_initial_fetchability(self):
        t = self._ctx()
        assert t.fetchable(0)
        t.fetch_blocked_until = 10
        assert not t.fetchable(5)
        assert t.fetchable(10)

    def test_pending_branch_blocks_fetch(self):
        t = self._ctx()
        t.pending_branch = DynInstr(0, 0, 0, _instr(OpClass.BRANCH), 3)
        assert not t.fetchable(0)

    def test_rob_reservation_empty(self):
        t = self._ctx()
        assert t.rob_reservation() is None

    def test_elder_spec_resolution_prunes(self):
        t = self._ctx()
        t.spec_inflight = [(1, 10), (3, 50), (9, 100)]
        # idx 5 at cycle 20: entry (1,10) resolved, (3,50) elder & live.
        assert t.elder_spec_resolution(5, 20) == 50
        assert (1, 10) not in t.spec_inflight

    def test_elder_spec_ignores_younger(self):
        t = self._ctx()
        t.spec_inflight = [(9, 100)]
        assert t.elder_spec_resolution(5, 0) == 0

    def test_finished_and_trace_done(self):
        t = self._ctx()
        assert not t.finished
        t.retired = 50
        assert t.finished


class TestStatsContainers:
    def test_event_counts_start_zero(self):
        ev = EventCounts()
        assert all(v == 0 for v in ev.as_dict().values())

    def test_thread_result_inf_cpi(self):
        t = ThreadResult(tid=0, benchmark="x", trace_length=10, retired=0,
                         cpi=float("inf"), finish_cycle=None)
        assert t.ipc == 0.0 or t.ipc == pytest.approx(0.0)

    def test_sim_result_aggregates(self):
        threads = [ThreadResult(tid=i, benchmark=f"b{i}", trace_length=10,
                                retired=10, cpi=2.0, finish_cycle=20)
                   for i in range(2)]
        res = SimResult(config_label="t", cycles=40, threads=threads,
                        events=EventCounts(), cache_stats={},
                        steering_stats={}, occupancy={},
                        bpred_accuracy=1.0)
        assert res.total_retired == 20
        assert res.ipc == pytest.approx(0.5)
        assert res.cpi_of(1) == 2.0


class TestRetireGateTiming:
    def test_rob_waits_for_elder_shelf_writeback(self):
        # Shelf instr (long latency) older than an instantly-complete IQ
        # instr: the IQ instr must not retire first.
        instrs = [
            # shelf candidate: multiply chain dependent value
            Instruction(op=OpClass.INT_MUL, dest=2, srcs=(2,), pc=0x1000,
                        next_pc=0x1004),
            Instruction(op=OpClass.INT_MUL, dest=2, srcs=(2,), pc=0x1004,
                        next_pc=0x1008),
            # independent IQ one-cycle op
            Instruction(op=OpClass.INT_ALU, dest=5, srcs=(6,), pc=0x1008,
                        next_pc=0x100C),
        ]
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="practical")
        pipe = Pipeline(cfg, [Trace("gate", instrs)],
                        record_schedule=True)
        pipe.run(stop="all")
        retire = {r["seq"]: r["retire"] for r in pipe.instr_log}
        shelf_flags = {r["seq"]: r["to_shelf"] for r in pipe.instr_log}
        if shelf_flags.get(1) and not shelf_flags.get(2):
            assert retire[2] >= retire[1]

    def test_shelf_retire_out_of_order_wrt_rob(self):
        # A completed shelf instruction younger than a stalled IQ miss
        # retires before it (the paper's out-of-order shelf retirement).
        instrs = [
            Instruction(op=OpClass.LOAD, dest=9, srcs=(8,), pc=0x1000,
                        next_pc=0x1004, mem_addr=0x40000),  # long miss
            Instruction(op=OpClass.INT_ALU, dest=2, srcs=(2,), pc=0x1004,
                        next_pc=0x1008),
        ]
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="practical")
        pipe = Pipeline(cfg, [Trace("ooo-retire", instrs)],
                        record_schedule=True)
        pipe.run(stop="all")
        recs = {r["seq"]: r for r in pipe.instr_log}
        if recs[1]["to_shelf"]:
            assert recs[1]["retire"] < recs[0]["retire"]
