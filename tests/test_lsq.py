"""Unit tests for load/store queues, forwarding and the store buffer."""

import pytest

from repro.core.dynamic import DynInstr
from repro.core.lsq import LoadStoreQueues, StoreBuffer
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass


def _mem(op, seq, gseq, addr, size=8, tid=0):
    srcs = (1,) if op is OpClass.LOAD else (1, 2)
    instr = Instruction(op=op, dest=3 if op is OpClass.LOAD else None,
                        srcs=srcs, pc=0x1000 + 4 * seq, next_pc=0,
                        mem_addr=addr, mem_size=size)
    return DynInstr(tid, seq, gseq, instr, 2)


def _load(seq, gseq, addr, **kw):
    return _mem(OpClass.LOAD, seq, gseq, addr, **kw)


def _store(seq, gseq, addr, **kw):
    return _mem(OpClass.STORE, seq, gseq, addr, **kw)


def make_lsq(lq=8, sq=8, buf=4):
    return LoadStoreQueues(lq, sq, buf)


class TestCapacity:
    def test_lq_capacity(self):
        q = make_lsq(lq=2)
        q.dispatch_load(_load(0, 0, 0x100))
        q.dispatch_load(_load(1, 1, 0x200))
        assert not q.can_dispatch_load()
        q.retire_load(q.lq[0])
        assert q.can_dispatch_load()

    def test_sq_capacity(self):
        q = make_lsq(sq=1)
        st = _store(0, 0, 0x100)
        q.dispatch_store(st)
        assert not q.can_dispatch_store()

    def test_shelf_store_takes_no_entry(self):
        q = make_lsq(sq=1)
        q.dispatch_store(_store(0, 0, 0x100))
        q.dispatch_shelf_store(_store(1, 1, 0x200))
        assert q.sq_occupancy == 1
        assert len(q.all_stores) == 2


class TestForwarding:
    def test_youngest_matching_elder_store_wins(self):
        q = make_lsq()
        s1 = _store(0, 0, 0x100)
        s2 = _store(1, 1, 0x100)
        s1.executed = s2.executed = True
        q.dispatch_store(s1)
        q.dispatch_store(s2)
        ld = _load(2, 2, 0x100)
        assert q.find_forwarding_store(ld) is s2

    def test_unexecuted_store_not_forwarded(self):
        q = make_lsq()
        s = _store(0, 0, 0x100)
        q.dispatch_store(s)
        assert q.find_forwarding_store(_load(1, 1, 0x100)) is None

    def test_younger_store_never_forwards(self):
        q = make_lsq()
        s = _store(5, 5, 0x100)
        s.executed = True
        q.dispatch_store(s)
        assert q.find_forwarding_store(_load(1, 1, 0x100)) is None

    def test_partial_overlap_detected(self):
        q = make_lsq()
        s = _store(0, 0, 0x104, size=8)
        s.executed = True
        q.dispatch_store(s)
        assert q.find_forwarding_store(_load(1, 1, 0x100, size=8)) is s
        assert q.find_forwarding_store(_load(2, 2, 0x10C, size=4)) is None

    def test_shelf_load_forwards_from_younger_issued_load(self):
        q = make_lsq()
        young = _load(5, 5, 0x100)
        young.issued = True
        q.dispatch_load(young)
        shelf_ld = _load(2, 2, 0x100)
        assert q.find_forwarding_load(shelf_ld) is young

    def test_unexecuted_elder_store_query(self):
        q = make_lsq()
        s = _store(0, 0, 0x100)
        q.dispatch_store(s)
        assert q.has_unexecuted_elder_store(5)
        assert not q.has_unexecuted_elder_store(0)
        s.executed = True
        assert not q.has_unexecuted_elder_store(5)

    def test_shelf_store_participates_in_elder_check(self):
        q = make_lsq()
        q.dispatch_shelf_store(_store(0, 0, 0x100))
        assert q.has_unexecuted_elder_store(5)


class TestViolations:
    def test_early_load_caught(self):
        q = make_lsq()
        st = _store(0, 0, 0x100)
        q.dispatch_store(st)
        ld = _load(1, 1, 0x100)
        ld.issued = True          # issued before the store executed
        q.dispatch_load(ld)
        st.executed = True
        assert q.violation_load(st) is ld

    def test_forwarded_load_is_safe(self):
        q = make_lsq()
        st = _store(0, 0, 0x100)
        q.dispatch_store(st)
        ld = _load(1, 1, 0x100)
        ld.issued = True
        ld.forwarded_from = st.gseq  # saw this store's value
        q.dispatch_load(ld)
        st.executed = True
        assert q.violation_load(st) is None

    def test_load_forwarded_from_older_store_still_violates(self):
        q = make_lsq()
        old_st = _store(0, 0, 0x100)
        new_st = _store(1, 1, 0x100)
        q.dispatch_store(old_st)
        q.dispatch_store(new_st)
        ld = _load(2, 2, 0x100)
        ld.issued = True
        ld.forwarded_from = old_st.gseq
        q.dispatch_load(ld)
        new_st.executed = True
        assert q.violation_load(new_st) is ld

    def test_unissued_load_is_safe(self):
        q = make_lsq()
        st = _store(0, 0, 0x100)
        q.dispatch_store(st)
        q.dispatch_load(_load(1, 1, 0x100))
        st.executed = True
        assert q.violation_load(st) is None

    def test_eldest_violating_load_selected(self):
        q = make_lsq()
        st = _store(0, 0, 0x100)
        q.dispatch_store(st)
        for seq in (3, 1, 2):
            ld = _load(seq, seq, 0x100)
            ld.issued = True
            q.dispatch_load(ld)
        st.executed = True
        assert q.violation_load(st).seq == 1

    def test_disjoint_address_is_safe(self):
        q = make_lsq()
        st = _store(0, 0, 0x100)
        q.dispatch_store(st)
        ld = _load(1, 1, 0x900)
        ld.issued = True
        q.dispatch_load(ld)
        st.executed = True
        assert q.violation_load(st) is None


class TestStoreBuffer:
    def test_coalescing_same_line(self):
        b = StoreBuffer(2)
        b.insert(0x100)
        b.insert(0x108)  # same 64B line
        assert b.occupancy == 1
        assert b.coalesced == 1

    def test_capacity_and_can_accept(self):
        b = StoreBuffer(1)
        b.insert(0x100)
        assert not b.can_accept(0x1000)
        assert b.can_accept(0x108)  # coalesces

    def test_drain_fifo_order(self):
        b = StoreBuffer(4)
        b.insert(0x100)
        b.insert(0x200)
        assert b.drain_one() == 0x100
        assert b.drain_one() == 0x200
        assert b.drain_one() is None

    def test_undrain_keeps_head_position(self):
        b = StoreBuffer(4)
        b.insert(0x100)
        b.insert(0x200)
        addr = b.drain_one()
        b.undrain(addr)
        assert b.drain_one() == 0x100

    def test_retire_store_moves_to_buffer(self):
        q = make_lsq()
        st = _store(0, 0, 0x100)
        st.executed = True
        q.dispatch_store(st)
        q.retire_store(st)
        assert q.sq_occupancy == 0
        assert q.store_buffer.contains(0x100)
        assert not q.all_stores


class TestSquash:
    def test_squash_from_drops_younger(self):
        q = make_lsq()
        q.dispatch_load(_load(1, 1, 0x100))
        q.dispatch_load(_load(5, 5, 0x200))
        q.dispatch_store(_store(3, 3, 0x300))
        q.squash_from(3)
        assert q.lq_occupancy == 1
        assert q.sq_occupancy == 0
        assert not q.all_stores
