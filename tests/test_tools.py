"""Tests for the CLI, the pipe-trace visualizer and trace serialization."""

import io
import sys

import pytest

from repro.__main__ import main
from repro.analysis import format_pipetrace, occupancy_timeline
from repro.core import CoreConfig, Pipeline
from repro.trace import Trace, generate
from repro.trace.serialize import load_trace, save_trace


@pytest.fixture
def capture(capsys):
    return capsys


class TestCLI:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "pchase.mem" in out and "stream.add" in out
        assert "pointer chase" in out

    def test_run_single_thread(self, capsys):
        rc = main(["run", "ilp.int4", "--threads", "1",
                   "--length", "300", "--config", "base64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "retired" in out and "300" in out

    def test_run_with_energy_and_pipetrace(self, capsys):
        rc = main(["run", "serial.alu", "--threads", "1", "--length",
                   "200", "--energy", "--pipetrace", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "EDP" in out and "W over" in out
        assert "D=dispatch" in out

    def test_run_mismatched_thread_count(self, capsys):
        assert main(["run", "ilp.int4,serial.alu", "--threads", "4",
                     "--length", "100"]) == 2

    def test_run_unknown_benchmark(self, capsys):
        assert main(["run", "spec.gcc", "--threads", "1",
                     "--length", "100"]) == 2

    def test_run_tso(self, capsys):
        rc = main(["run", "mixed.store", "--threads", "1", "--length",
                   "300", "--memory-model", "tso"])
        assert rc == 0

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "fig99"]) == 2

    def test_experiments_tab02(self, capsys):
        assert main(["experiments", "tab02", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_trace_roundtrip_via_cli(self, tmp_path, capsys):
        out_file = tmp_path / "t.jsonl.gz"
        assert main(["trace", "branchy.easy", str(out_file),
                     "--length", "250"]) == 0
        tr = load_trace(out_file)
        assert len(tr) == 250


class TestSerialization:
    def test_roundtrip_identity(self, tmp_path):
        tr = generate("mixed.int", 400, 3)
        path = tmp_path / "mix.gz"
        save_trace(tr, path)
        back = load_trace(path)
        assert back.name == tr.name
        assert len(back) == len(tr)
        for a, b in zip(tr, back):
            assert a == b  # frozen dataclasses compare by value

    def test_all_op_classes_roundtrip(self, tmp_path):
        tr = generate("gather.rmw", 300, 0)  # loads, stores, branches, alu
        path = tmp_path / "t.gz"
        save_trace(tr, path)
        assert list(load_trace(path)) == list(tr)

    def test_bad_format_rejected(self, tmp_path):
        import gzip
        import json
        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(json.dumps({"format": 99, "name": "x",
                                 "length": 0}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        import gzip
        import json
        path = tmp_path / "short.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(json.dumps({"format": 1, "name": "x",
                                 "length": 5}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.core import simulate
        tr = generate("branchy.hard", 500, 1)
        path = tmp_path / "b.gz"
        save_trace(tr, path)
        cfg = CoreConfig(num_threads=1)
        a = simulate(cfg, [tr], stop="all")
        b = simulate(cfg, [load_trace(path)], stop="all")
        assert a.cycles == b.cycles


class TestPipetrace:
    def _run(self, record=True):
        pipe = Pipeline(CoreConfig(num_threads=1, shelf_entries=16,
                                   steering="practical"),
                        [generate("serial.alu", 200, 0)],
                        record_schedule=record)
        pipe.run(stop="all")
        return pipe

    def test_requires_recording(self):
        pipe = self._run(record=False)
        with pytest.raises(ValueError):
            format_pipetrace(pipe)

    def test_renders_rows_with_markers(self):
        pipe = self._run()
        text = format_pipetrace(pipe, max_instructions=10)
        lines = text.splitlines()
        assert len(lines) == 11  # header + 10 rows
        for line in lines[1:]:
            assert "D" in line or "I" in line
            assert "R" in line
            assert "shelf" in line or "iq" in line

    def test_thread_filter(self):
        pipe = self._run()
        assert "(no retired instructions" in \
            format_pipetrace(pipe, tid=3)

    def test_window_selection(self):
        pipe = self._run()
        a = format_pipetrace(pipe, start=0, max_instructions=5)
        b = format_pipetrace(pipe, start=50, max_instructions=5)
        assert a != b

    def test_occupancy_timeline(self):
        pipe = self._run()
        text = occupancy_timeline(pipe, buckets=10)
        assert "retired instructions per" in text
        assert "#" in text
