"""Unit tests for the steering policies (paper Section IV)."""

import pytest

from repro.core.config import CoreConfig
from repro.core.dynamic import DynInstr
from repro.core.steering import (
    ComparisonSteering,
    IQOnlySteering,
    OracleSteering,
    PracticalSteering,
    ShelfOnlySteering,
    make_steering,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.memory.hierarchy import MemoryHierarchy


def alu(dest=1, srcs=(2,), pc=0x1000):
    return Instruction(op=OpClass.INT_ALU, dest=dest, srcs=srcs, pc=pc,
                       next_pc=pc + 4)


def load(dest=1, src=2, addr=0x100, pc=0x1000):
    return Instruction(op=OpClass.LOAD, dest=dest, srcs=(src,), pc=pc,
                       next_pc=pc + 4, mem_addr=addr)


def dyn_of(instr, tid=0, seq=0, gseq=0):
    return DynInstr(tid, seq, gseq, instr, 2)


def practical(threads=1):
    return PracticalSteering(CoreConfig(num_threads=threads,
                                        shelf_entries=16 * threads,
                                        steering="practical"))


class TestTrivialPolicies:
    def test_iq_only(self):
        p = IQOnlySteering()
        assert p.decide(0, alu(), 0) is False

    def test_shelf_only(self):
        p = ShelfOnlySteering()
        assert p.decide(0, alu(), 0) is True

    def test_factory(self):
        h = MemoryHierarchy()
        for name, cls in (("iq-only", IQOnlySteering),
                          ("shelf-only", ShelfOnlySteering),
                          ("practical", PracticalSteering),
                          ("oracle", OracleSteering)):
            cfg = CoreConfig(num_threads=1,
                             shelf_entries=0 if name == "iq-only" else 16,
                             steering=name)
            assert isinstance(make_steering(cfg, h), cls)


class TestPracticalSteering:
    def test_ready_operands_tie_to_shelf(self):
        # Fresh state: everything predicted ready -> tie -> shelf (the
        # paper breaks ties in favor of the shelf).
        p = practical()
        assert p.decide(0, alu(), 0) is True

    def test_independent_work_goes_iq_after_long_predicted_stall(self):
        p = practical()
        # A divide chain raises the in-order floor well above zero...
        div = Instruction(op=OpClass.FP_DIV, dest=3, srcs=(3,), pc=0x1000,
                          next_pc=0x1004)
        p.decide(0, div, 0)
        p.decide(0, Instruction(op=OpClass.FP_DIV, dest=3, srcs=(3,),
                                pc=0x1004, next_pc=0x1008), 0)
        # ...so independent ready work is predicted to issue earlier from
        # the IQ and steers there.
        assert p.decide(0, alu(dest=5, srcs=(6,)), 0) is False

    def test_dependent_of_chain_steers_to_shelf(self):
        p = practical()
        div = Instruction(op=OpClass.FP_DIV, dest=3, srcs=(3,), pc=0x1000,
                          next_pc=0x1004)
        p.decide(0, div, 0)
        # Consumer of the divide: last-arriving operand dominates -> shelf.
        assert p.decide(0, alu(dest=4, srcs=(3,)), 0) is True

    def test_rct_counts_down(self):
        p = practical()
        mul = Instruction(op=OpClass.INT_MUL, dest=3, srcs=(), pc=0x1000,
                          next_pc=0x1004)
        p.decide(0, mul, 0)
        before = int(p._rct[0][3])
        p.tick(1)
        assert int(p._rct[0][3]) == before - 1

    def test_rct_saturates_at_cap(self):
        p = practical()
        for i in range(12):
            p.decide(0, Instruction(op=OpClass.FP_DIV, dest=3, srcs=(3,),
                                    pc=0x1000 + 4 * i, next_pc=0), 0)
        assert int(p._rct[0][3]) <= p.cap

    def test_plt_column_assignment_and_release(self):
        p = practical()
        ld = load(dest=3)
        p.decide(0, ld, 0)
        d = dyn_of(ld)
        p.note_dispatched(d, 0)
        assert int(p._plt[0][3]) != 0
        d.completed = True
        p.tick(1)
        assert int(p._plt[0][3]) == 0
        assert p._cols[0][0] is None

    def test_plt_tracks_at_most_n_loads(self):
        p = practical()
        dyns = []
        for i in range(6):
            ld = load(dest=3 + i, pc=0x1000 + 4 * i)
            p.decide(0, ld, 0)
            d = dyn_of(ld, seq=i, gseq=i)
            p.note_dispatched(d, 0)
            dyns.append(d)
        assigned = sum(1 for c in p._cols[0] if c is not None)
        assert assigned == p.num_cols == 4

    def test_late_load_freezes_dependent_rows(self):
        p = practical()
        ld = load(dest=3)
        p.decide(0, ld, 0)
        d = dyn_of(ld)
        p.note_dispatched(d, 0)
        p.decide(0, alu(dest=4, srcs=(3,)), 0)  # dependent row inherits col
        # Let the predicted completion pass without the load completing.
        for c in range(1, 10):
            p.tick(c)
        assert p._late_mask[0] != 0
        frozen = int(p._rct[0][4])
        p.tick(10)
        assert int(p._rct[0][4]) == frozen  # decrement stalled

    def test_late_dependent_steers_to_shelf_not_loads(self):
        p = practical()
        ld = load(dest=3)
        p.decide(0, ld, 0)
        p.note_dispatched(dyn_of(ld), 0)
        for c in range(1, 10):
            p.tick(c)
        assert p._late_mask[0] != 0
        # ALU consumer of the late load: in-sequence -> shelf.
        assert p.decide(0, alu(dest=4, srcs=(3,)), 20) is True
        # A *load* consuming the late value is a dependent chase from some
        # chain: it stays in the IQ to preserve MLP across chains.
        assert p.decide(0, load(dest=5, src=3, pc=0x2000), 20) is False

    def test_threads_do_not_interfere(self):
        p = practical(threads=2)
        div = Instruction(op=OpClass.FP_DIV, dest=3, srcs=(3,), pc=0x1000,
                          next_pc=0x1004)
        p.decide(0, div, 0)
        assert int(p._rct[0][3]) > 0
        assert int(p._rct[1][3]) == 0

    def test_stats(self):
        p = practical()
        p.decide(0, alu(), 0)
        s = p.stats()
        assert s["steered_shelf"] + s["steered_iq"] == 1
        assert 0.0 <= s["shelf_fraction"] <= 1.0


class TestOracleSteering:
    def _oracle(self):
        cfg = CoreConfig(num_threads=1, shelf_entries=16, steering="oracle")
        return OracleSteering(cfg, MemoryHierarchy()), cfg

    def test_uses_functional_cache_probe(self):
        o, _ = self._oracle()
        # Cold load: exact (miss) latency; the probe must not disturb the
        # cache (still cold afterwards).
        assert o._latency(load()) > 100
        assert o._latency(load()) > 100

    def test_in_sequence_definition(self):
        o, _ = self._oracle()
        # First instruction: trivially in order -> shelf (tie).
        assert o.decide(0, alu(dest=3, srcs=()), 0) is True
        # A divide *chain*: the second divide's issue waits for the first,
        # raising the in-order floor, so independent ready work would
        # issue earlier from the IQ.
        o.decide(0, Instruction(op=OpClass.FP_DIV, dest=4, srcs=(4,),
                                pc=0x1000, next_pc=0x1004), 0)
        o.decide(0, Instruction(op=OpClass.FP_DIV, dest=4, srcs=(4,),
                                pc=0x1004, next_pc=0x1008), 0)
        assert o.decide(0, alu(dest=5, srcs=()), 0) is False
        # But the divide's consumer issues no earlier anywhere -> shelf.
        assert o.decide(0, alu(dest=6, srcs=(4,)), 0) is True

    def test_corrections_track_actual_schedule(self):
        o, _ = self._oracle()
        ins = alu(dest=3, srcs=())
        o.decide(0, ins, 0)
        d = dyn_of(ins)
        d.rename = type("R", (), {"arch": 3})()
        o.on_complete(d, 500)
        assert o._ready[0][3] == 500

    def test_on_issue_raises_inorder_floor(self):
        o, _ = self._oracle()
        d = dyn_of(alu())
        o.on_issue(d, 300)
        assert o._earliest_issue[0] == 300


class TestComparisonSteering:
    def test_counts_disagreements(self):
        c = ComparisonSteering(IQOnlySteering(), ShelfOnlySteering())
        for i in range(10):
            assert c.decide(0, alu(pc=0x1000 + 4 * i), i) is False
        assert c.disagreements == 10
        assert c.stats()["missteer_fraction"] == 1.0

    def test_agreement(self):
        c = ComparisonSteering(IQOnlySteering(), IQOnlySteering())
        c.decide(0, alu(), 0)
        assert c.stats()["missteer_fraction"] == 0.0

    def test_forwards_hooks(self):
        p = practical()
        c = ComparisonSteering(p, IQOnlySteering())
        ld = load(dest=3)
        c.decide(0, ld, 0)
        c.note_dispatched(dyn_of(ld), 0)
        assert p._cols[0][0] is not None
        c.tick(1)  # must not raise
