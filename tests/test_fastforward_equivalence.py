"""Fast-forward vs reference equivalence oracle.

The event-driven loop (wakeup lists + idle fast-forward, see
``docs/performance.md``) must be *bit-identical* to the per-cycle polling
reference: same :class:`SimResult` records byte for byte, same issue
logs, same per-instruction lifetime records, same final cycle.  These
tests run both paths over randomized small configurations and directed
stress cases and compare everything.
"""

import pickle
import random

import pytest

from repro.core.config import CoreConfig
from repro.core.horizon import fastforward_enabled
from repro.core.pipeline import DeadlockError, Pipeline
from repro.memory.hierarchy import HierarchyConfig
from repro.trace import generate


def _run_pair(cfg, traces, stop="all", max_cycles=None):
    """Run fast-forward and reference pipelines over the same traces;
    assert byte-identical results and identical logs; return both."""
    fast = Pipeline(cfg, traces, record_schedule=True, fastforward=True)
    r_fast = fast.run(stop=stop, max_cycles=max_cycles)
    ref = Pipeline(cfg, traces, record_schedule=True, fastforward=False)
    r_ref = ref.run(stop=stop, max_cycles=max_cycles)

    assert fast.cycle == ref.cycle, \
        f"cycle count diverged: fast {fast.cycle} vs ref {ref.cycle}"
    assert fast.issue_log == ref.issue_log, "issue schedules diverged"
    assert fast.instr_log == ref.instr_log, "lifetime records diverged"
    assert pickle.dumps(r_fast) == pickle.dumps(r_ref), \
        "SimResult records are not byte-identical"
    return fast, ref


#: Workloads that exercise distinct idle/activity shapes: miss-dominated
#: pointer chases (long fast-forward windows), dense ILP (no windows),
#: serialized dependency chains, hard-to-predict branches, and stores.
_WORKLOADS = ("pchase.mem", "pchase.l2", "ilp.int8", "serial.memdep",
              "branchy.hard", "mixed.store", "gather.small", "serial.div")


def _random_config(rng):
    num_threads = rng.choice((1, 2))
    steering = rng.choice(("iq-only", "practical", "oracle", "shelf-only"))
    shelf = 0 if steering == "iq-only" and rng.random() < 0.5 \
        else rng.choice((16, 32)) * num_threads
    return CoreConfig(
        num_threads=num_threads,
        rob_entries=rng.choice((32, 64)) * num_threads,
        iq_entries=rng.choice((16, 32)),
        lq_entries=16 * num_threads,
        sq_entries=16 * num_threads,
        shelf_entries=shelf,
        steering=steering if shelf else "iq-only",
        shelf_same_cycle_issue=rng.random() < 0.5,
        dual_ssr=rng.random() < 0.75,
        memory_model=rng.choice(("relaxed", "relaxed", "tso")),
        fetch_policy=rng.choice(("icount", "round-robin")),
        hierarchy=HierarchyConfig(
            mem_latency=rng.choice((60, 200, 450)),
            l1d_mshrs=rng.choice((2, 16)),
        ),
    )


@pytest.mark.parametrize("trial", range(8))
def test_random_configs_bit_identical(trial):
    rng = random.Random(1000 + trial)
    cfg = _random_config(rng)
    length = rng.randrange(200, 401)
    traces = [generate(rng.choice(_WORKLOADS), length, seed=trial * 7 + tid)
              for tid in range(cfg.num_threads)]
    _run_pair(cfg, traces, stop=rng.choice(("all", "first")))


def test_latency_bound_run_actually_fast_forwards():
    # pchase.mem is miss-dominated: the vast majority of cycles are idle
    # and must be jumped, not stepped.
    cfg = CoreConfig(num_threads=1)
    traces = [generate("pchase.mem", 300, 0)]
    fast, _ = _run_pair(cfg, traces)
    assert fast.ff_jumps > 0
    assert fast.ff_skipped_cycles > fast.cycle // 2, \
        f"only {fast.ff_skipped_cycles}/{fast.cycle} cycles skipped"


def test_smt_shelf_config_bit_identical():
    # The paper's interesting configuration: SMT + shelf + practical
    # steering, where RCT countdown batching must replay exactly.
    cfg = CoreConfig(num_threads=2, shelf_entries=32, steering="practical")
    traces = [generate("pchase.mem", 250, 0), generate("mixed.int", 250, 1)]
    _run_pair(cfg, traces, stop="first")


def test_warmup_reset_bit_identical():
    cfg = CoreConfig(num_threads=1, shelf_entries=16, steering="oracle")
    traces = [generate("pchase.l2", 300, 3)]
    fast = Pipeline(cfg, traces, record_schedule=True, fastforward=True)
    r_fast = fast.run(stop="all", warmup_instructions=100)
    ref = Pipeline(cfg, traces, record_schedule=True, fastforward=False)
    r_ref = ref.run(stop="all", warmup_instructions=100)
    assert pickle.dumps(r_fast) == pickle.dumps(r_ref)


def test_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_FASTFORWARD", "0")
    assert not fastforward_enabled()
    cfg = CoreConfig(num_threads=1)
    pipe = Pipeline(cfg, [generate("ilp.int8", 50, 0)])
    assert not pipe.fastforward
    # The explicit constructor argument wins over the environment.
    pipe = Pipeline(cfg, [generate("ilp.int8", 50, 0)], fastforward=True)
    assert pipe.fastforward
    monkeypatch.delenv("REPRO_FASTFORWARD")
    assert fastforward_enabled()


def test_long_dram_stall_is_not_a_deadlock():
    # Satellite regression: a legitimate stall longer than DEADLOCK_WINDOW
    # (a 60k-cycle DRAM access) must complete in BOTH modes — the detector
    # now distinguishes scheduled-progress stalls from true deadlocks.
    hier = HierarchyConfig(mem_latency=60_000)
    cfg = CoreConfig(num_threads=1, hierarchy=hier)
    assert hier.mem_latency > Pipeline.DEADLOCK_WINDOW
    traces = [generate("pchase.mem", 8, 0)]
    for ff in (True, False):
        pipe = Pipeline(cfg, traces, fastforward=ff)
        result = pipe.run(stop="all", max_cycles=5_000_000)
        assert result.threads[0].retired == 8


def test_max_cycles_still_enforced_under_fast_forward():
    cfg = CoreConfig(num_threads=1)
    pipe = Pipeline(cfg, [generate("pchase.mem", 2000, 0)], fastforward=True)
    with pytest.raises(DeadlockError):
        pipe.run(max_cycles=50)


def test_final_invariants_hold_after_fast_forward():
    cfg = CoreConfig(num_threads=2, shelf_entries=32, steering="practical")
    traces = [generate("gather.small", 200, 0),
              generate("serial.memdep", 200, 1)]
    pipe = Pipeline(cfg, traces, fastforward=True)
    pipe.run(stop="all")
    pipe.check_final_invariants()
