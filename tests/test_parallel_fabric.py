"""Tests for the parallel simulation fabric and the persistent store.

Covers: content digests, store round-trips and corruption tolerance,
job-count resolution, serial-vs-parallel campaign determinism,
resume-after-interrupt, zero-simulation replay from the store, and the
two-level cache statistics.
"""

import json
import pickle

import pytest

from repro.core.pipeline import Pipeline
from repro.harness import cache as hcache
from repro.harness import runner
from repro.harness.cache import ResultStore, point_digest
from repro.harness.campaign import Campaign, CampaignPoint, standard_campaign
from repro.harness.configs import base64_config, shelf_config
from repro.harness.executor import resolve_jobs, run_points, simulate_point

MIXES = [("ilp.int8", "serial.alu"), ("branchy.easy", "gather.small")]


@pytest.fixture
def isolated_store(tmp_path, monkeypatch):
    """Point the persistent store at a fresh directory (workers inherit
    the env var) and reset both cache levels around the test."""
    store_dir = tmp_path / "store"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(store_dir))
    runner.clear_cache()
    yield store_dir
    runner.clear_cache()


def small_campaign(path, configs=None):
    configs = configs or {"Base64": base64_config(2),
                          "Shelf": shelf_config(2, shelf_entries=32)}
    return standard_campaign(path, MIXES, 200, configs=configs)


def strip_elapsed(records):
    return {key: {k: v for k, v in rec.items() if k != "elapsed_s"}
            for key, rec in records.items()}


class TestDigest:
    def test_stable_across_equal_configs(self, isolated_store):
        a = point_digest(base64_config(2), ("ilp.int8",), 200, 0, "all")
        b = point_digest(base64_config(2), ("ilp.int8",), 200, 0, "all")
        assert a == b and len(a) == 64

    def test_sensitive_to_every_input(self, isolated_store):
        base = point_digest(base64_config(2), ("ilp.int8",), 200, 0, "all")
        assert point_digest(shelf_config(2, shelf_entries=32),
                            ("ilp.int8",), 200, 0, "all") != base
        assert point_digest(base64_config(2), ("serial.alu",),
                            200, 0, "all") != base
        assert point_digest(base64_config(2), ("ilp.int8",),
                            300, 0, "all") != base
        assert point_digest(base64_config(2), ("ilp.int8",),
                            200, 1, "all") != base
        assert point_digest(base64_config(2), ("ilp.int8",),
                            200, 0, "first") != base


class TestResultStore:
    def test_roundtrip(self, tmp_path, isolated_store):
        store = ResultStore(tmp_path / "s")
        cfg = base64_config(2)
        result = simulate_point(cfg, MIXES[0], 200, 0, "first")
        digest = point_digest(cfg, MIXES[0], 200, 0, "first")
        assert store.get(digest) is None and store.misses == 1
        store.put(digest, result)
        loaded = store.get(digest)
        assert store.hits == 1
        assert loaded.cycles == result.cycles
        assert loaded.events.as_dict() == result.events.as_dict()

    def test_corrupt_entry_discarded(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        digest = "ab" + "0" * 62
        path = store._path(digest)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert store.get(digest) is None
        assert store.errors == 1
        assert not path.exists()  # bad entry deleted

    def test_wrong_type_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        digest = "cd" + "0" * 62
        path = store._path(digest)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "a SimResult"}))
        assert store.get(digest) is None
        assert store.errors == 1

    def test_clear_and_len(self, tmp_path, isolated_store):
        store = ResultStore(tmp_path / "s")
        result = simulate_point(base64_config(2), MIXES[0], 200, 0, "first")
        store.put("ef" + "0" * 62, result)
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0 and store.evictions == 1

    def test_disabled_by_env(self, monkeypatch):
        for value in ("", "off", "0", "none"):
            monkeypatch.setenv("REPRO_CACHE_DIR", value)
            hcache.reset_store()
            assert hcache.get_store() is None
        hcache.reset_store()


class TestResolveJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        assert resolve_jobs(2) == 2  # explicit argument wins

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()


class TestParallelDeterminism:
    def test_parallel_matches_serial(self, tmp_path, monkeypatch):
        # Separate stores so the parallel run cannot trivially replay the
        # serial run's results — it must simulate everything itself.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        runner.clear_cache()
        serial = small_campaign(tmp_path / "serial.jsonl").run(jobs=1)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        runner.clear_cache()
        parallel = small_campaign(tmp_path / "par.jsonl").run(jobs=4)
        assert strip_elapsed(serial) == strip_elapsed(parallel)
        runner.clear_cache()

    def test_run_points_yields_every_index(self, isolated_store):
        cfg = base64_config(2)
        specs = [(cfg, mix, 200, seed, "first")
                 for seed, mix in enumerate(MIXES)]
        seen = {i for i, _, _ in run_points(specs, jobs=2)}
        assert seen == {0, 1}

    def test_resume_completes_only_missing(self, tmp_path, isolated_store):
        path = tmp_path / "c.jsonl"
        full = small_campaign(path)
        # interrupt: only the first point was checkpointed
        Campaign(path, full.points[:1]).run()
        assert len(path.read_text().strip().splitlines()) == 1
        before = path.read_text()
        resumed = small_campaign(path)
        assert len(resumed.pending) == len(full.points) - 1
        resumed.run(jobs=2)
        after = path.read_text()
        assert after.startswith(before)  # completed point not re-run
        assert len(after.strip().splitlines()) == len(full.points)
        assert resumed.pending == []


class TestCorruptCheckpoint:
    def test_truncated_trailing_line_tolerated(self, tmp_path,
                                               isolated_store):
        path = tmp_path / "c.jsonl"
        camp = small_campaign(path)
        camp.run()
        # simulate a crash mid-write of the next record
        with path.open("a") as fh:
            fh.write('{"key": "half-written')
        reloaded = small_campaign(path)
        assert len(reloaded.records) == len(camp.points)
        assert reloaded.pending == []

    def test_corrupt_line_point_reruns(self, tmp_path, isolated_store):
        path = tmp_path / "c.jsonl"
        camp = small_campaign(path)
        camp.run()
        lines = path.read_text().strip().splitlines()
        # corrupt the last record: its point must become pending again
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:25] + "\n")
        reloaded = small_campaign(path)
        assert len(reloaded.pending) == 1
        reloaded.run()
        assert reloaded.pending == []

    def test_append_after_truncation_does_not_merge(self, tmp_path,
                                                    isolated_store):
        path = tmp_path / "c.jsonl"
        full = small_campaign(path)
        Campaign(path, full.points[:1]).run()
        # crash mid-write: partial record, no trailing newline
        with path.open("a") as fh:
            fh.write('{"key": "half-writ')
        resumed = small_campaign(path)
        resumed.run()
        # the first record appended on resume must not have merged into
        # the partial line — a fresh reload sees every point completed
        assert small_campaign(path).pending == []

    def test_blank_lines_ignored(self, tmp_path, isolated_store):
        path = tmp_path / "c.jsonl"
        camp = small_campaign(path)
        camp.run()
        path.write_text(path.read_text() + "\n\n")
        assert small_campaign(path).pending == []


class TestPersistentReplay:
    def test_second_invocation_runs_no_pipelines(self, tmp_path,
                                                 isolated_store,
                                                 monkeypatch):
        small_campaign(tmp_path / "first.jsonl").run()
        runner.clear_cache()  # drop the in-process memo, keep the disk store

        def boom(self, stop="all"):
            raise AssertionError("Pipeline.run called despite warm store")
        monkeypatch.setattr(Pipeline, "run", boom)
        records = small_campaign(tmp_path / "second.jsonl").run()
        assert len(records) == 4
        stats = runner.cache_stats()
        assert stats["disk_hits"] == 4 and stats["disk_misses"] == 0

    def test_memoized_runner_replays_from_store(self, isolated_store,
                                                monkeypatch):
        first = runner.run_mix(base64_config(2), MIXES[0], 200, 0)
        runner.clear_cache()
        monkeypatch.setattr(Pipeline, "run", lambda self, stop="all": (
            (_ for _ in ()).throw(AssertionError("simulated twice"))))
        again = runner.run_mix(base64_config(2), MIXES[0], 200, 0)
        assert again.cycles == first.cycles


class TestCacheStats:
    def test_two_level_counters(self, isolated_store):
        cfg = base64_config(2)
        runner.run_mix(cfg, MIXES[0], 200, 0)
        stats = runner.cache_stats()
        assert stats["memo_misses"] == 1 and stats["disk_misses"] == 1
        runner.run_mix(cfg, MIXES[0], 200, 0)
        stats = runner.cache_stats()
        assert stats["memo_hits"] == 1
        assert stats["memo_size"] == 1

    def test_clear_cache_resets_both(self, isolated_store):
        runner.run_mix(base64_config(2), MIXES[0], 200, 0)
        assert runner._CACHE
        store_before = hcache.get_store()
        runner.clear_cache()
        assert not runner._CACHE
        assert runner.cache_stats()["memo_misses"] == 0
        # the handle was dropped: next access builds a fresh one
        assert hcache.get_store() is not store_before

    def test_clear_cache_disk_wipes_store(self, isolated_store):
        runner.run_mix(base64_config(2), MIXES[0], 200, 0)
        assert len(hcache.get_store()) == 1
        runner.clear_cache(disk=True)
        assert len(hcache.get_store()) == 0

    def test_prefill_seeds_memo(self, isolated_store):
        cfg = base64_config(2)
        points = [(cfg, mix, 200, seed, "first")
                  for seed, mix in enumerate(MIXES)]
        assert runner.prefill(points) == 2
        assert runner.prefill(points) == 0  # everything already memoized
        runner.run_mix(cfg, MIXES[0], 200, 0)
        assert runner.cache_stats()["memo_hits"] == 1
