"""Tests for the L1D prefetchers."""

import pytest

from repro.core import CoreConfig, simulate
from repro.memory import HierarchyConfig, MemoryHierarchy
from repro.memory.prefetch import (NextLinePrefetcher, StridePrefetcher,
                                   make_prefetcher)
from repro.trace import generate


class TestNextLine:
    def test_prefetches_successor(self):
        p = NextLinePrefetcher()
        assert p.on_miss(100) == [101]
        assert p.on_hit(100) == []

    def test_degree(self):
        p = NextLinePrefetcher(degree=3)
        assert p.on_miss(10) == [11, 12, 13]


class TestStride:
    def test_learns_unit_stride(self):
        p = StridePrefetcher(degree=2, confirm=2)
        assert p.on_miss(100) == []       # allocate
        assert p.on_miss(101) == []       # stride guessed, conf 1
        out = p.on_miss(102)              # confirmed
        assert out == [103, 104]

    def test_learns_negative_stride(self):
        p = StridePrefetcher(degree=1, confirm=2)
        p.on_miss(200)
        p.on_miss(198)
        assert p.on_miss(196) == [194]

    def test_random_misses_never_confirm(self):
        p = StridePrefetcher()
        import random
        rng = random.Random(1)
        for _ in range(50):
            assert p.on_miss(rng.randrange(1 << 20)) == []

    def test_table_capacity_bounded(self):
        p = StridePrefetcher(streams=2)
        for i in range(10):
            p.on_miss(i * 1000)
        assert len(p._table) <= 2


class TestFactory:
    def test_known_names(self):
        assert make_prefetcher("none") is None
        assert isinstance(make_prefetcher("next-line"), NextLinePrefetcher)
        assert isinstance(make_prefetcher("stride"), StridePrefetcher)
        with pytest.raises(ValueError):
            make_prefetcher("oracle-prefetch")


class TestHierarchyIntegration:
    def test_sequential_stream_benefits(self):
        base = MemoryHierarchy(HierarchyConfig())
        pf = MemoryHierarchy(HierarchyConfig(l1d_prefetch="next-line"))
        for h in (base, pf):
            for i in range(256):
                h.access_data(0x100000 + i * 64, False, i * 300)
        assert pf.l1d.stats.misses < base.l1d.stats.misses
        assert pf.prefetches_useful > 100

    def test_useful_counter_requires_demand_touch(self):
        pf = MemoryHierarchy(HierarchyConfig(l1d_prefetch="next-line"))
        pf.access_data(0x100000, False, 0)
        assert pf.prefetches_issued == 1
        assert pf.prefetches_useful == 0
        pf.access_data(0x100040, False, 300)  # the prefetched line
        assert pf.prefetches_useful == 1

    def test_stats_exposed(self):
        pf = MemoryHierarchy(HierarchyConfig(l1d_prefetch="stride"))
        pf.access_data(0x1000, False, 0)
        s = pf.stats()
        assert "prefetches_issued" in s and "prefetches_useful" in s

    def test_reset_clears_prefetch_state(self):
        pf = MemoryHierarchy(HierarchyConfig(l1d_prefetch="next-line"))
        pf.access_data(0x1000, False, 0)
        pf.reset()
        assert pf.prefetches_issued == 0
        assert not pf._prefetched_lines


class TestEndToEnd:
    def test_stream_workload_speeds_up(self):
        tr = generate("stream.copy", 1500, 0)
        base = simulate(CoreConfig(num_threads=1), [tr], stop="all")
        pf = simulate(CoreConfig(
            num_threads=1,
            hierarchy=HierarchyConfig(l1d_prefetch="stride")),
            [tr], stop="all")
        assert pf.cycles < base.cycles
        assert pf.cache_stats["prefetches_useful"] > 0

    def test_pointer_chase_unaffected_by_stride_prefetch(self):
        tr = generate("pchase.mem", 600, 0)
        base = simulate(CoreConfig(num_threads=1), [tr], stop="all")
        pf = simulate(CoreConfig(
            num_threads=1,
            hierarchy=HierarchyConfig(l1d_prefetch="stride")),
            [tr], stop="all")
        # random chase: no streams to learn, within a few percent.
        assert abs(pf.cycles - base.cycles) < 0.05 * base.cycles

    def test_prefetch_composes_with_shelf(self):
        tr = generate("stream.add", 1000, 0)
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="practical",
                         hierarchy=HierarchyConfig(l1d_prefetch="stride"))
        from repro.core import Pipeline
        pipe = Pipeline(cfg, [tr])
        res = pipe.run(stop="all")
        assert res.threads[0].retired == 1000
        pipe.check_final_invariants()
