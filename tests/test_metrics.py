"""Unit tests for performance metrics and classification analysis."""

import math

import pytest

from repro.core.stats import EventCounts, SimResult, ThreadResult
from repro.metrics import (
    SeriesDistribution,
    antt,
    fairness,
    geomean,
    insequence_fraction,
    per_thread_insequence,
    series_lengths,
    stp,
    weighted_cdf,
)


def make_result(cpis, flags=None, benchmarks=None):
    threads = []
    for i, cpi in enumerate(cpis):
        fl = bytearray(flags[i]) if flags else bytearray()
        threads.append(ThreadResult(
            tid=i, benchmark=benchmarks[i] if benchmarks else f"b{i}",
            trace_length=len(fl), retired=len(fl), cpi=cpi,
            finish_cycle=None, insequence_flags=fl))
    return SimResult(config_label="test", cycles=100, threads=threads,
                     events=EventCounts(), cache_stats={},
                     steering_stats={}, occupancy={}, bpred_accuracy=1.0)


class TestSTP:
    def test_single_thread_self_reference_is_one(self):
        res = make_result([2.0])
        assert stp(res, [2.0]) == pytest.approx(1.0)

    def test_sum_of_ratios(self):
        res = make_result([2.0, 4.0])
        # thread 0 runs at half its solo speed, thread 1 at full speed.
        assert stp(res, [1.0, 4.0]) == pytest.approx(0.5 + 1.0)

    def test_bounded_by_thread_count(self):
        res = make_result([1.0, 1.0, 1.0, 1.0])
        assert stp(res, [1.0] * 4) <= 4.0 + 1e-9

    def test_starved_thread_contributes_zero(self):
        res = make_result([float("inf"), 2.0])
        assert stp(res, [1.0, 2.0]) == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        res = make_result([1.0])
        with pytest.raises(ValueError):
            stp(res, [1.0, 2.0])


class TestCompanionMetrics:
    def test_antt_mean_slowdown(self):
        res = make_result([2.0, 6.0])
        assert antt(res, [1.0, 2.0]) == pytest.approx((2.0 + 3.0) / 2)

    def test_fairness_perfect(self):
        res = make_result([2.0, 4.0])
        assert fairness(res, [2.0, 4.0]) == pytest.approx(1.0)

    def test_fairness_imbalanced(self):
        res = make_result([2.0, 8.0])
        assert fairness(res, [2.0, 2.0]) == pytest.approx(0.25)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([2.0, 0.0]) == pytest.approx(2.0)  # ignores <= 0


class TestClassification:
    def test_fraction_ignores_unknown(self):
        res = make_result([1.0], flags=[[1, 0, 2, 1]])
        assert insequence_fraction(res) == pytest.approx(2 / 3)

    def test_fraction_empty(self):
        res = make_result([1.0], flags=[[2, 2]])
        assert insequence_fraction(res) == 0.0

    def test_per_thread(self):
        res = make_result([1.0, 1.0], flags=[[1, 1], [0, 0]],
                          benchmarks=["a", "b"])
        assert per_thread_insequence(res) == [("a", 1.0), ("b", 0.0)]

    def test_series_lengths(self):
        res = make_result([1.0], flags=[[1, 1, 0, 0, 0, 1, 2]])
        lens = series_lengths(res.threads[0])
        assert lens["in_sequence"] == [2, 1]
        assert lens["reordered"] == [3]

    def test_series_lengths_empty(self):
        res = make_result([1.0], flags=[[]])
        lens = series_lengths(res.threads[0])
        assert lens == {"in_sequence": [], "reordered": []}


class TestSeriesDistribution:
    def test_weighted_cdf_values(self):
        # series lengths 1 and 3: of 4 instructions, 1 lives in a length-1
        # series -> cdf(1) = 0.25, cdf(3) = 1.0.
        d = SeriesDistribution([1, 3])
        assert d.cdf_at(1) == pytest.approx(0.25)
        assert d.cdf_at(2) == pytest.approx(0.25)
        assert d.cdf_at(3) == pytest.approx(1.0)

    def test_percentile(self):
        d = SeriesDistribution([1] * 99 + [100])
        assert d.percentile_length(0.49) == 1
        assert d.percentile_length(0.999) == 100

    def test_mean_weighted(self):
        d = SeriesDistribution([1, 3])
        # instruction-weighted mean: (1*1 + 3*3) / 4
        assert d.mean_weighted() == pytest.approx(2.5)

    def test_empty(self):
        d = SeriesDistribution([])
        assert d.cdf_at(10) == 0.0
        assert d.percentile_length(0.99) == 0
        assert d.mean_weighted() == 0.0

    def test_pooling_across_results(self):
        r1 = make_result([1.0], flags=[[1, 1, 0]])
        r2 = make_result([1.0], flags=[[0, 1]])
        dists = weighted_cdf([r1, r2])
        assert sorted(dists["in_sequence"].lengths) == [1, 2]
        assert sorted(dists["reordered"].lengths) == [1, 1]
