"""Unit tests for CoreConfig validation and derived properties."""

import pytest

from repro.core.config import CoreConfig
from repro.isa.instruction import NUM_ARCH_REGS


class TestValidation:
    def test_defaults_are_table1(self):
        cfg = CoreConfig()
        assert cfg.num_threads == 4
        assert cfg.rob_entries == 64
        assert cfg.clock_ghz == 2.0

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(num_threads=0)

    def test_partition_divisibility_enforced(self):
        with pytest.raises(ValueError):
            CoreConfig(num_threads=3)  # 64 ROB not divisible by 3
        with pytest.raises(ValueError):
            CoreConfig(num_threads=4, lq_entries=30)

    def test_shelf_must_split_evenly(self):
        with pytest.raises(ValueError):
            CoreConfig(num_threads=4, shelf_entries=50,
                       steering="practical")

    def test_shelf_partition_power_of_two(self):
        with pytest.raises(ValueError):
            CoreConfig(num_threads=4, shelf_entries=24,
                       steering="practical")  # 6 per thread
        CoreConfig(num_threads=4, shelf_entries=32, steering="practical")

    def test_steering_requires_shelf(self):
        with pytest.raises(ValueError):
            CoreConfig(num_threads=4, steering="practical")  # no shelf

    def test_unknown_steering_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(num_threads=4, shelf_entries=64,
                       steering="vibes")

    def test_unknown_memory_model_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(num_threads=1, memory_model="sc")


class TestDerived:
    def test_partition_sizes(self):
        cfg = CoreConfig(num_threads=4, shelf_entries=64,
                         steering="practical")
        assert cfg.rob_per_thread == 16
        assert cfg.lq_per_thread == cfg.sq_per_thread == 8
        assert cfg.shelf_per_thread == 16

    def test_prf_sizing(self):
        cfg = CoreConfig(num_threads=4)
        assert cfg.prf_entries == NUM_ARCH_REGS * 4 + 64
        bigger = CoreConfig(num_threads=4, rob_entries=128, iq_entries=64,
                            lq_entries=64, sq_entries=64)
        assert bigger.prf_entries == NUM_ARCH_REGS * 4 + 128

    def test_prf_extra_override(self):
        cfg = CoreConfig(num_threads=1, prf_extra=100)
        assert cfg.prf_entries == NUM_ARCH_REGS + 100

    def test_ext_tags_cover_indices_and_live_mappings(self):
        cfg = CoreConfig(num_threads=4, shelf_entries=64,
                         steering="practical")
        assert cfg.ext_tags == 2 * 64 + NUM_ARCH_REGS * 4
        assert CoreConfig(num_threads=4).ext_tags == 0

    def test_with_threads_rescales(self):
        cfg = CoreConfig(num_threads=4, shelf_entries=64,
                         steering="practical")
        one = cfg.with_threads(1)
        assert one.num_threads == 1
        assert one.shelf_entries == 64  # totals stay; partitions follow
        assert one.shelf_per_thread == 64

    def test_labels(self):
        assert CoreConfig(num_threads=4).label() == "Base64"
        cfg = CoreConfig(num_threads=4, shelf_entries=64,
                         steering="practical",
                         shelf_same_cycle_issue=True)
        assert "Shelf64" in cfg.label() and "opt" in cfg.label()

    def test_hashable_for_run_cache(self):
        a = CoreConfig(num_threads=4)
        b = CoreConfig(num_threads=4)
        assert hash(a) == hash(b) and a == b
        assert a != CoreConfig(num_threads=4, iq_entries=64)
