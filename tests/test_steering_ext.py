"""Unit tests for the steering extensions (coarse-grain, adaptive) and
the TSO memory-model support."""

import pytest

from repro.core import CoreConfig, Pipeline, simulate
from repro.core.lsq import LoadStoreQueues, StoreBuffer
from repro.core.steering import (IQOnlySteering, PracticalSteering,
                                 ShelfOnlySteering)
from repro.core.steering_ext import AdaptiveSteering, CoarseGrainSteering
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.trace import generate
from tests.test_lsq import _load, _store


def alu(pc=0x1000):
    return Instruction(op=OpClass.INT_ALU, dest=1, srcs=(2,), pc=pc,
                       next_pc=pc + 4)


class TestCoarseGrainSteering:
    def test_granularity_one_equals_base(self):
        base = ShelfOnlySteering()
        c = CoarseGrainSteering(base, 1, granularity=1)
        assert all(c.decide(0, alu(), i) for i in range(10))

    def test_blocks_apply_previous_majority(self):
        # Base alternates shelf/IQ; with granularity 4 the block majority
        # (2/4 -> shelf on ties) applies to the *next* block wholesale.
        class Alternating:
            name = "alt"
            def __init__(self):
                self.n = 0
            def decide(self, tid, instr, cycle):
                self.n += 1
                return self.n % 2 == 0
            def tick(self, c): ...
            def note_dispatched(self, d, c): ...
            def on_issue(self, d, c): ...
            def on_complete(self, d, c): ...
            def stats(self):
                return {}

        c = CoarseGrainSteering(Alternating(), 1, granularity=4)
        first_block = [c.decide(0, alu(), i) for i in range(4)]
        assert first_block == [False] * 4  # initial mode: IQ
        second_block = [c.decide(0, alu(), i) for i in range(4)]
        assert second_block == [True] * 4  # 2/4 shelf votes -> shelf mode

    def test_threads_have_independent_modes(self):
        c = CoarseGrainSteering(ShelfOnlySteering(), 2, granularity=2)
        c.decide(0, alu(), 0)
        c.decide(0, alu(), 0)  # thread 0 block complete -> shelf mode
        assert c.decide(0, alu(), 1) is True
        assert c.decide(1, alu(), 1) is False  # thread 1 still initial

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            CoarseGrainSteering(IQOnlySteering(), 1, granularity=0)

    def test_stats_include_granularity(self):
        c = CoarseGrainSteering(IQOnlySteering(), 1, granularity=16)
        c.decide(0, alu(), 0)
        assert c.stats()["granularity"] == 16.0

    def test_end_to_end(self):
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="practical")
        tr = generate("mixed.int", 600, 0)
        pipe = Pipeline(cfg, [tr])
        pipe.steering = CoarseGrainSteering(PracticalSteering(cfg), 1, 64)
        res = pipe.run(stop="all")
        assert res.threads[0].retired == 600
        pipe.check_final_invariants()


class TestAdaptiveSteering:
    def test_probe_cycle_disables_when_shelf_loses(self):
        # A base policy that always says shelf; completions are higher in
        # the probe-off epoch -> the thread gets locked to disabled.
        a = AdaptiveSteering(ShelfOnlySteering(), 1, epoch_cycles=10,
                             locked_epochs=2)
        assert a.decide(0, alu(), 0) is True  # probe-on
        a._completions[0] = 5
        a.tick(10)   # end probe-on epoch
        assert a._enabled[0] is False
        a._completions[0] = 9
        a.tick(20)   # end probe-off epoch: off wins
        assert a._enabled[0] is False
        assert a.decide(0, alu(), 21) is False
        assert a.disable_decisions == 1

    def test_reprobe_after_lock_expires(self):
        a = AdaptiveSteering(ShelfOnlySteering(), 1, epoch_cycles=10,
                             locked_epochs=1)
        a.tick(10)
        a.tick(20)
        a.tick(30)  # locked epoch passes
        a.tick(40)
        assert a._phase[0] in (a._PROBE_ON, a._PROBE_OFF)

    def test_end_to_end_never_catastrophic(self):
        # Adaptive steering bounds shelf damage on any workload.
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="practical")
        tr = generate("gather.stride", 1500, 0)
        base = simulate(CoreConfig(num_threads=1), [tr], stop="all")
        pipe = Pipeline(cfg, [tr])
        pipe.steering = AdaptiveSteering(PracticalSteering(cfg), 1,
                                         epoch_cycles=1500)
        res = pipe.run(stop="all")
        assert res.threads[0].retired == 1500
        assert res.cycles <= base.cycles * 1.15


class TestTSOMemoryModel:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(num_threads=1, memory_model="sequential-ish")

    def test_non_coalescing_buffer(self):
        b = StoreBuffer(4, coalesce=False)
        b.insert(0x100)
        b.insert(0x108)  # same line: still two entries under TSO
        assert b.occupancy == 2
        assert b.coalesced == 0
        assert b.contains(0x100)
        assert b.drain_one() == 0x100
        assert b.occupancy == 1

    def test_non_coalescing_capacity(self):
        b = StoreBuffer(2, coalesce=False)
        b.insert(0x100)
        b.insert(0x100)
        assert not b.can_accept(0x100)  # no coalescing escape hatch

    def test_incomplete_elder_load_tracking(self):
        q = LoadStoreQueues(8, 8, 4)
        ld = _load(0, 0, 0x100)
        q.dispatch_load(ld)
        assert q.has_incomplete_elder_load(5)
        ld.completed = True
        assert not q.has_incomplete_elder_load(5)

    def test_shelf_load_tracked_for_tso(self):
        q = LoadStoreQueues(8, 8, 4)
        ld = _load(0, 0, 0x100)
        q.dispatch_shelf_load(ld)
        assert q.lq_occupancy == 0  # no LQ entry
        assert q.has_incomplete_elder_load(5)

    def test_tso_runs_retire_everything(self):
        for steering, shelf in (("iq-only", 0), ("practical", 16)):
            cfg = CoreConfig(num_threads=1, shelf_entries=shelf,
                             steering=steering, memory_model="tso")
            pipe = Pipeline(cfg, [generate("mixed.store", 800, 0)])
            res = pipe.run(stop="all")
            assert res.threads[0].retired == 800
            pipe.check_final_invariants()

    def test_tso_shelf_stores_allocate_sq_entries(self):
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="shelf-only", memory_model="tso")
        pipe = Pipeline(cfg, [generate("mixed.store", 500, 0)])
        res = pipe.run(stop="all")
        assert res.events.sq_writes > 0  # shelf stores hit the SQ under TSO
        relaxed = Pipeline(CoreConfig(num_threads=1, shelf_entries=16,
                                      steering="shelf-only"),
                           [generate("mixed.store", 500, 0)]).run(stop="all")
        assert relaxed.events.sq_writes == 0

    def test_tso_at_four_threads(self):
        cfg = CoreConfig(num_threads=4, shelf_entries=64,
                         steering="practical", memory_model="tso")
        traces = [generate(b, 400, i) for i, b in enumerate(
            ["mixed.store", "gather.rmw", "stream.copy", "serial.alu"])]
        pipe = Pipeline(cfg, traces)
        res = pipe.run(stop="all")
        assert all(t.retired == 400 for t in res.threads)
        pipe.check_final_invariants()
