"""Tests for the golden-model memory-order auditor."""

import pytest

from repro.analysis.memcheck import (MemcheckReport, check_memory_order,
                                     golden_producers)
from repro.core import CoreConfig, Pipeline
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.trace import Trace, generate


def alu(dest, srcs, pc):
    return Instruction(op=OpClass.INT_ALU, dest=dest, srcs=srcs, pc=pc,
                       next_pc=pc + 4)


def load(dest, addr, pc, src=1):
    return Instruction(op=OpClass.LOAD, dest=dest, srcs=(src,), pc=pc,
                       next_pc=pc + 4, mem_addr=addr)


def store(addr, pc, srcs=(1, 2)):
    return Instruction(op=OpClass.STORE, dest=None, srcs=srcs, pc=pc,
                       next_pc=pc + 4, mem_addr=addr)


def forwarding_heavy_trace(reps=25):
    """Store then promptly load the same slot, with retirement pinned by a
    cold miss so forwarding (not the store buffer) must serve the load."""
    instrs = []
    pc = 0x1000
    for rep in range(reps):
        slot = 0x100 + (rep % 4) * 8
        instrs.append(load(9, 0x40000 + rep * 64, pc)); pc += 4  # pin
        instrs.append(store(slot, pc, srcs=(1, 2))); pc += 4
        instrs.append(alu(7, (7,), pc)); pc += 4
        instrs.append(load(3, slot, pc, src=7)); pc += 4
        instrs.append(alu(4, (3,), pc)); pc += 4
    return Trace("fwd-heavy", instrs)


def run_checked(trace, **cfg_kw):
    cfg_kw.setdefault("num_threads", 1)
    pipe = Pipeline(CoreConfig(**cfg_kw), [trace], record_schedule=True)
    pipe.run(stop="all")
    return pipe, check_memory_order(pipe)


class TestGoldenProducers:
    def test_basic_producer_chain(self):
        tr = Trace("t", [
            store(0x100, 0x1000),
            load(3, 0x100, 0x1004),
            store(0x100, 0x1008),
            load(4, 0x100, 0x100C),
        ])
        golden = golden_producers(tr)
        assert golden[1] == 0
        assert golden[3] == 2  # youngest earlier store wins

    def test_no_producer(self):
        tr = Trace("t", [load(3, 0x500, 0x1000)])
        assert golden_producers(tr)[0] is None

    def test_partial_overlap_counts(self):
        tr = Trace("t", [
            Instruction(op=OpClass.STORE, dest=None, srcs=(1, 2),
                        pc=0x1000, next_pc=0x1004, mem_addr=0x104,
                        mem_size=8),
            Instruction(op=OpClass.LOAD, dest=3, srcs=(1,), pc=0x1004,
                        next_pc=0x1008, mem_addr=0x100, mem_size=8),
        ])
        assert golden_producers(tr)[1] == 0


class TestAudit:
    def test_forwarding_heavy_kernel_is_clean_and_nontrivial(self):
        pipe, rep = run_checked(forwarding_heavy_trace())
        assert rep.ok, rep.format()
        assert rep.forwarded > 10  # the audit actually saw forwarding

    @pytest.mark.parametrize("steering,shelf", [("practical", 16),
                                                ("shelf-only", 16)])
    def test_shelf_paths_are_clean(self, steering, shelf):
        pipe, rep = run_checked(forwarding_heavy_trace(),
                                shelf_entries=shelf, steering=steering)
        assert rep.ok, rep.format()
        assert rep.loads_checked == 50

    def test_generated_workloads_are_clean(self):
        for name in ("gather.rmw", "mixed.store"):
            pipe = Pipeline(CoreConfig(num_threads=1),
                            [generate(name, 800, 0)],
                            record_schedule=True)
            pipe.run(stop="all")
            rep = check_memory_order(pipe)
            assert rep.ok, (name, rep.format())

    def test_violation_replay_leaves_correct_final_state(self):
        # A kernel that *will* violate once: the retired state must still
        # audit clean (the squash replays the load correctly).
        instrs = []
        pc = 0x1000
        instrs.append(load(2, 0x40000, pc)); pc += 4
        instrs.append(alu(2, (2,), pc)); pc += 4
        instrs.append(store(0x100, pc, srcs=(1, 2))); pc += 4
        instrs.append(load(4, 0x100, pc)); pc += 4
        pipe, rep = run_checked(Trace("viol", instrs))
        assert pipe.events.violations >= 1 or rep.forwarded >= 1
        assert rep.ok, rep.format()

    def test_requires_recording(self):
        pipe = Pipeline(CoreConfig(num_threads=1),
                        [generate("ilp.int8", 100, 0)])
        pipe.run(stop="all")
        with pytest.raises(ValueError):
            check_memory_order(pipe)


class TestAuditSensitivity:
    """The checker must actually detect corrupted decisions."""

    def test_detects_wrong_forwarding_source(self):
        pipe, rep = run_checked(forwarding_heavy_trace())
        assert rep.ok
        # Corrupt one record: claim a forward from a non-overlapping store.
        victim = next(r for r in pipe.instr_log
                      if r["op"] == "LOAD" and r["forwarded_seq"] is not None)
        victim["forwarded_seq"] = victim["forwarded_seq"] - 5  # the pin load
        rep2 = check_memory_order(pipe)
        assert not rep2.ok

    def test_detects_missed_forwarding(self):
        pipe, rep = run_checked(forwarding_heavy_trace())
        victim = next(r for r in pipe.instr_log
                      if r["op"] == "LOAD" and r["forwarded_seq"] is not None)
        victim["forwarded_seq"] = None  # pretend it read memory
        rep2 = check_memory_order(pipe)
        assert not rep2.ok

    def test_report_formatting(self):
        rep = MemcheckReport(loads_checked=3, forwarded=1, from_memory=2,
                             errors=["boom"])
        text = rep.format()
        assert "ERROR" in text and "boom" in text
        clean = MemcheckReport(loads_checked=3)
        assert "OK" in clean.format()
