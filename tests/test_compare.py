"""Tests for the result-comparison report and multi-thread property
tests on random programs."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import compare_results
from repro.core import CoreConfig, Pipeline, simulate
from repro.harness.configs import base64_config, shelf_config
from repro.trace import Trace, generate
from tests.test_properties import random_program


class TestCompareResults:
    @pytest.fixture(scope="class")
    def pair(self):
        traces = [generate("mixed.int", 800, 0)]
        base = simulate(base64_config(1), traces, stop="all")
        cand = simulate(shelf_config(1, shelf_entries=16), traces,
                        stop="all")
        return base, cand

    def test_speedup_and_cycles(self, pair):
        base, cand = pair
        cmp = compare_results(base, cand)
        assert cmp.cycles == (base.cycles, cand.cycles)
        assert cmp.speedup == pytest.approx(base.cycles / cand.cycles)

    def test_thread_rows_match_benchmarks(self, pair):
        cmp = compare_results(*pair)
        assert cmp.thread_cpi[0][0] == "mixed.int"

    def test_event_deltas_sorted_by_magnitude(self, pair):
        cmp = compare_results(*pair)
        rels = [abs(r) if r != float("inf") else 10.0
                for _, _, _, r in cmp.event_deltas]
        assert rels == sorted(rels, reverse=True)

    def test_shelf_events_appear_as_new(self, pair):
        cmp = compare_results(*pair)
        names = {d[0] for d in cmp.event_deltas}
        assert "shelf_issues" in names

    def test_mismatched_workloads_rejected(self, pair):
        base, _ = pair
        other = simulate(base64_config(1),
                         [generate("ilp.int8", 300, 0)], stop="all")
        with pytest.raises(ValueError):
            compare_results(base, other)

    def test_format_readable(self, pair):
        text = compare_results(*pair).format()
        assert "speedup" in text and "per-thread CPI" in text
        assert "mixed.int" in text


class TestSMTRandomPrograms:
    """Multi-thread invariants on random programs."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(random_program(max_len=60), random_program(max_len=60))
    def test_two_threads_retire_everything(self, tr_a, tr_b):
        cfg = CoreConfig(num_threads=2, shelf_entries=16,
                         steering="practical")
        pipe = Pipeline(cfg, [tr_a, tr_b])
        res = pipe.run(stop="all")
        assert res.threads[0].retired == len(tr_a)
        assert res.threads[1].retired == len(tr_b)
        pipe.check_final_invariants()

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(random_program(max_len=60))
    def test_homogeneous_pair_shares_nothing_architectural(self, tr):
        # Two copies of one program must both complete with identical
        # retired counts; their interleaving cannot corrupt either.
        cfg = CoreConfig(num_threads=2, shelf_entries=16,
                         steering="practical")
        pipe = Pipeline(cfg, [tr, Trace("copy", list(tr))])
        res = pipe.run(stop="all")
        assert res.threads[0].retired == res.threads[1].retired == len(tr)
        pipe.check_final_invariants()

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(random_program(max_len=80))
    def test_tso_random_programs(self, tr):
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="practical", memory_model="tso")
        pipe = Pipeline(cfg, [tr])
        res = pipe.run(stop="all")
        assert res.threads[0].retired == len(tr)
        pipe.check_final_invariants()
