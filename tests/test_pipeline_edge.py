"""Edge-case integration tests: resource exhaustion, squash interactions,
ordering corner cases."""

import pytest

from repro.core import CoreConfig, Pipeline, simulate
from repro.core.stats import SimResult
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.trace import Trace, generate


def alu(dest, srcs, pc):
    return Instruction(op=OpClass.INT_ALU, dest=dest, srcs=srcs, pc=pc,
                       next_pc=pc + 4)


def load(dest, addr, pc, src=1):
    return Instruction(op=OpClass.LOAD, dest=dest, srcs=(src,), pc=pc,
                       next_pc=pc + 4, mem_addr=addr)


def store(addr, pc, srcs=(1, 2)):
    return Instruction(op=OpClass.STORE, dest=None, srcs=srcs, pc=pc,
                       next_pc=pc + 4, mem_addr=addr)


class TestResourceExhaustion:
    def test_tiny_prf_stalls_but_completes(self):
        # Only 8 rename registers beyond the architectural state.
        cfg = CoreConfig(num_threads=1, prf_extra=8)
        res = simulate(cfg, [generate("ilp.int8", 600, 0)], stop="all")
        assert res.threads[0].retired == 600

    def test_one_entry_store_buffer(self):
        cfg = CoreConfig(num_threads=1, store_buffer_lines=1)
        res = simulate(cfg, [generate("mixed.store", 600, 0)], stop="all")
        assert res.threads[0].retired == 600

    def test_tiny_frontend_buffer(self):
        from dataclasses import replace
        cfg = replace(CoreConfig(num_threads=1),
                      frontend_buffer_per_thread=4)
        res = simulate(cfg, [generate("branchy.easy", 500, 0)], stop="all")
        assert res.threads[0].retired == 500

    def test_minimal_everything(self):
        cfg = CoreConfig(num_threads=1, rob_entries=4, iq_entries=4,
                         lq_entries=4, sq_entries=4, prf_extra=8,
                         shelf_entries=2, steering="practical",
                         store_buffer_lines=1)
        pipe = Pipeline(cfg, [generate("mixed.int", 500, 0)])
        res = pipe.run(stop="all")
        assert res.threads[0].retired == 500
        pipe.check_final_invariants()

    def test_narrow_widths(self):
        cfg = CoreConfig(num_threads=1, fetch_width=1, dispatch_width=1,
                         issue_width=1, retire_width=1)
        res = simulate(cfg, [generate("ilp.int8", 300, 0)], stop="all")
        assert res.threads[0].retired == 300
        assert res.ipc <= 1.0 + 1e-9

    def test_shelf_bigger_than_rob(self):
        cfg = CoreConfig(num_threads=1, rob_entries=8, iq_entries=8,
                         lq_entries=8, sq_entries=8, shelf_entries=64,
                         steering="practical")
        pipe = Pipeline(cfg, [generate("serial.alu", 600, 0)])
        res = pipe.run(stop="all")
        assert res.threads[0].retired == 600
        pipe.check_final_invariants()


class TestSquashCorners:
    def _violation_kernel(self, tail_ops):
        instrs = []
        pc = 0x1000
        instrs.append(load(2, 0x40000, pc)); pc += 4      # long miss
        for _ in range(3):
            instrs.append(alu(2, (2,), pc)); pc += 4
        instrs.append(store(0x100, pc, srcs=(1, 2))); pc += 4
        instrs.append(load(4, 0x100, pc)); pc += 4        # violates
        for _ in range(tail_ops):
            instrs.append(alu(5, (4, 5), pc)); pc += 4
        return Trace("viol", instrs)

    @pytest.mark.parametrize("steering,shelf", [("iq-only", 0),
                                                ("practical", 16),
                                                ("shelf-only", 16)])
    def test_violation_replay_under_every_policy(self, steering, shelf):
        cfg = CoreConfig(num_threads=1, shelf_entries=shelf,
                         steering=steering)
        tr = self._violation_kernel(10)
        pipe = Pipeline(cfg, [tr])
        res = pipe.run(stop="all")
        assert res.threads[0].retired == len(tr)
        pipe.check_final_invariants()

    def test_violation_with_branches_in_squash_window(self):
        instrs = []
        pc = 0x1000
        instrs.append(load(2, 0x40000, pc)); pc += 4
        instrs.append(alu(2, (2,), pc)); pc += 4
        instrs.append(store(0x100, pc, srcs=(1, 2))); pc += 4
        instrs.append(load(4, 0x100, pc)); pc += 4
        # a predictable branch inside the to-be-squashed region
        instrs.append(Instruction(op=OpClass.BRANCH, dest=None, srcs=(4,),
                                  pc=pc, next_pc=pc + 4, taken=False))
        pc += 4
        instrs.append(alu(5, (4,), pc)); pc += 4
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="practical")
        pipe = Pipeline(cfg, [Trace("vb", instrs)])
        res = pipe.run(stop="all")
        assert res.threads[0].retired == len(instrs)
        pipe.check_final_invariants()

    def test_repeated_violations_same_static_code(self):
        # Loop-style fixed PCs: after the first violation the store-set
        # predictor must keep the same static load waiting.  (With unique
        # PCs per instance no training could transfer — that behaviour is
        # correct and covered by the assertion being about *static* code.)
        instrs = []
        for rep in range(10):
            instrs.append(load(2, 0x40000 + rep * 128, 0x1000))
            instrs.append(alu(2, (2,), 0x1004))
            instrs.append(store(0x200, 0x1008, srcs=(1, 2)))
            instrs.append(load(4, 0x200, 0x100C))
        cfg = CoreConfig(num_threads=1)
        pipe = Pipeline(cfg, [Trace("rv", instrs)])
        res = pipe.run(stop="all")
        assert res.threads[0].retired == len(instrs)
        # store sets must have learned: far fewer squashes than conflicts
        assert res.events.violations <= 4
        pipe.check_final_invariants()

    def test_violation_squash_spanning_other_threads(self):
        # Thread 1 violates; thread 0 must be completely unaffected.
        instrs = []
        pc = 0x1000
        instrs.append(load(2, 0x40000, pc)); pc += 4
        instrs.append(alu(2, (2,), pc)); pc += 4
        instrs.append(store(0x100, pc, srcs=(1, 2))); pc += 4
        instrs.append(load(4, 0x100, pc)); pc += 4
        viol = Trace("viol", instrs * 20)
        clean = generate("ilp.int8", 80, 0)
        cfg = CoreConfig(num_threads=2)
        pipe = Pipeline(cfg, [clean, viol])
        res = pipe.run(stop="all")
        assert res.threads[0].retired == 80
        assert res.threads[1].retired == len(viol)
        pipe.check_final_invariants()


class TestOrderingCorners:
    def test_waw_through_shelf_sequence(self):
        # Multiple shelf writes to one register: each must wait for the
        # previous writer (same physical register!).
        instrs = [alu(2, (3,), 0x1000 + 4 * i) for i in range(12)]
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="shelf-only")
        pipe = Pipeline(cfg, [Trace("waw", instrs)],
                        record_schedule=True)
        pipe.run(stop="all")
        cycles = [c for c, *_ in pipe.issue_log]
        assert cycles == sorted(cycles)

    def test_store_feeds_shelf_load_in_order(self):
        instrs = []
        pc = 0x1000
        instrs.append(alu(2, (2,), pc)); pc += 4
        instrs.append(store(0x300, pc, srcs=(1, 2))); pc += 4
        instrs.append(load(4, 0x300, pc)); pc += 4
        instrs.append(alu(5, (4,), pc)); pc += 4
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="shelf-only")
        res = simulate(cfg, [Trace("sfl", instrs)], stop="all")
        assert res.threads[0].retired == 4
        assert res.events.violations == 0

    def test_barrier_with_shelf_in_flight(self):
        instrs = []
        pc = 0x1000
        instrs.append(load(2, 0x40000, pc)); pc += 4      # slow miss
        instrs.append(alu(3, (2,), pc)); pc += 4          # shelf candidate
        instrs.append(Instruction(op=OpClass.BARRIER, dest=None, srcs=(),
                                  pc=pc, next_pc=pc + 4)); pc += 4
        instrs.append(alu(4, (4,), pc)); pc += 4
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="practical")
        pipe = Pipeline(cfg, [Trace("bar", instrs)],
                        record_schedule=True)
        res = pipe.run(stop="all")
        assert res.threads[0].retired == 4
        cycles = {seq: c for c, _t, seq, _s in pipe.issue_log}
        assert cycles[3] > cycles[1]  # post-barrier op waited

    def test_div_mixed_with_shelf(self):
        instrs = []
        pc = 0x1000
        for i in range(40):
            if i % 5 == 0:
                instrs.append(Instruction(op=OpClass.FP_DIV, dest=6,
                                          srcs=(6,), pc=pc,
                                          next_pc=pc + 4))
            else:
                instrs.append(alu(2 + i % 3, (2 + i % 3,), pc))
            pc += 4
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="practical")
        pipe = Pipeline(cfg, [Trace("div", instrs)])
        res = pipe.run(stop="all")
        assert res.threads[0].retired == 40
        pipe.check_final_invariants()


class TestResultReporting:
    def test_summary_is_complete(self):
        res = simulate(CoreConfig(num_threads=1),
                       [generate("mixed.int", 300, 0)], stop="all")
        text = res.summary()
        assert "CPI" in text and "mixed.int" in text
        assert "IPC" in text

    def test_events_dict_roundtrip(self):
        res = simulate(CoreConfig(num_threads=1),
                       [generate("ilp.int8", 200, 0)], stop="all")
        d = res.events.as_dict()
        assert d["fetches"] >= 200
        assert set(d) == set(res.events.__dataclass_fields__)

    def test_occupancy_keys(self):
        res = simulate(CoreConfig(num_threads=1),
                       [generate("ilp.int8", 200, 0)], stop="all")
        assert set(res.occupancy) == {"rob", "iq", "shelf", "lq", "sq"}
        assert all(v >= 0 for v in res.occupancy.values())

    def test_thread_result_ipc(self):
        res = simulate(CoreConfig(num_threads=1),
                       [generate("ilp.int8", 200, 0)], stop="all")
        t = res.threads[0]
        assert t.ipc == pytest.approx(1.0 / t.cpi)
