"""The timing litmus battery: the machine model's basic arithmetic."""

import pytest

from repro.analysis.litmus import (
    LitmusReport,
    alu_chain_throughput,
    forwarding_latency,
    issue_width_ceiling,
    load_to_use_distance,
    mispredict_penalty,
    run_litmus,
)
from repro.core import CoreConfig


class TestLitmusValues:
    def test_alu_chain_is_one_cpi(self):
        assert alu_chain_throughput() == pytest.approx(1.0, abs=0.05)

    def test_load_to_use_is_two_cycles(self):
        # Paper Section III-D: minimum 2-cycle load-to-use for L1 hits.
        assert load_to_use_distance() == 2

    def test_forwarding_matches_l1_hit(self):
        assert forwarding_latency() == 2

    def test_peak_ipc_is_issue_width(self):
        assert issue_width_ceiling() == pytest.approx(4.0, abs=0.15)

    def test_mispredict_penalty_is_resolution_plus_refill(self):
        # branch latency (3) + fetch-to-dispatch (6) + handoff ~= 10.
        penalty = mispredict_penalty()
        assert 6.0 < penalty < 16.0

    def test_shelf_does_not_change_fundamental_latencies(self):
        cfg = CoreConfig(num_threads=1, shelf_entries=16,
                         steering="practical")
        assert load_to_use_distance(cfg) == 2
        assert alu_chain_throughput(cfg) == pytest.approx(1.0, abs=0.05)

    def test_narrow_core_has_lower_ceiling(self):
        narrow = CoreConfig(num_threads=1, issue_width=2)
        assert issue_width_ceiling(narrow) == pytest.approx(2.0, abs=0.1)

    def test_report_aggregates_everything(self):
        rep = run_litmus()
        assert isinstance(rep, LitmusReport)
        text = rep.format()
        assert "load-to-use" in text and "peak IPC" in text
