"""Flat-lane engine vs per-object pipeline equivalence oracle.

The structure-of-arrays hot loop (:mod:`repro.core.lanes`) must be
*bit-identical* to the per-object pipeline it shadows: same
:class:`SimResult` records byte for byte, same issue logs, same
per-instruction lifetime records, same final cycle — across steering
policies, memory models, SMT widths, fast-forward on/off, and with the
sanitizer watching.  These tests mirror
``tests/test_fastforward_equivalence.py`` one layer down: the object
pipeline (itself proven against the polling reference there) is the
reference here.
"""

import pickle
import random
from dataclasses import replace

import pytest

from repro.core.config import CoreConfig
from repro.core.lanes import lanes_enabled
from repro.core.pipeline import Pipeline
from repro.memory.hierarchy import HierarchyConfig
from repro.trace import generate


def _run_pair(cfg, traces, stop="all", fastforward=None, max_cycles=None):
    """Run lane-mode and object-mode pipelines over the same traces;
    assert byte-identical results and identical logs; return both."""
    lane = Pipeline(cfg, traces, record_schedule=True, lanes=True,
                    fastforward=fastforward)
    r_lane = lane.run(stop=stop, max_cycles=max_cycles)
    obj = Pipeline(cfg, traces, record_schedule=True, lanes=False,
                   fastforward=fastforward)
    r_obj = obj.run(stop=stop, max_cycles=max_cycles)

    assert lane.cycle == obj.cycle, \
        f"cycle count diverged: lanes {lane.cycle} vs object {obj.cycle}"
    assert lane.issue_log == obj.issue_log, "issue schedules diverged"
    assert lane.instr_log == obj.instr_log, "lifetime records diverged"
    assert pickle.dumps(r_lane) == pickle.dumps(r_obj), \
        "SimResult records are not byte-identical"
    assert r_lane.as_record() == r_obj.as_record(), \
        "as_record() output diverged"
    return lane, obj


#: Same workload roster as the fast-forward oracle: distinct idle and
#: occupancy shapes stress different inlined stage bodies.
_WORKLOADS = ("pchase.mem", "pchase.l2", "ilp.int8", "serial.memdep",
              "branchy.hard", "mixed.store", "gather.small", "serial.div")


def _random_config(rng):
    num_threads = rng.choice((1, 2))
    steering = rng.choice(("iq-only", "practical", "oracle", "shelf-only"))
    shelf = 0 if steering == "iq-only" and rng.random() < 0.5 \
        else rng.choice((16, 32)) * num_threads
    return CoreConfig(
        num_threads=num_threads,
        rob_entries=rng.choice((32, 64)) * num_threads,
        iq_entries=rng.choice((16, 32)),
        lq_entries=16 * num_threads,
        sq_entries=16 * num_threads,
        shelf_entries=shelf,
        steering=steering if shelf else "iq-only",
        shelf_same_cycle_issue=rng.random() < 0.5,
        dual_ssr=rng.random() < 0.75,
        memory_model=rng.choice(("relaxed", "relaxed", "tso")),
        fetch_policy=rng.choice(("icount", "round-robin")),
        hierarchy=HierarchyConfig(
            mem_latency=rng.choice((60, 200, 450)),
            l1d_mshrs=rng.choice((2, 16)),
        ),
    )


@pytest.mark.parametrize("trial", range(8))
def test_random_configs_bit_identical(trial):
    # Also randomizes fastforward on/off: the lane engine must match the
    # object pipeline in BOTH of its sub-modes (lanes x fastforward
    # cross-product), not just the default.
    rng = random.Random(5000 + trial)
    cfg = _random_config(rng)
    length = rng.randrange(200, 401)
    traces = [generate(rng.choice(_WORKLOADS), length, seed=trial * 7 + tid)
              for tid in range(cfg.num_threads)]
    _run_pair(cfg, traces, stop=rng.choice(("all", "first")),
              fastforward=rng.random() < 0.5)


@pytest.mark.parametrize("workload", ("ilp.int8", "pchase.mem",
                                      "branchy.hard", "mixed.store"))
def test_directed_workloads_bit_identical(workload):
    cfg = CoreConfig(num_threads=1, shelf_entries=16, steering="practical")
    _run_pair(cfg, [generate(workload, 600, 0)])


def test_scaled_window_bit_identical():
    # The configuration BENCH_simspeed.json reports the compute-bound
    # lane speedup on: a deep single-thread window where the object
    # pipeline's whole-IQ rescan is at its most expensive.
    cfg = CoreConfig(num_threads=1, rob_entries=512, iq_entries=256,
                     lq_entries=64, sq_entries=64)
    _run_pair(cfg, [generate("ilp.int8", 1500, 7)])


def test_smt_shelf_config_bit_identical():
    # The paper's interesting configuration: SMT + shelf + practical
    # steering, where shelf FIFOs, SSR segments, and the issue-tracking
    # bitvectors all see traffic.
    cfg = CoreConfig(num_threads=2, shelf_entries=32, steering="practical")
    traces = [generate("pchase.mem", 250, 0), generate("mixed.int", 250, 1)]
    _run_pair(cfg, traces, stop="first")


def test_sanitizer_on_bit_identical():
    # The sanitizer is observational: with it watching every cycle of
    # both loops, the runs must still agree byte for byte (and any lane
    # bookkeeping divergence would raise a SanitizerError outright).
    for steering in ("practical", "shelf-only", "iq-only"):
        for model in ("relaxed", "tso"):
            cfg = CoreConfig(num_threads=2, sanitize=True,
                             memory_model=model,
                             shelf_entries=0 if steering == "iq-only"
                             else 32,
                             steering=steering)
            traces = [generate("mixed.store", 200, 0),
                      generate("gather.small", 200, 1)]
            _run_pair(cfg, traces, stop="first")


def test_squash_stress_bit_identical():
    # branchy.hard at 2 threads maximizes recovery traffic: squashes
    # must rebuild the ready sets, wakeup heap, and IQ position lane
    # exactly as the object pipeline rebuilds its structures.
    cfg = CoreConfig(num_threads=2, shelf_entries=32, steering="practical",
                     fetch_policy="round-robin")
    traces = [generate("branchy.hard", 400, 0),
              generate("branchy.flip", 400, 1)]
    _run_pair(cfg, traces, stop="all")


def test_lane_growth_past_one_chunk():
    # Lanes allocate in 4096-slot chunks; a run fetching more global
    # sequence numbers than one chunk exercises _grow mid-run.
    cfg = CoreConfig(num_threads=1)
    _run_pair(cfg, [generate("ilp.int8", 5000, 0)])


def test_manual_step_parity():
    # step() must advance the lane engine one cycle at a time and leave
    # the same observable state as the object pipeline's step().
    cfg = CoreConfig(num_threads=1)
    traces = [generate("mixed.int", 120, 0)]
    lane = Pipeline(cfg, traces, record_schedule=True, lanes=True)
    obj = Pipeline(cfg, traces, record_schedule=True, lanes=False)
    for _ in range(300):
        lane.step()
        obj.step()
    assert lane.cycle == obj.cycle
    assert lane.issue_log == obj.issue_log
    assert [t.retired for t in lane.threads] == \
        [t.retired for t in obj.threads]


def test_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_LANES", "0")
    assert not lanes_enabled()
    cfg = CoreConfig(num_threads=1)
    pipe = Pipeline(cfg, [generate("ilp.int8", 50, 0)])
    assert not pipe.lanes
    # The explicit constructor argument wins over the environment.
    pipe = Pipeline(cfg, [generate("ilp.int8", 50, 0)], lanes=True)
    assert pipe.lanes
    monkeypatch.delenv("REPRO_LANES")
    assert lanes_enabled()


def test_warmup_reset_bit_identical():
    cfg = CoreConfig(num_threads=1, shelf_entries=16, steering="oracle")
    traces = [generate("pchase.l2", 300, 3)]
    lane = Pipeline(cfg, traces, record_schedule=True, lanes=True)
    r_lane = lane.run(stop="all", warmup_instructions=100)
    obj = Pipeline(cfg, traces, record_schedule=True, lanes=False)
    r_obj = obj.run(stop="all", warmup_instructions=100)
    assert pickle.dumps(r_lane) == pickle.dumps(r_obj)


def test_final_invariants_hold_after_lane_run():
    cfg = CoreConfig(num_threads=2, shelf_entries=32, steering="practical")
    traces = [generate("gather.small", 200, 0),
              generate("serial.memdep", 200, 1)]
    pipe = Pipeline(cfg, traces, lanes=True)
    pipe.run(stop="all")
    pipe.check_final_invariants()


def test_lane_mode_outside_digests():
    # Lane mode must not perturb result-store digests: the same config
    # digest must serve both modes (it is the RESULT that is identical,
    # so the cache key must not fork on an implementation detail).
    from repro.harness.cache import point_digest
    cfg = CoreConfig(num_threads=1)
    point = (("ilp.int8",), 100, 0, "all")
    assert point_digest(cfg, *point) == point_digest(replace(cfg), *point)
    # ...and CoreConfig has no lane field at all, by design.
    assert not hasattr(cfg, "lanes")
