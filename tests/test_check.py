"""Contract analysis (`repro check`): seeded violations per rule
family, waivers, baseline round-trip, and repo cleanliness."""

import json
from pathlib import Path

import pytest

from repro.core.dynamic import (CONDITIONAL_SLOTS, LAZY_SLOTS, SLOT_OWNERS,
                                STAGE_ORDER, DynInstr, slot_or_none)
from repro.envvars import OFF_VALUES, REGISTRY, enabled, lookup, names, raw
from repro.lint import check_main, check_sources, explain
from repro.lint.check import apply_baseline, baseline_keys, write_baseline
from repro.lint.model import ProjectModel

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def codes(violations):
    return [v.code for v in violations]


def real_source(tail):
    return (SRC / "repro" / tail).read_text(encoding="utf-8")


def check_one(path, source):
    return check_sources({path: source})


def findings_of(violations, code):
    return [v for v in violations if v.code == code]


# ---------------------------------------------------------------------------
# SLOT2xx: the DynInstr slot contract
# ---------------------------------------------------------------------------

class TestSlotContract:
    def test_runtime_contract_is_consistent(self):
        # The registries the passes read must describe the real class.
        for slot in SLOT_OWNERS:
            assert slot in DynInstr.__slots__
            assert SLOT_OWNERS[slot] in STAGE_ORDER
        assert CONDITIONAL_SLOTS <= LAZY_SLOTS == frozenset(SLOT_OWNERS)

    def test_slot201_unowned_lazy_slot(self):
        # Grow __slots__ without declaring an owner.
        src = real_source("core/dynamic.py").replace(
            '"retry_after",', '"retry_after", "mystery_slot",')
        vs = findings_of(check_one("src/repro/core/dynamic.py", src),
                         "SLOT201")
        assert any("mystery_slot" in v.message for v in vs)

    def test_slot201_owner_for_eager_slot(self):
        src = real_source("core/dynamic.py").replace(
            '"rob_idx": "dispatch",', '"rob_idx": "dispatch", '
            '"mispredicted": "dispatch",')
        vs = findings_of(check_one("src/repro/core/dynamic.py", src),
                         "SLOT201")
        assert any("mispredicted" in v.message for v in vs)

    def test_slot202_premature_read_in_fetch(self):
        src = (
            "from repro.core.dynamic import DynInstr\n"
            "class Pipeline:\n"
            "    def _fetch_one(self, dyn: DynInstr) -> int:\n"
            "        return dyn.issue_cycle\n")
        vs = check_one("src/repro/core/mystage.py", src)
        assert codes(vs) == ["SLOT202"]
        assert "issue" in vs[0].message

    def test_slot202_same_stage_read_allowed(self):
        src = (
            "from repro.core.dynamic import DynInstr\n"
            "class Pipeline:\n"
            "    def _issue_one(self, dyn: DynInstr) -> int:\n"
            "        return dyn.issue_cycle\n")
        assert check_one("src/repro/core/mystage.py", src) == []

    def test_slot202_dominating_write_exempts(self):
        src = (
            "from repro.core.dynamic import DynInstr\n"
            "class Pipeline:\n"
            "    def _fetch_one(self, dyn: DynInstr, cycle: int) -> int:\n"
            "        dyn.issue_cycle = cycle\n"
            "        return dyn.issue_cycle\n")
        assert check_one("src/repro/core/mystage.py", src) == []

    def test_slot203_bare_read_in_sanitizer(self):
        src = (
            "from repro.core.dynamic import DynInstr\n"
            "def _check_probe(dyn: DynInstr) -> None:\n"
            "    assert dyn.rob_idx >= 0\n")
        vs = check_one("src/repro/core/sanitizer.py", src)
        assert codes(vs) == ["SLOT203"]

    def test_slot203_slot_or_none_is_clean(self):
        src = (
            "from repro.core.dynamic import DynInstr, slot_or_none\n"
            "def _check_probe(dyn: DynInstr) -> None:\n"
            "    assert slot_or_none(dyn, 'rob_idx', 0) >= 0\n")
        assert check_one("src/repro/core/sanitizer.py", src) == []

    def test_slot_or_none_defaults_and_asserts(self):
        dyn = object.__new__(DynInstr)
        assert slot_or_none(dyn, "rob_idx") is None
        assert slot_or_none(dyn, "lq_slot", False) is False
        dyn.rob_idx = 7
        assert slot_or_none(dyn, "rob_idx") == 7
        with pytest.raises(AssertionError):
            slot_or_none(dyn, "not_a_slot")
        with pytest.raises(AssertionError):
            # eager field: reading it through the lazy probe is a bug
            slot_or_none(dyn, "mispredicted")


# ---------------------------------------------------------------------------
# LANE3xx: object/lane engine drift
# ---------------------------------------------------------------------------

def hot_sources(**replacements):
    """The real hot-path modules, with optional source edits applied
    to core/lanes.py before analysis."""
    sources = {
        f"src/repro/{tail}": real_source(tail)
        for tail in ("core/pipeline.py", "core/steering.py",
                     "core/lanes.py", "core/dynamic.py",
                     "core/lsq.py", "core/shelf.py", "isa/opcodes.py")}
    lanes = sources["src/repro/core/lanes.py"]
    for old, new in replacements.items():
        assert old in lanes, f"edit anchor {old!r} not found"
        lanes = lanes.replace(old, new)
    sources["src/repro/core/lanes.py"] = lanes
    return sources


class TestLaneDrift:
    def test_real_tree_is_clean(self):
        assert check_sources(hot_sources()) == []

    def test_lane301_removing_a_registry_entry_fires(self):
        # The acceptance criterion: deleting any one lane entry from
        # LANE_REGISTRY must fail the check.
        vs = check_sources(hot_sources(
            **{'    "wake_waits": ("waits",),\n': ''}))
        lane301 = findings_of(vs, "LANE301")
        assert lane301 and all("wake_waits" in v.message for v in lane301)
        # ...and the now-orphaned lane storage is flagged too.
        assert any("waits" in v.message
                   for v in findings_of(vs, "LANE302"))

    def test_lane301_removing_a_writethrough_entry_fires(self):
        vs = check_sources(hot_sources(
            **{'"mispredicted": (), ': ''}))
        assert any("mispredicted" in v.message
                   for v in findings_of(vs, "LANE301"))

    def test_lane302_registering_a_phantom_lane(self):
        vs = check_sources(hot_sources(
            **{'"shelf_idx": ("shelfv",),': '"shelf_idx": ("shelfz",),'}))
        lane302 = findings_of(vs, "LANE302")
        # the registered lane has no storage, and the real storage
        # lost its registration
        assert any("shelfz" in v.message for v in lane302)
        assert any("'shelfv'" in v.message for v in lane302)

    def test_lane302_phantom_registry_key(self):
        vs = check_sources(hot_sources(
            **{'"seq": (),': '"seq": (), "not_a_field": (),'}))
        assert any("not_a_field" in v.message
                   for v in findings_of(vs, "LANE302"))

    def test_lane303_fu_group_mismatch(self):
        vs = check_sources(hot_sources(
            **{"_FU_GROUP_OF = (0, 1, 1, 2, 2, 2, 3, 3, 0, 0)":
               "_FU_GROUP_OF = (0, 1, 1, 2, 2, 2, 3, 3, 1, 0)"}))
        assert any("BRANCH" in v.message
                   for v in findings_of(vs, "LANE303"))

    def test_lane303_table_length_mismatch(self):
        vs = check_sources(hot_sources(
            **{"_FU_GROUP_OF = (0, 1, 1, 2, 2, 2, 3, 3, 0, 0)":
               "_FU_GROUP_OF = (0, 1, 1, 2, 2, 2, 3, 3, 0)"}))
        assert any("entries" in v.message
                   for v in findings_of(vs, "LANE303"))

    def test_lane303_mismatched_opcode_constant(self):
        vs = check_sources(hot_sources(
            **{"_BRANCH = int(OpClass.BRANCH)":
               "_BRANCH = int(OpClass.STORE)"}))
        assert any("_BRANCH" in v.message
                   for v in findings_of(vs, "LANE303"))


# ---------------------------------------------------------------------------
# ASY4xx: async safety
# ---------------------------------------------------------------------------

class TestAsyncSafety:
    def test_asy401_blocking_sleep(self):
        src = ("import time\n"
               "async def handler():\n"
               "    time.sleep(1.0)\n")
        vs = check_one("src/repro/service/myhandler.py", src)
        assert codes(vs) == ["ASY401"]

    def test_asy401_sync_function_not_flagged(self):
        src = ("import time\n"
               "def worker():\n"
               "    time.sleep(1.0)\n")
        assert check_one("src/repro/service/myhandler.py", src) == []

    def test_asy402_unawaited_module_coroutine(self):
        src = ("async def helper():\n"
               "    pass\n"
               "async def handler():\n"
               "    helper()\n")
        vs = check_one("src/repro/service/myhandler.py", src)
        assert codes(vs) == ["ASY402"]

    def test_asy402_unawaited_self_method(self):
        src = ("class Server:\n"
               "    async def close(self):\n"
               "        pass\n"
               "    def shutdown(self):\n"
               "        self.close()\n")
        vs = check_one("src/repro/service/myserver.py", src)
        assert codes(vs) == ["ASY402"]

    def test_asy402_awaited_is_clean(self):
        src = ("async def helper():\n"
               "    pass\n"
               "async def handler():\n"
               "    await helper()\n")
        assert check_one("src/repro/service/myhandler.py", src) == []

    def test_asy403_untimed_network_await(self):
        src = ("async def handler(reader):\n"
               "    return await reader.readline()\n")
        vs = check_one("src/repro/service/myhandler.py", src)
        assert codes(vs) == ["ASY403"]

    def test_asy403_wait_for_wrapped_is_clean(self):
        src = ("import asyncio\n"
               "async def handler(reader):\n"
               "    return await asyncio.wait_for(reader.readline(), 10.0)\n")
        assert check_one("src/repro/service/myhandler.py", src) == []

    def test_asy403_scoped_to_service(self):
        src = ("async def handler(reader):\n"
               "    return await reader.readline()\n")
        assert check_one("src/repro/harness/myutil.py", src) == []


# ---------------------------------------------------------------------------
# DIG5xx: digest purity and the env registry
# ---------------------------------------------------------------------------

class TestDigestPurity:
    def test_dig501_mode_flag_read(self):
        src = ("def point_digest(config):\n"
               "    return {\"lanes\": config.lanes}\n")
        vs = check_one("src/repro/harness/mydigest.py", src)
        assert codes(vs) == ["DIG501"]

    def test_dig501_mode_query_call(self):
        src = ("from repro.core.sanitizer import sanitize_enabled\n"
               "def simulator_salt():\n"
               "    return str(sanitize_enabled())\n")
        vs = check_one("src/repro/harness/mydigest.py", src)
        assert codes(vs) == ["DIG501"]

    def test_dig501_bare_asdict(self):
        src = ("from dataclasses import asdict\n"
               "def point_digest(config):\n"
               "    return asdict(config)\n")
        vs = check_one("src/repro/harness/mydigest.py", src)
        assert codes(vs) == ["DIG501"]

    def test_dig501_sanctioned_asdict_site_is_clean(self):
        src = ("from dataclasses import asdict\n"
               "def digest_config_dict(config):\n"
               "    d = asdict(config)\n"
               "    d.pop(\"sanitize\")\n"
               "    return d\n")
        assert check_one("src/repro/harness/mydigest.py", src) == []

    def test_dig501_env_read_via_envvars_still_flagged(self):
        # Going through the registry does not make the value
        # digest-safe; the taint rule is about *what*, not *how*.
        src = ("from repro import envvars\n"
               "def point_digest():\n"
               "    return envvars.raw(\"REPRO_JOBS\")\n")
        vs = check_one("src/repro/harness/mydigest.py", src)
        assert codes(vs) == ["DIG501"]

    def test_dig501_only_in_digest_functions(self):
        src = ("def schedule(config):\n"
               "    return config.lanes\n")
        assert check_one("src/repro/harness/myutil.py", src) == []

    def test_dig502_direct_environ_read(self):
        src = ("import os\n"
               "def jobs():\n"
               "    return os.environ.get(\"REPRO_JOBS\")\n")
        vs = check_one("src/repro/harness/myutil.py", src)
        assert codes(vs) == ["DIG502"]

    def test_dig502_module_level_getenv(self):
        src = ("import os\n"
               "_SCALE = os.getenv(\"REPRO_SCALE\")\n")
        vs = check_one("src/repro/harness/myutil.py", src)
        assert codes(vs) == ["DIG502"]

    def test_dig502_tests_exempt(self):
        src = ("import os\n"
               "def test_jobs(monkeypatch):\n"
               "    assert os.environ.get(\"REPRO_JOBS\") is None\n")
        assert check_one("tests/test_myutil.py", src) == []

    def test_dig502_non_repro_vars_exempt(self):
        src = ("import os\n"
               "def home():\n"
               "    return os.environ.get(\"HOME\")\n")
        assert check_one("src/repro/harness/myutil.py", src) == []


# ---------------------------------------------------------------------------
# envvars registry (satellite)
# ---------------------------------------------------------------------------

class TestEnvRegistry:
    def test_known_vars_registered(self):
        expected = {"REPRO_JOBS", "REPRO_SCALE", "REPRO_CACHE_DIR",
                    "REPRO_SANITIZE", "REPRO_FASTFORWARD", "REPRO_LANES",
                    "REPRO_WAREHOUSE_DB", "REPRO_WAREHOUSE_INGEST",
                    "REPRO_SERVICE_CRASH_ONCE"}
        assert expected <= set(names())

    def test_every_entry_documented(self):
        for name, var in REGISTRY.items():
            assert name.startswith("REPRO_")
            assert var.doc, f"{name} has no doc"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="REGISTRY"):
            lookup("REPRO_NOT_A_VAR")
        with pytest.raises(KeyError):
            raw("REPRO_NOT_A_VAR")

    def test_flag_resolution(self, monkeypatch):
        for off in sorted(OFF_VALUES):
            monkeypatch.setenv("REPRO_LANES", off)
            assert enabled("REPRO_LANES") is False
        monkeypatch.setenv("REPRO_LANES", "1")
        assert enabled("REPRO_LANES") is True
        monkeypatch.delenv("REPRO_LANES", raising=False)
        assert enabled("REPRO_LANES") is True    # default "1"
        assert enabled("REPRO_SANITIZE") is False  # default "0"


# ---------------------------------------------------------------------------
# waivers, baseline, ordering, CLI
# ---------------------------------------------------------------------------

class TestDriver:
    def test_inline_waiver_suppresses(self):
        src = ("from repro.core.dynamic import DynInstr\n"
               "class Pipeline:\n"
               "    def _fetch_one(self, dyn: DynInstr) -> int:\n"
               "        return dyn.issue_cycle  "
               "# repro-lint: waive=SLOT202\n")
        assert check_one("src/repro/core/mystage.py", src) == []

    def test_waiver_is_code_specific(self):
        src = ("from repro.core.dynamic import DynInstr\n"
               "class Pipeline:\n"
               "    def _fetch_one(self, dyn: DynInstr) -> int:\n"
               "        return dyn.issue_cycle  "
               "# repro-lint: waive=LANE301\n")
        assert codes(check_one("src/repro/core/mystage.py", src)) \
            == ["SLOT202"]

    def test_baseline_round_trip(self, tmp_path):
        src = ("from repro.core.dynamic import DynInstr\n"
               "class Pipeline:\n"
               "    def _fetch_one(self, dyn: DynInstr) -> int:\n"
               "        return dyn.issue_cycle\n")
        vs = check_one("src/repro/core/mystage.py", src)
        assert vs
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, vs)
        keys = baseline_keys(baseline)
        remaining, baselined = apply_baseline(vs, keys)
        assert remaining == [] and baselined == len(vs)
        # a *new* finding is not absorbed by the baseline
        other = check_one(
            "src/repro/core/mystage.py",
            src.replace("issue_cycle", "retire_cycle"))
        remaining, _ = apply_baseline(other, keys)
        assert codes(remaining) == ["SLOT202"]

    def test_missing_baseline_is_none(self, tmp_path):
        assert baseline_keys(tmp_path / "nope.json") is None

    def test_findings_sorted_canonically(self):
        src = ("import time\n"
               "async def b_handler(reader):\n"
               "    time.sleep(1)\n"
               "    await reader.drain()\n")
        vs = check_sources({
            "src/repro/service/b.py": src,
            "src/repro/service/a.py": src,
        })
        keys = [(v.path, v.line, v.col, v.code) for v in vs]
        assert keys == sorted(keys)
        assert [v.path for v in vs] == ["src/repro/service/a.py"] * 2 \
            + ["src/repro/service/b.py"] * 2

    def test_explain_known_and_unknown(self, capsys):
        for code in ("DET101", "SLOT202", "LANE301", "ASY403", "DIG501"):
            text = explain(code)
            assert text and code in text
        assert explain("NOPE999") is None
        assert check_main(["--explain", "SLOT202"]) == 0
        assert "owning stage" in capsys.readouterr().out
        assert check_main(["--explain", "NOPE999"]) == 2

    def test_cli_json_output(self, tmp_path, capsys):
        bad = tmp_path / "svc"
        bad.mkdir()
        mod = bad / "myhandler.py"
        mod.write_text("import time\n"
                       "async def handler():\n"
                       "    time.sleep(1)\n")
        rc = check_main([str(mod), "--output", "json",
                         "--baseline", str(tmp_path / "none.json")])
        # outside the repro package tree: ASY401 still applies
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro-check"
        assert [f["code"] for f in doc["findings"]] == ["ASY401"]

    def test_cli_sarif_output(self, tmp_path, capsys):
        mod = tmp_path / "myhandler.py"
        mod.write_text("async def handler(reader):\n"
                       "    return await reader.readline()\n")
        rc = check_main([str(mod), "--output", "sarif",
                         "--baseline", str(tmp_path / "none.json")])
        assert rc == 0  # ASY403 is service-scoped; tmp file is outside
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert {"SLOT202", "LANE301", "ASY403", "DIG501", "DIG502"} \
            <= {r["id"] for r in rules}

    def test_write_baseline_cli(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text("def f(x=[]):\n    return x\n")  # DET103
        baseline = tmp_path / "baseline.json"
        assert check_main([str(mod), "--write-baseline",
                           "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert check_main([str(mod), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out
        assert check_main([str(mod), "--baseline", str(baseline),
                           "--no-baseline"]) == 1


# ---------------------------------------------------------------------------
# the real tree
# ---------------------------------------------------------------------------

class TestRepoClean:
    def test_whole_repo_is_clean(self):
        paths = [REPO_ROOT / "src", REPO_ROOT / "tests"]
        from repro.lint import check_paths
        vs = check_paths(paths)
        assert vs == [], "\n".join(v.format() for v in vs)

    def test_model_covers_repo(self):
        model = ProjectModel.from_paths(
            sorted((REPO_ROOT / "src").rglob("*.py")))
        assert model.module("core/dynamic.py") is not None
        assert model.module("core/lanes.py") is not None
        # the async index sees the service layer
        assert any("server.py" in tail
                   for tail in model.async_functions())
