"""Tests for the checkpointed campaign runner."""

import json

import pytest

from repro.harness.campaign import Campaign, CampaignPoint, standard_campaign
from repro.harness.configs import base64_config, shelf_config


def tiny_points(n=2, length=250):
    mixes = [("ilp.int8", "serial.alu"), ("branchy.easy", "gather.small")]
    cfg = base64_config(2)
    return [CampaignPoint("Base64", cfg, mixes[i % 2], length, seed=i)
            for i in range(n)]


class TestCampaign:
    def test_runs_and_checkpoints(self, tmp_path):
        path = tmp_path / "c.jsonl"
        camp = Campaign(path, tiny_points())
        assert camp.completed == 0
        records = camp.run()
        assert len(records) == 2
        assert camp.completed == 2
        # file holds one JSON record per line
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        rec = json.loads(lines[0])
        assert rec["cycles"] > 0 and rec["threads"]

    def test_resume_skips_completed(self, tmp_path):
        path = tmp_path / "c.jsonl"
        Campaign(path, tiny_points()).run()
        resumed = Campaign(path, tiny_points())
        assert resumed.pending == []
        # running again must not duplicate records
        resumed.run()
        assert len(path.read_text().strip().splitlines()) == 2

    def test_partial_resume(self, tmp_path):
        path = tmp_path / "c.jsonl"
        points = tiny_points()
        Campaign(path, points[:1]).run()
        camp = Campaign(path, points)
        assert len(camp.pending) == 1
        camp.run()
        assert camp.completed == 2

    def test_progress_callback(self, tmp_path):
        seen = []
        camp = Campaign(tmp_path / "c.jsonl", tiny_points())
        camp.run(progress=lambda key, done, total: seen.append((done,
                                                                total)))
        assert seen == [(1, 2), (2, 2)]

    def test_duplicate_points_rejected(self, tmp_path):
        p = tiny_points(1)
        with pytest.raises(ValueError):
            Campaign(tmp_path / "c.jsonl", p + p)

    def test_dataframe_rows_flatten_threads(self, tmp_path):
        camp = Campaign(tmp_path / "c.jsonl", tiny_points(1))
        camp.run()
        rows = camp.dataframe_rows()
        assert len(rows) == 2  # two threads in the mix
        assert {r["benchmark"] for r in rows} == {"ilp.int8", "serial.alu"}
        assert all(r["cpi"] > 0 for r in rows)

    def test_standard_campaign_grid(self, tmp_path):
        mixes = [("ilp.int8", "serial.alu", "branchy.easy", "gather.small")]
        camp = standard_campaign(tmp_path / "s.jsonl", mixes, 200)
        # 4 evaluated configs x 1 mix
        assert len(camp.points) == 4
        names = {p.config_name for p in camp.points}
        assert names == {"Base64", "Shelf64-cons", "Shelf64-opt", "Base128"}

    def test_custom_configs(self, tmp_path):
        mixes = [("ilp.int8", "serial.alu")]
        camp = standard_campaign(
            tmp_path / "s.jsonl", mixes, 200,
            configs={"A": base64_config(2), "B": shelf_config(2)})
        camp.run()
        assert camp.completed == 2
